#include "net/timer_wheel.h"

#include <utility>

namespace qmatch::net {

TimerWheel::TimerWheel(Clock::duration tick, size_t slots)
    : tick_(tick.count() > 0 ? tick : Clock::duration(1)),
      slots_(slots > 0 ? slots : 1),
      cursor_tick_(TickOf(Clock::now())) {}

TimerWheel::TimerId TimerWheel::Schedule(Clock::time_point when,
                                         std::function<void()> callback) {
  // A timer already due still waits for the next Advance — never fired
  // inline, so Schedule can be called from inside a firing callback
  // without reentrancy surprises.
  uint64_t tick = TickOf(when);
  if (tick <= cursor_tick_) tick = cursor_tick_ + 1;
  const size_t slot = static_cast<size_t>(tick % slots_.size());
  const TimerId id = next_id_++;
  slots_[slot].push_back(Entry{id, when, std::move(callback)});
  slot_of_.emplace(id, slot);
  ++pending_;
  return id;
}

bool TimerWheel::Cancel(TimerId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  std::list<Entry>& slot = slots_[it->second];
  for (auto entry = slot.begin(); entry != slot.end(); ++entry) {
    if (entry->id == id) {
      slot.erase(entry);
      break;
    }
  }
  slot_of_.erase(it);
  --pending_;
  return true;
}

size_t TimerWheel::Advance(Clock::time_point now) {
  const uint64_t now_tick = TickOf(now);
  if (now_tick <= cursor_tick_ || pending_ == 0) {
    cursor_tick_ = std::max(cursor_tick_, now_tick);
    return 0;
  }
  // Unlink everything due first, then fire: a callback that schedules or
  // cancels timers can never invalidate this sweep's iterators.
  std::vector<Entry> due;
  // Sweep at most one full revolution — beyond that every slot has been
  // visited once and entries left behind are genuinely future laps.
  const uint64_t sweep_end =
      std::min(now_tick, cursor_tick_ + static_cast<uint64_t>(slots_.size()));
  for (uint64_t tick = cursor_tick_ + 1; tick <= sweep_end; ++tick) {
    std::list<Entry>& slot = slots_[static_cast<size_t>(tick % slots_.size())];
    for (auto entry = slot.begin(); entry != slot.end();) {
      if (entry->when <= now) {
        slot_of_.erase(entry->id);
        --pending_;
        due.push_back(std::move(*entry));
        entry = slot.erase(entry);
      } else {
        ++entry;
      }
    }
  }
  cursor_tick_ = now_tick;
  for (Entry& entry : due) entry.callback();
  return due.size();
}

std::optional<TimerWheel::Clock::duration> TimerWheel::UntilNext(
    Clock::time_point now) const {
  if (pending_ == 0) return std::nullopt;
  Clock::time_point earliest = Clock::time_point::max();
  for (const std::list<Entry>& slot : slots_) {
    for (const Entry& entry : slot) {
      earliest = std::min(earliest, entry.when);
    }
  }
  if (earliest <= now) return Clock::duration::zero();
  // Round up to the next tick boundary so the loop never wakes just short
  // of the slot sweep that would fire the timer.
  return (earliest - now) + tick_;
}

}  // namespace qmatch::net
