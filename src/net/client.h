#ifndef QMATCH_NET_CLIENT_H_
#define QMATCH_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "net/frame.h"

namespace qmatch::net {

/// Blocking qmatchd client — the conformance/chaos/bench harness's view of
/// the server (and a usable minimal SDK). One socket, strict
/// request-response; pipelining callers use the raw SendBytes/ReadFrame
/// escape hatches instead.
///
/// Two error channels, deliberately distinct:
///   - transport trouble (connect/read/write failure, undecodable or
///     mispaired frames) surfaces as a non-OK Result;
///   - the server's typed verdict rides in the response's ResponseHead —
///     a kOverloaded shed is a *successful* Result whose head says
///     kOverloaded. Tests asserting the typed-status contract read heads.
class Client {
 public:
  /// Connects with a timeout; the same timeout becomes the default I/O
  /// timeout of every call on the connection.
  static Result<Client> Connect(
      const std::string& host, uint16_t port,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  Result<SubmitSchemaResp> SubmitSchema(const std::string& name,
                                        std::string_view xsd_text);
  Result<MatchPairResp> MatchPair(const std::string& source,
                                  const std::string& target,
                                  uint64_t deadline_ms = 0);
  Result<MatchCorpusResp> MatchCorpus(const std::string& query,
                                      uint64_t deadline_ms = 0);
  Result<StatsResp> GetStats();
  Result<MetricsResp> GetMetrics();
  Result<HealthResp> Health();
  Result<RoleResp> GetRole();

  // --- escape hatches for the fuzz and conformance suites ------------------

  /// Writes raw bytes to the socket (full write or error) — the fuzzer's
  /// way of sending deliberately broken frames and partial writes.
  Status SendBytes(std::string_view bytes);

  /// Reads exactly one frame off the socket. IoError on timeout/close,
  /// DataLoss when the bytes cannot be framed.
  Result<Frame> ReadFrame();

  /// Underlying socket, for shutdown()/close() chaos (mid-request
  /// disconnects). -1 after Close.
  int fd() const { return fd_; }

  void Close();

 private:
  /// Sends one request frame and pairs it with the next response frame.
  /// Accepts `resp_type` or kErrorResp (whose bare head is surfaced through
  /// `decode_error_head`); anything else is a transport error.
  template <typename Resp>
  Result<Resp> Call(MsgType req_type, std::string payload, MsgType resp_type,
                    bool (*decode)(std::string_view, Resp*));

  int fd_ = -1;
  std::chrono::milliseconds timeout_{5000};
  std::string in_;  ///< bytes read past the last returned frame
};

}  // namespace qmatch::net

#endif  // QMATCH_NET_CLIENT_H_
