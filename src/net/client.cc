#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qmatch::net {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

void SetIoTimeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               std::chrono::milliseconds timeout) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("unparseable host address: " + host);
  }
  SetIoTimeout(fd, timeout);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = ErrnoStatus("connect");
    close(fd);
    return status;
  }
  const int enable = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

  Client client;
  client.fd_ = fd;
  client.timeout_ = timeout;
  return client;
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeout_(other.timeout_),
      in_(std::move(other.in_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    timeout_ = other.timeout_;
    in_ = std::move(other.in_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

Status Client::SendBytes(std::string_view bytes) {
  if (fd_ < 0) return Status::IoError("client not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  if (fd_ < 0) return Status::IoError("client not connected");
  while (true) {
    Frame frame;
    size_t consumed = 0;
    const FrameDecodeResult decoded = DecodeFrame(in_, &frame, &consumed);
    if (decoded == FrameDecodeResult::kFrame) {
      in_.erase(0, consumed);
      return frame;
    }
    if (decoded != FrameDecodeResult::kNeedMore) {
      return Status::DataLoss(std::string("unframeable response bytes: ") +
                              std::string(FrameDecodeResultName(decoded)));
    }
    char buf[65536];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IoError("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IoError("timed out waiting for a response frame");
    }
    return ErrnoStatus("recv");
  }
}

template <typename Resp>
Result<Resp> Client::Call(MsgType req_type, std::string payload,
                          MsgType resp_type,
                          bool (*decode)(std::string_view, Resp*)) {
  QMATCH_RETURN_IF_ERROR(SendBytes(EncodeFrame(req_type, payload)));
  Result<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  Resp resp;
  if (frame->type == static_cast<uint32_t>(MsgType::kErrorResp)) {
    // The request never produced a typed body (rejected, shed before
    // execution, ...) — the bare head still carries the typed verdict.
    if (!DecodeResponseHead(frame->payload, &resp.head)) {
      return Status::DataLoss("undecodable error response head");
    }
    return resp;
  }
  if (frame->type != static_cast<uint32_t>(resp_type)) {
    return Status::DataLoss("mispaired response type " +
                            std::to_string(frame->type));
  }
  if (!decode(frame->payload, &resp)) {
    return Status::DataLoss("undecodable response payload");
  }
  return resp;
}

Result<SubmitSchemaResp> Client::SubmitSchema(const std::string& name,
                                              std::string_view xsd_text) {
  SubmitSchemaReq req;
  req.name = name;
  req.xsd_text = std::string(xsd_text);
  return Call<SubmitSchemaResp>(MsgType::kSubmitSchema,
                                EncodeSubmitSchemaReq(req),
                                MsgType::kSubmitSchemaResp,
                                &DecodeSubmitSchemaResp);
}

Result<MatchPairResp> Client::MatchPair(const std::string& source,
                                        const std::string& target,
                                        uint64_t deadline_ms) {
  MatchPairReq req;
  req.source = source;
  req.target = target;
  req.deadline_ms = deadline_ms;
  return Call<MatchPairResp>(MsgType::kMatchPair, EncodeMatchPairReq(req),
                             MsgType::kMatchPairResp, &DecodeMatchPairResp);
}

Result<MatchCorpusResp> Client::MatchCorpus(const std::string& query,
                                            uint64_t deadline_ms) {
  MatchCorpusReq req;
  req.query = query;
  req.deadline_ms = deadline_ms;
  return Call<MatchCorpusResp>(MsgType::kMatchCorpus,
                               EncodeMatchCorpusReq(req),
                               MsgType::kMatchCorpusResp,
                               &DecodeMatchCorpusResp);
}

Result<StatsResp> Client::GetStats() {
  return Call<StatsResp>(MsgType::kGetStats, std::string(),
                         MsgType::kGetStatsResp, &DecodeStatsResp);
}

Result<MetricsResp> Client::GetMetrics() {
  return Call<MetricsResp>(MsgType::kGetMetrics, std::string(),
                           MsgType::kGetMetricsResp, &DecodeMetricsResp);
}

Result<HealthResp> Client::Health() {
  return Call<HealthResp>(MsgType::kHealth, std::string(),
                          MsgType::kHealthResp, &DecodeHealthResp);
}

Result<RoleResp> Client::GetRole() {
  return Call<RoleResp>(MsgType::kRole, std::string(), MsgType::kRoleResp,
                        &DecodeRoleResp);
}

}  // namespace qmatch::net
