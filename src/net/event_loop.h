#ifndef QMATCH_NET_EVENT_LOOP_H_
#define QMATCH_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/timer_wheel.h"

namespace qmatch::net {

/// Single-threaded non-blocking reactor: one epoll instance, one hashed
/// timer wheel, and a thread-safe Post() mailbox (eventfd-woken) that is
/// the only cross-thread entry point. All fd handlers and timer callbacks
/// run on the loop thread, so per-connection state needs no locking — the
/// worker pool finishes a match and Posts the completion back instead of
/// touching the connection.
class EventLoop {
 public:
  /// Readiness callback of one registered fd; `events` is the epoll event
  /// mask of this wakeup (EPOLLIN | EPOLLOUT | EPOLLHUP | ...).
  using FdHandler = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/eventfd creation failed at construction (the loop is
  /// unusable; Run returns immediately).
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Registers `fd` for `events` (EPOLLIN etc.). The handler stays
  /// registered until Remove; it is invoked on the loop thread.
  Status Add(int fd, uint32_t events, FdHandler handler);

  /// Changes the event mask of a registered fd.
  Status Modify(int fd, uint32_t events);

  /// Unregisters `fd`. Safe to call from inside any handler, including the
  /// fd's own (dispatch re-checks registration per event). Does not close
  /// the fd.
  void Remove(int fd);

  /// The loop's timer wheel. Loop thread only — arm cross-thread timers by
  /// Posting a task that schedules them.
  TimerWheel& timers() { return timers_; }

  /// Enqueues `task` to run on the loop thread and wakes it. Thread-safe;
  /// callable before Run and after Stop (tasks queued after the final
  /// drain are discarded at destruction).
  void Post(std::function<void()> task);

  /// Runs the reactor on the calling thread until Stop().
  void Run();

  /// One reactor iteration with at most `timeout_ms` of blocking — the
  /// test harness's single-step mode. Returns the number of fd events
  /// dispatched.
  int RunOnce(int timeout_ms);

  /// Requests Run to return. Thread-safe, idempotent.
  void Stop();

  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_.load();
  }

 private:
  void Wake();
  void DrainPosted();
  int PollTimeoutMs() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loop_thread_{};
  TimerWheel timers_;

  /// shared_ptr so dispatch can pin a handler across its own Remove.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;  // guarded by posted_mutex_
};

}  // namespace qmatch::net

#endif  // QMATCH_NET_EVENT_LOOP_H_
