#ifndef QMATCH_NET_SERVER_H_
#define QMATCH_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "xsd/parser.h"

namespace qmatch::replica {
class ReplicationLog;
}  // namespace qmatch::replica

namespace qmatch::net {

/// Serving role of one qmatchd process (DESIGN.md §15).
///
///   kPrimary:  accepts all requests; mutations feed the replication log.
///   kStandby:  serves health/role/stats/metrics but answers engine work
///              with typed kUnavailable; state arrives via replication.
///   kDraining: SIGTERM received — no new connections, queued engine work
///              rejected typed, in-flight work finishing. Terminal.
///
/// Transitions: kStandby -> kPrimary (promote), kPrimary|kStandby ->
/// kDraining (drain), and kPrimary -> kStandby (self-demotion: a primary
/// that observes a higher fencing epoch fences itself, DESIGN.md §16).
/// kDraining is terminal — SetRole refuses to leave it, so a late promote
/// can never resurrect a draining server.
enum class Role : uint32_t {
  kPrimary = 1,
  kStandby = 2,
  kDraining = 3,
};

std::string_view RoleName(Role role);

/// Tuning knobs of the qmatchd server.
struct ServerOptions {
  /// Listen address; port 0 binds an ephemeral port (tests) — read the
  /// resolved one back via port().
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;

  /// Worker threads executing parse/match requests off the event loop
  /// (the loop itself never blocks on a match). Minimum 1.
  size_t request_threads = 2;

  /// Connections idle longer than this are closed by the timer wheel.
  /// Zero disables the idle timeout. Replication subscribers are exempt —
  /// they are push-mode and never write again after subscribing.
  std::chrono::milliseconds idle_timeout{60000};

  /// Deadline applied to requests that carry deadline_ms = 0. Zero =
  /// unbounded (the classic run-to-completion default).
  std::chrono::milliseconds default_deadline{0};

  /// Hard ceiling on any client-requested deadline; larger asks are
  /// clamped, so one client cannot park work on the engine forever.
  /// Zero = no ceiling.
  std::chrono::milliseconds max_deadline{30000};

  /// Accepted connections beyond this are closed immediately at accept.
  size_t max_connections = 256;

  /// Bounds applied to SubmitSchema XSD parses (input size, node count) —
  /// the same typed kResourceExhausted discipline as everywhere else.
  xsd::ParseOptions parse;

  /// Serving role at Start (promote later via SetRole).
  Role role = Role::kPrimary;

  /// Fencing-epoch floor at Start. The effective starting epoch is
  /// max(epoch, persisted epoch in epoch_dir); a higher epoch observed on
  /// the wire is adopted (and persisted) at runtime. Epoch 0 never exists
  /// on the wire from this server — the floor is clamped to 1.
  uint64_t epoch = 1;

  /// Directory holding the persisted fencing epoch (epoch.qme). Empty =
  /// epoch not persisted (tests, throwaway daemons) — promotions still
  /// bump the in-memory epoch but a restart forgets it.
  std::string epoch_dir;

  /// Peer to probe for a higher epoch on the replica heartbeat timer (a
  /// primary-side anti-split-brain probe: a kRole request whose response
  /// head carries the peer's epoch). Port 0 disables probing; also
  /// settable after Start via SetPeer (test fixtures learn ports late).
  std::string peer_host = "127.0.0.1";
  uint16_t peer_port = 0;

  /// Connect/read budget of one peer probe (it runs on a worker thread,
  /// never the loop).
  std::chrono::milliseconds peer_probe_timeout{100};

  /// Primary-side replication source (borrowed, must outlive the server;
  /// null = replication off). kReplicaSubscribe connections stream this
  /// log; a subscriber behind the log's base is anchored with a full
  /// engine-state + schema snapshot first.
  replica::ReplicationLog* replication_log = nullptr;

  /// Heartbeat cadence of the replication stream: an empty records frame
  /// carrying the head sequence, so an idle standby's lag reading stays
  /// truthful and dead links are noticed. Zero disables heartbeats.
  std::chrono::milliseconds replica_heartbeat{200};

  /// Max records per pushed kReplicaRecords frame.
  size_t replica_batch_records = 512;

  /// Standby readiness bound: /readyz (and kRole.ready) report ready while
  /// the replication link is up and head - applied <= this many records.
  uint64_t ready_lag_records = 64;

  /// EADDRINUSE bind retries with a short backoff — a drained-and-
  /// restarted daemon (or a failover pair racing a port) never dies on the
  /// previous owner's lingering socket.
  size_t bind_retries = 20;
  std::chrono::milliseconds bind_retry_backoff{50};

  /// Invoked after every successful schema registration with (name, xsd
  /// text) — the server-side replication hook mirroring the engine's
  /// ReplicationObserver. Runs on whatever thread registered the schema;
  /// must be thread-safe and must not call back into the server.
  std::function<void(const std::string&, const std::string&)> schema_observer;
};

/// Monotonic counters of one server's lifetime (also exported through the
/// obs registry as net.* metrics; these are the test-friendly exact reads).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t requests = 0;       ///< decodable requests dispatched
  uint64_t bad_frames = 0;     ///< CRC/length/decode failures answered typed
  uint64_t http_metrics = 0;   ///< GET /metrics scrapes served
  uint64_t replica_subscribers = 0;  ///< kReplicaSubscribe accepted
  uint64_t self_demotions = 0;  ///< primary fenced itself on a higher epoch
  uint64_t stale_refusals = 0;  ///< typed kUnavailable{stale_epoch} answers
};

/// qmatchd — the network front door to one MatchEngine (DESIGN.md §14/§15).
///
/// One epoll event loop (own thread) accepts connections and speaks the
/// frame protocol; decoded requests execute on a small worker pool with
/// the request deadline wired into ExecControl, so the engine's admission
/// control, memory budgets and degradation ladder protect the daemon
/// exactly as they protect in-process callers: an overloaded engine sheds
/// with a typed kOverloaded *response frame* — the connection stays open.
///
/// A connection whose first bytes are "GET " is served as one-shot HTTP
/// over the same loop, then closed: /metrics (Prometheus scrape),
/// /healthz (alive — 200 whenever the process answers) and /readyz
/// (200 only when this node should receive traffic: a running primary, or
/// a standby caught up within ready_lag_records).
///
/// Failpoints on every socket path: net.accept, net.read, net.write,
/// net.frame — the chaos suite's handles.
class Server {
 public:
  /// `engine` is borrowed and must outlive the server.
  Server(core::MatchEngine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds (retrying EADDRINUSE per bind_retries), listens and starts the
  /// loop thread. Non-OK on bind failure.
  Status Start();

  /// Closes the listener and every connection, stops the loop and joins
  /// all threads. Idempotent; also run by the destructor.
  void Stop();

  /// Graceful drain (the SIGTERM path): closes the listener, demotes to
  /// kDraining (queued engine work answers typed kUnavailable, /readyz
  /// goes 503) and waits until every connection is idle — no executing
  /// request, no queued frame, no unflushed bytes — or the deadline
  /// expires. Returns OK when quiesced, kDeadlineExceeded otherwise.
  /// Either way the caller then flushes the persist journal and Stop()s.
  Status Drain(std::chrono::milliseconds deadline);

  bool running() const { return running_.load(std::memory_order_acquire); }

  Role role() const {
    return static_cast<Role>(role_.load(std::memory_order_acquire));
  }
  /// Thread-safe role flip — Promote() on a standby, demote on drain.
  /// kDraining is terminal: once draining, every further SetRole is
  /// refused (the qmatchd SIGTERM/SIGUSR1 race ends drained, not primary).
  void SetRole(Role role);

  /// This server's own fencing epoch (stamped into every response head).
  uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Highest epoch ever observed on the wire (>= epoch()).
  uint64_t epoch_seen() const {
    return epoch_seen_.load(std::memory_order_acquire);
  }
  /// True once this server fenced itself after observing a higher epoch:
  /// it refuses mutable work with kUnavailable{stale_epoch} and will not
  /// re-anchor a standby until it adopts the winning epoch.
  bool fenced() const {
    return fenced_by_.load(std::memory_order_acquire) != 0;
  }

  /// Adopts `epoch` as this server's own (no-op when not higher). Persists
  /// to epoch_dir BEFORE the in-memory epoch moves — the promotion
  /// ordering that makes fencing crash-safe. Clears a fence once the
  /// server has caught up to the winning epoch. Thread-safe.
  Status AdoptEpoch(uint64_t epoch);

  /// Records an epoch seen on the wire. A primary seeing a higher epoch
  /// fences itself: net.self_demotions ticks, the role flips to kStandby,
  /// and every subsequent mutable request is refused typed
  /// kUnavailable{stale_epoch} until AdoptEpoch catches up. Thread-safe.
  void ObserveEpoch(uint64_t epoch);

  /// (Re)points the heartbeat-timer peer probe — fixtures start both
  /// servers before either port is known. Thread-safe.
  void SetPeer(const std::string& host, uint16_t port);

  /// The /readyz verdict: should a load balancer send traffic here?
  bool Ready() const;

  /// Standby-side feed: the replication applier reports its position after
  /// every message so /readyz and kRole answer truthfully.
  void SetReplicaStatus(uint64_t applied_seq, uint64_t head_seq,
                        bool connected);

  /// Resolved listen port (after Start with port 0).
  uint16_t port() const { return port_; }

  /// Registers a schema under `name` outside the protocol — qmatchd's
  /// --preload path, the replication applier and test fixtures.
  /// Thread-safe; same code path as a SubmitSchema request. `replicated`
  /// suppresses the schema_observer (a standby must not echo the stream).
  Status RegisterSchema(const std::string& name, std::string_view xsd_text,
                        bool replicated = false);

  size_t schema_count() const;

  /// (name, xsd text) of every registered schema — the replication
  /// snapshot anchor's schema half.
  std::vector<std::pair<std::string, std::string>> ExportSchemas() const;

  ServerStats stats() const;

 private:
  struct Connection;

  // --- loop-thread only ----------------------------------------------------
  void OnAccept();
  void OnConnectionEvent(uint64_t conn_id, uint32_t events);
  void ReadConnection(Connection* conn);
  void ProcessInput(Connection* conn);
  void ServeHttp(Connection* conn);
  void SendFrame(Connection* conn, std::string frame_bytes);
  void FlushConnection(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void ArmIdleTimer(Connection* conn);
  void UpdateEpollMask(Connection* conn);
  Connection* FindConnection(uint64_t conn_id);

  /// Starts queued frames in arrival order, one engine request in flight
  /// per connection (responses are written in request order).
  void MaybeDispatchNext(Connection* conn);

  /// Dispatches one decoded frame. Requests needing engine work hop to the
  /// worker pool; stats/metrics/health/role answer inline.
  void DispatchFrame(Connection* conn, Frame frame);

  /// Replication push path: ships the subscriber everything it is owed —
  /// a snapshot anchor when it is behind the log's base, then record
  /// batches up to the head.
  void PumpReplica(Connection* conn);
  void PumpAllReplicas();
  /// Recurring heartbeat: an empty records frame with the current head to
  /// every subscriber, plus the peer epoch probe when configured.
  void ArmReplicaHeartbeat();
  /// Severs every replication subscriber (partition injection, or fencing
  /// after a demotion — a stale primary must not re-anchor a standby).
  void CloseAllReplicas();
  /// Fires one kRole probe at the configured peer on a worker thread and
  /// feeds the answered epoch into ObserveEpoch.
  void ProbePeerEpoch();

  /// Builds a response head carrying this server's current epoch — every
  /// response (success or typed error) goes through here.
  ResponseHead MakeHead(const Status& status) const;

  // --- worker-pool side ----------------------------------------------------
  void ExecuteSubmitSchema(uint64_t conn_id, SubmitSchemaReq req);
  void ExecuteMatchPair(uint64_t conn_id, MatchPairReq req);
  void ExecuteMatchCorpus(uint64_t conn_id, MatchCorpusReq req);
  /// Counts the request outcome (exactly once per dispatched request, even
  /// when the connection died before the response could be written) and
  /// posts the encoded response back to the loop.
  void CompleteRequest(uint64_t conn_id, const Status& status,
                       std::string frame_bytes);

  /// Bumps net.requests plus exactly one per-outcome counter. Called once
  /// per request, on whichever thread decides the outcome.
  void CountOutcome(const Status& status);

  Deadline RequestDeadline(uint64_t deadline_ms) const;
  StatsResp BuildStats() const;
  RoleResp BuildRole() const;
  std::shared_ptr<const xsd::Schema> LookupSchema(
      const std::string& name) const;

  core::MatchEngine* const engine_;
  const ServerOptions options_;

  EventLoop loop_;
  std::thread loop_thread_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};

  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<uint32_t> role_;

  /// Fencing-epoch state (DESIGN.md §16). epoch_ is this server's own
  /// epoch (what it stamps into heads); epoch_seen_ the highest ever
  /// observed; fenced_by_ the winning epoch that demoted us (0 = not
  /// fenced). epoch_mutex_ serializes adopt/observe so persist-then-store
  /// stays ordered.
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> epoch_seen_{1};
  std::atomic<uint64_t> fenced_by_{0};
  std::mutex epoch_mutex_;
  /// At most one peer probe in flight (heartbeats must not pile up probes
  /// behind a slow peer).
  std::atomic<bool> probe_inflight_{false};
  mutable std::mutex peer_mutex_;
  std::string peer_host_;
  uint16_t peer_port_ = 0;

  /// Standby-side replication position, fed by SetReplicaStatus; read by
  /// Ready()/BuildRole() on any thread.
  std::atomic<uint64_t> replica_applied_{0};
  std::atomic<uint64_t> replica_head_{0};
  std::atomic<bool> replica_connected_{false};

  /// Loop-thread only: live connections by id (ids, not fds, key the map
  /// so a stale completion can never hit a recycled fd).
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;
  TimerWheel::TimerId heartbeat_timer_ = 0;  // loop-thread only

  mutable std::mutex schemas_mutex_;
  /// Submitted schemas by name, with the XSD text they were parsed from
  /// (the replication snapshot needs the exact bytes so the standby's
  /// re-parse fingerprints agree). shared_ptr: a replace while a match is
  /// in flight keeps the old tree alive until the last request drops it.
  struct SchemaEntry {
    std::shared_ptr<const xsd::Schema> schema;
    std::string xsd_text;
  };
  std::map<std::string, SchemaEntry> schemas_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> bad_frames_{0};
  std::atomic<uint64_t> http_metrics_{0};
  std::atomic<uint64_t> replica_subscribers_{0};
  std::atomic<uint64_t> self_demotions_{0};
  std::atomic<uint64_t> stale_refusals_{0};
};

}  // namespace qmatch::net

#endif  // QMATCH_NET_SERVER_H_
