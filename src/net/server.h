#ifndef QMATCH_NET_SERVER_H_
#define QMATCH_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "xsd/parser.h"

namespace qmatch::net {

/// Tuning knobs of the qmatchd server.
struct ServerOptions {
  /// Listen address; port 0 binds an ephemeral port (tests) — read the
  /// resolved one back via port().
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;

  /// Worker threads executing parse/match requests off the event loop
  /// (the loop itself never blocks on a match). Minimum 1.
  size_t request_threads = 2;

  /// Connections idle longer than this are closed by the timer wheel.
  /// Zero disables the idle timeout.
  std::chrono::milliseconds idle_timeout{60000};

  /// Deadline applied to requests that carry deadline_ms = 0. Zero =
  /// unbounded (the classic run-to-completion default).
  std::chrono::milliseconds default_deadline{0};

  /// Hard ceiling on any client-requested deadline; larger asks are
  /// clamped, so one client cannot park work on the engine forever.
  /// Zero = no ceiling.
  std::chrono::milliseconds max_deadline{30000};

  /// Accepted connections beyond this are closed immediately at accept.
  size_t max_connections = 256;

  /// Bounds applied to SubmitSchema XSD parses (input size, node count) —
  /// the same typed kResourceExhausted discipline as everywhere else.
  xsd::ParseOptions parse;
};

/// Monotonic counters of one server's lifetime (also exported through the
/// obs registry as net.* metrics; these are the test-friendly exact reads).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t requests = 0;       ///< decodable requests dispatched
  uint64_t bad_frames = 0;     ///< CRC/length/decode failures answered typed
  uint64_t http_metrics = 0;   ///< GET /metrics scrapes served
};

/// qmatchd — the network front door to one MatchEngine (DESIGN.md §14).
///
/// One epoll event loop (own thread) accepts connections and speaks the
/// frame protocol; decoded requests execute on a small worker pool with
/// the request deadline wired into ExecControl, so the engine's admission
/// control, memory budgets and degradation ladder protect the daemon
/// exactly as they protect in-process callers: an overloaded engine sheds
/// with a typed kOverloaded *response frame* — the connection stays open.
///
/// A connection whose first bytes are "GET " is served as a one-shot HTTP
/// Prometheus scrape of the obs registry over the same loop, then closed.
///
/// Failpoints on every socket path: net.accept, net.read, net.write,
/// net.frame — the chaos suite's handles.
class Server {
 public:
  /// `engine` is borrowed and must outlive the server.
  Server(core::MatchEngine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the loop thread. Non-OK on bind failure.
  Status Start();

  /// Closes the listener and every connection, stops the loop and joins
  /// all threads. Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Resolved listen port (after Start with port 0).
  uint16_t port() const { return port_; }

  /// Registers a schema under `name` outside the protocol — qmatchd's
  /// --preload path and test fixtures. Thread-safe; same code path as a
  /// SubmitSchema request.
  Status RegisterSchema(const std::string& name, std::string_view xsd_text);

  size_t schema_count() const;

  ServerStats stats() const;

 private:
  struct Connection;

  // --- loop-thread only ----------------------------------------------------
  void OnAccept();
  void OnConnectionEvent(uint64_t conn_id, uint32_t events);
  void ReadConnection(Connection* conn);
  void ProcessInput(Connection* conn);
  void ServeHttpMetrics(Connection* conn);
  void SendFrame(Connection* conn, std::string frame_bytes);
  void FlushConnection(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void ArmIdleTimer(Connection* conn);
  void UpdateEpollMask(Connection* conn);
  Connection* FindConnection(uint64_t conn_id);

  /// Starts queued frames in arrival order, one engine request in flight
  /// per connection (responses are written in request order).
  void MaybeDispatchNext(Connection* conn);

  /// Dispatches one decoded frame. Requests needing engine work hop to the
  /// worker pool; stats/metrics answer inline.
  void DispatchFrame(Connection* conn, Frame frame);

  // --- worker-pool side ----------------------------------------------------
  void ExecuteSubmitSchema(uint64_t conn_id, SubmitSchemaReq req);
  void ExecuteMatchPair(uint64_t conn_id, MatchPairReq req);
  void ExecuteMatchCorpus(uint64_t conn_id, MatchCorpusReq req);
  /// Counts the request outcome (exactly once per dispatched request, even
  /// when the connection died before the response could be written) and
  /// posts the encoded response back to the loop.
  void CompleteRequest(uint64_t conn_id, const Status& status,
                       std::string frame_bytes);

  /// Bumps net.requests plus exactly one per-outcome counter. Called once
  /// per request, on whichever thread decides the outcome.
  void CountOutcome(const Status& status);

  Deadline RequestDeadline(uint64_t deadline_ms) const;
  StatsResp BuildStats() const;
  std::shared_ptr<const xsd::Schema> LookupSchema(
      const std::string& name) const;

  core::MatchEngine* const engine_;
  const ServerOptions options_;

  EventLoop loop_;
  std::thread loop_thread_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};

  int listen_fd_ = -1;
  uint16_t port_ = 0;

  /// Loop-thread only: live connections by id (ids, not fds, key the map
  /// so a stale completion can never hit a recycled fd).
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  mutable std::mutex schemas_mutex_;
  /// Submitted schemas by name. shared_ptr: a replace while a match is in
  /// flight keeps the old tree alive until the last request drops it.
  std::map<std::string, std::shared_ptr<const xsd::Schema>> schemas_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> bad_frames_{0};
  std::atomic<uint64_t> http_metrics_{0};
};

}  // namespace qmatch::net

#endif  // QMATCH_NET_SERVER_H_
