#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <future>
#include <utility>
#include <vector>

#include "fault/failpoint.h"
#include "net/client.h"
#include "obs/obs.h"
#include "persist/epoch.h"
#include "persist/snapshot.h"
#include "replica/log.h"
#include "replica/wire.h"
#include "xsd/schema.h"

namespace qmatch::net {

namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Decoded-but-unstarted frames a single connection may queue while one of
/// its requests executes (responses are written in request order, so
/// pipelined frames wait their turn). Past the cap each extra frame is
/// answered with a typed kResourceExhausted — never a dropped connection.
constexpr size_t kMaxPipelineDepth = 256;

Status ErrnoStatus(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

std::string_view RoleName(Role role) {
  switch (role) {
    case Role::kPrimary:
      return "primary";
    case Role::kStandby:
      return "standby";
    case Role::kDraining:
      return "draining";
  }
  return "unknown";
}

/// Per-connection state machine, owned by the loop thread. Lifecycle:
/// reading frames -> (pipeline queue) -> executing on a worker ->
/// response flushed -> reading again; `closing` drains the output buffer
/// and then closes (set after a framing violation or an HTTP scrape).
struct Server::Connection {
  uint64_t id = 0;
  int fd = -1;
  std::string in;
  std::string out;
  /// First bytes were "GET ": this is a one-shot HTTP request.
  bool http = false;
  /// Stop reading; close as soon as `out` drains.
  bool closing = false;
  /// A request of this connection is executing on the worker pool.
  bool busy = false;
  /// Subscribed to the replication stream: push-mode for the rest of its
  /// life, exempt from the idle timeout.
  bool replica = false;
  /// Next log sequence this subscriber is owed.
  uint64_t replica_next_seq = 0;
  std::deque<Frame> pending;
  TimerWheel::TimerId idle_timer = 0;
};

Server::Server(core::MatchEngine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      role_(static_cast<uint32_t>(options_.role)) {
  // Epoch 0 never exists on the wire from this server: 0 is the "epoch
  // unaware" sentinel in heads and subscribe requests.
  const uint64_t floor = options_.epoch > 0 ? options_.epoch : 1;
  epoch_.store(floor, std::memory_order_release);
  epoch_seen_.store(floor, std::memory_order_release);
  peer_host_ = options_.peer_host;
  peer_port_ = options_.peer_port;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (!loop_.ok()) return Status::Internal("event loop failed to initialise");
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable bind address: " +
                                   options_.bind_address);
  }
  // EADDRINUSE is retried with a short backoff: a restart racing its
  // predecessor's lingering socket (or a failover pair swapping a port)
  // waits the old owner out instead of dying. SO_REUSEADDR above already
  // forgives TIME_WAIT; the retry loop forgives a still-open listener.
  int rc = -1;
  for (size_t attempt = 0;; ++attempt) {
    rc = bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0 || errno != EADDRINUSE || attempt >= options_.bind_retries) {
      break;
    }
    QMATCH_COUNTER_ADD("net.bind_retries", 1);
    std::this_thread::sleep_for(options_.bind_retry_backoff);
  }
  if (rc != 0) {
    const Status status = ErrnoStatus("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, 128) != 0) {
    const Status status = ErrnoStatus("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  // The persisted epoch floors the configured one: a restarted process
  // resumes at least at the epoch it last promoted to, so a crash between
  // promotion and the first request cannot resurrect a stale epoch. A
  // corrupt file is counted and the configured floor kept — "unknown"
  // must never read as 0.
  if (!options_.epoch_dir.empty()) {
    Result<uint64_t> persisted = persist::LoadEpoch(options_.epoch_dir);
    if (persisted.ok()) {
      if (persisted.value() > epoch_.load(std::memory_order_acquire)) {
        epoch_.store(persisted.value(), std::memory_order_release);
        epoch_seen_.store(persisted.value(), std::memory_order_release);
      }
    } else {
      QMATCH_COUNTER_ADD("net.epoch_load_failures", 1);
    }
  }
  QMATCH_GAUGE_SET("net.epoch", static_cast<int64_t>(
                                    epoch_.load(std::memory_order_acquire)));

  workers_ = std::make_unique<ThreadPool>(
      options_.request_threads > 0 ? options_.request_threads : 1);
  QMATCH_RETURN_IF_ERROR(
      loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAccept(); }));
  running_.store(true, std::memory_order_release);
  QMATCH_GAUGE_SET("net.role", static_cast<int64_t>(role_.load()));
  loop_thread_ = std::thread([this] { loop_.Run(); });
  if (options_.replication_log != nullptr) {
    // New appends wake every subscriber via the loop mailbox; the listener
    // runs under the log's mutex, so it must only Post (Post is
    // thread-safe and discards after Stop).
    options_.replication_log->SetListener(
        [this](uint64_t) { loop_.Post([this] { PumpAllReplicas(); }); });
    loop_.Post([this] { ArmReplicaHeartbeat(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (stopped_.exchange(true)) return;
  // Detach the replication listener first: SetListener(nullptr) blocks on
  // the log mutex until any in-flight notification returns, so no Post
  // races the shutdown below.
  if (options_.replication_log != nullptr) {
    options_.replication_log->SetListener(nullptr);
  }
  running_.store(false, std::memory_order_release);
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop thread is gone: its state is safe to finalise from here.
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) close(conn->fd);
    closed_.fetch_add(1, std::memory_order_relaxed);
    QMATCH_GAUGE_ADD("net.connections", -1);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Joins in-flight request executions; their completions land in the
  // stopped loop's mailbox and are discarded with it.
  workers_.reset();
}

Status Server::Drain(std::chrono::milliseconds deadline) {
  const steady_clock::time_point until = steady_clock::now() + deadline;
  QMATCH_COUNTER_ADD("net.drains", 1);
  // Stop accepting and demote: queued-but-unstarted engine work answers
  // typed kUnavailable from here on, /readyz flips to 503, and in-flight
  // requests run to completion.
  loop_.Post([this] {
    if (listen_fd_ >= 0) {
      loop_.Remove(listen_fd_);
      close(listen_fd_);
      listen_fd_ = -1;
    }
    SetRole(Role::kDraining);
  });
  // Quiescence is loop-owned state, so each probe is a Posted read. A
  // broken promise (loop stopped underneath us) ends the wait.
  while (true) {
    auto probe = std::make_shared<std::promise<bool>>();
    std::future<bool> verdict = probe->get_future();
    loop_.Post([this, probe] {
      bool idle = true;
      for (const auto& [id, conn] : connections_) {
        if (conn->busy || !conn->pending.empty() || !conn->out.empty()) {
          idle = false;
          break;
        }
      }
      probe->set_value(idle);
    });
    bool idle = false;
    if (verdict.wait_until(until) != std::future_status::ready) break;
    try {
      idle = verdict.get();
    } catch (const std::future_error&) {
      break;  // loop stopped: the Post was discarded unrun
    }
    if (idle) return Status::OK();
    if (steady_clock::now() >= until) break;
    std::this_thread::sleep_for(milliseconds(5));
  }
  QMATCH_COUNTER_ADD("net.drain_deadline_exceeded", 1);
  return Status::DeadlineExceeded("drain deadline expired with work in flight");
}

void Server::SetRole(Role role) {
  // kDraining is terminal: a SIGUSR1 promote that loses the race against a
  // SIGTERM drain must not resurrect the server as primary. The CAS loop
  // re-checks on contention so Drain always wins.
  uint32_t current = role_.load(std::memory_order_acquire);
  do {
    if (static_cast<Role>(current) == Role::kDraining &&
        role != Role::kDraining) {
      QMATCH_COUNTER_ADD("net.role_changes_refused", 1);
      return;
    }
  } while (!role_.compare_exchange_weak(current, static_cast<uint32_t>(role),
                                        std::memory_order_acq_rel));
  QMATCH_COUNTER_ADD("net.role_changes", 1);
  QMATCH_GAUGE_SET("net.role", static_cast<int64_t>(role));
}

Status Server::AdoptEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  if (epoch <= epoch_.load(std::memory_order_acquire)) return Status::OK();
  // Persist BEFORE the in-memory epoch moves: a crash after the write but
  // before the store restarts at the new epoch (safe — an epoch may be
  // skipped, never reused), a crash before the write restarts at the old
  // one having claimed nothing. A failed write is counted but does not
  // veto adoption: refusing to fence on a full disk would trade split-brain
  // safety for nothing (the winner's epoch is already on the wire).
  Status persisted = Status::OK();
  if (!options_.epoch_dir.empty()) {
    persisted = persist::SaveEpoch(options_.epoch_dir, epoch);
    if (!persisted.ok()) QMATCH_COUNTER_ADD("net.epoch_persist_failures", 1);
  }
  epoch_.store(epoch, std::memory_order_release);
  uint64_t seen = epoch_seen_.load(std::memory_order_acquire);
  while (seen < epoch && !epoch_seen_.compare_exchange_weak(
                             seen, epoch, std::memory_order_acq_rel)) {
  }
  // Catching up to (or past) the winning epoch lifts the fence.
  const uint64_t winner = fenced_by_.load(std::memory_order_acquire);
  if (winner != 0 && epoch >= winner) {
    fenced_by_.store(0, std::memory_order_release);
  }
  QMATCH_GAUGE_SET("net.epoch", static_cast<int64_t>(epoch));
  return persisted;
}

void Server::ObserveEpoch(uint64_t epoch) {
  if (epoch == 0) return;  // epoch-unaware peer: nothing learned
  uint64_t seen = epoch_seen_.load(std::memory_order_acquire);
  while (epoch > seen && !epoch_seen_.compare_exchange_weak(
                             seen, epoch, std::memory_order_acq_rel)) {
  }
  if (epoch <= epoch_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  if (epoch <= epoch_.load(std::memory_order_acquire)) return;
  // A higher epoch exists: this server is fenced until AdoptEpoch catches
  // up. A fenced primary self-demotes immediately — it refuses mutable
  // work typed and severs its subscribers (it must not re-anchor a standby
  // at the stale epoch).
  uint64_t winner = fenced_by_.load(std::memory_order_acquire);
  while (epoch > winner && !fenced_by_.compare_exchange_weak(
                               winner, epoch, std::memory_order_acq_rel)) {
  }
  if (role() == Role::kPrimary) {
    self_demotions_.fetch_add(1, std::memory_order_relaxed);
    QMATCH_COUNTER_ADD("net.self_demotions", 1);
    SetRole(Role::kStandby);
    loop_.Post([this] { CloseAllReplicas(); });
  }
}

void Server::SetPeer(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(peer_mutex_);
  peer_host_ = host;
  peer_port_ = port;
}

ResponseHead Server::MakeHead(const Status& status) const {
  ResponseHead head = ResponseHead::FromStatus(status);
  head.epoch = epoch();
  return head;
}

bool Server::Ready() const {
  switch (role()) {
    case Role::kPrimary:
      return running();
    case Role::kStandby: {
      // Ready only while the stream is live and the standby is caught up
      // within the configured record bound — a stale standby answering
      // reads would violate the bit-identical failover contract.
      if (!replica_connected_.load(std::memory_order_acquire)) return false;
      const uint64_t head = replica_head_.load(std::memory_order_relaxed);
      const uint64_t applied = replica_applied_.load(std::memory_order_relaxed);
      const uint64_t lag = head > applied ? head - applied : 0;
      return lag <= options_.ready_lag_records;
    }
    case Role::kDraining:
      return false;
  }
  return false;
}

void Server::SetReplicaStatus(uint64_t applied_seq, uint64_t head_seq,
                              bool connected) {
  replica_applied_.store(applied_seq, std::memory_order_relaxed);
  replica_head_.store(head_seq, std::memory_order_relaxed);
  replica_connected_.store(connected, std::memory_order_release);
  const uint64_t lag = head_seq > applied_seq ? head_seq - applied_seq : 0;
  QMATCH_GAUGE_SET("replica.lag_records", static_cast<int64_t>(lag));
}

Status Server::RegisterSchema(const std::string& name,
                              std::string_view xsd_text, bool replicated) {
  if (name.empty()) {
    return Status::InvalidArgument("schema name must be non-empty");
  }
  xsd::ParseOptions parse = options_.parse;
  parse.schema_name = name;
  Result<xsd::Schema> schema = xsd::ParseSchema(xsd_text, parse);
  if (!schema.ok()) return schema.status();
  auto shared = std::make_shared<const xsd::Schema>(std::move(*schema));
  {
    std::lock_guard<std::mutex> lock(schemas_mutex_);
    schemas_[name] = SchemaEntry{std::move(shared), std::string(xsd_text)};
  }
  // A replicated registration must not echo back into the stream — the
  // standby applies records, it does not originate them.
  if (!replicated && options_.schema_observer) {
    options_.schema_observer(name, std::string(xsd_text));
  }
  return Status::OK();
}

size_t Server::schema_count() const {
  std::lock_guard<std::mutex> lock(schemas_mutex_);
  return schemas_.size();
}

std::vector<std::pair<std::string, std::string>> Server::ExportSchemas()
    const {
  std::lock_guard<std::mutex> lock(schemas_mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(schemas_.size());
  for (const auto& [name, entry] : schemas_) {
    out.emplace_back(name, entry.xsd_text);
  }
  return out;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.http_metrics = http_metrics_.load(std::memory_order_relaxed);
  s.replica_subscribers = replica_subscribers_.load(std::memory_order_relaxed);
  s.self_demotions = self_demotions_.load(std::memory_order_relaxed);
  s.stale_refusals = stale_refusals_.load(std::memory_order_relaxed);
  return s;
}

// --- loop thread -----------------------------------------------------------

void Server::OnAccept() {
  while (true) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error: wait for the next wakeup
    }
    // Chaos handle: a fired net.accept drops this connection at the
    // threshold — the daemon itself must shrug it off.
    if (QMATCH_FAILPOINT_FIRED("net.accept")) {
      QMATCH_COUNTER_ADD("net.accept_faults", 1);
      close(fd);
      continue;
    }
    if (connections_.size() >= options_.max_connections) {
      QMATCH_COUNTER_ADD("net.accept_rejected", 1);
      close(fd);
      continue;
    }
    const int enable = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    const uint64_t conn_id = conn->id;
    Connection* raw = conn.get();
    connections_.emplace(conn_id, std::move(conn));
    const Status added = loop_.Add(
        fd, EPOLLIN, [this, conn_id](uint32_t ev) {
          OnConnectionEvent(conn_id, ev);
        });
    if (!added.ok()) {
      close(fd);
      connections_.erase(conn_id);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    QMATCH_COUNTER_ADD("net.accepted", 1);
    QMATCH_GAUGE_ADD("net.connections", 1);
    ArmIdleTimer(raw);
  }
}

Server::Connection* Server::FindConnection(uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  return it == connections_.end() ? nullptr : it->second.get();
}

void Server::OnConnectionEvent(uint64_t conn_id, uint32_t events) {
  Connection* conn = FindConnection(conn_id);
  if (conn == nullptr) return;
  if ((events & EPOLLOUT) != 0) {
    FlushConnection(conn);
    conn = FindConnection(conn_id);
    if (conn == nullptr) return;
  }
  // Readable data is drained before a HUP is honoured: a peer that wrote a
  // request and disconnected immediately still gets its frame dispatched
  // (read() returns the bytes first, then 0).
  if ((events & EPOLLIN) != 0) {
    ReadConnection(conn);
    return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) CloseConnection(conn_id);
}

void Server::ReadConnection(Connection* conn) {
  const uint64_t conn_id = conn->id;
  // Chaos handle: a fired net.read is a fatal socket error on this
  // connection (the peer sees a close; in-flight requests still count
  // their outcomes when they complete).
  if (QMATCH_FAILPOINT_FIRED("net.read")) {
    QMATCH_COUNTER_ADD("net.read_faults", 1);
    CloseConnection(conn_id);
    return;
  }
  // Partition injection, client class: ordinary request connections are
  // severed while the replica stream (push-mode, never read again) lives
  // on — the inverse of net.partition.replica.
  if (!conn->replica && QMATCH_FAILPOINT_FIRED("net.partition.client")) {
    QMATCH_COUNTER_ADD("net.partition_drops", 1);
    CloseConnection(conn_id);
    return;
  }
  bool peer_closed = false;
  while (true) {
    char buf[65536];
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn_id);
    return;
  }
  ArmIdleTimer(conn);
  ProcessInput(conn);
  conn = FindConnection(conn_id);
  if (conn == nullptr) return;
  if (peer_closed) {
    // Mid-request disconnect: drop the connection now; any executing
    // request completes on the workers, counts its outcome, and its
    // response is discarded when the completion finds no connection.
    CloseConnection(conn_id);
  }
}

void Server::ProcessInput(Connection* conn) {
  const uint64_t conn_id = conn->id;
  while (!conn->closing) {
    if (conn->http) {
      ServeHttp(conn);
      return;
    }
    if (conn->in.size() >= 4 && conn->in.compare(0, 4, "GET ") == 0) {
      conn->http = true;
      continue;
    }
    if (conn->in.size() < 8) break;  // fall through to dispatch+flush
    // Chaos handle: a fired net.frame corrupts this decode — the peer gets
    // the same typed error frame real corruption would produce.
    if (QMATCH_FAILPOINT_FIRED("net.frame")) {
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      QMATCH_COUNTER_ADD("net.bad_frames", 1);
      SendFrame(conn, EncodeFrame(MsgType::kErrorResp,
                                  EncodeErrorResp(MakeHead(Status::DataLoss(
                                      "frame fault injected")))));
      conn->closing = true;
      break;
    }
    Frame frame;
    size_t consumed = 0;
    const FrameDecodeResult decoded = DecodeFrame(conn->in, &frame, &consumed);
    if (decoded == FrameDecodeResult::kNeedMore) break;
    if (decoded == FrameDecodeResult::kBadLength ||
        decoded == FrameDecodeResult::kBadCrc) {
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      QMATCH_COUNTER_ADD("net.bad_frames", 1);
      const Status status =
          decoded == FrameDecodeResult::kBadLength
              ? Status::InvalidArgument("frame length exceeds protocol cap")
              : Status::DataLoss("frame crc mismatch");
      SendFrame(conn, EncodeFrame(MsgType::kErrorResp,
                                  EncodeErrorResp(MakeHead(status))));
      // The byte stream cannot be resynchronised past a framing violation:
      // answer typed, then close after the flush.
      conn->closing = true;
      break;
    }
    conn->in.erase(0, consumed);
    if (conn->pending.size() >= kMaxPipelineDepth) {
      const Status status =
          Status::ResourceExhausted("pipeline depth exceeded");
      CountOutcome(status);
      SendFrame(conn, EncodeFrame(MsgType::kErrorResp,
                                  EncodeErrorResp(MakeHead(status))));
      continue;
    }
    conn->pending.push_back(std::move(frame));
  }
  conn = FindConnection(conn_id);
  if (conn == nullptr) return;
  MaybeDispatchNext(conn);
  FlushConnection(conn);
}

void Server::ServeHttp(Connection* conn) {
  const size_t end = conn->in.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (conn->in.size() > 8192) CloseConnection(conn->id);
    return;  // headers still arriving
  }
  // Request line: "GET <path> HTTP/1.x". Anything unparseable keeps the
  // historical any-GET-serves-metrics behaviour.
  std::string path = "/metrics";
  const std::string_view line(conn->in.data(), conn->in.find("\r\n"));
  const size_t sp1 = line.find(' ');
  if (sp1 != std::string_view::npos) {
    const size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 != std::string_view::npos) {
      path.assign(line.substr(sp1 + 1, sp2 - sp1 - 1));
    }
  }
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  int status = 200;
  std::string reason = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/metrics" || path == "/") {
    http_metrics_.fetch_add(1, std::memory_order_relaxed);
    QMATCH_COUNTER_ADD("net.http_metrics", 1);
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = obs::Registry::Global().PrometheusText();
  } else if (path == "/healthz") {
    // Liveness: the process answered, so it is alive — role is
    // informational. A draining server is alive and not ready.
    QMATCH_COUNTER_ADD("net.http_healthz", 1);
    body = "ok role=" + std::string(RoleName(role())) +
           " epoch=" + std::to_string(epoch()) + "\n";
  } else if (path == "/readyz") {
    // Readiness: should a load balancer route traffic here right now?
    QMATCH_COUNTER_ADD("net.http_readyz", 1);
    const RoleResp state = BuildRole();
    const bool ready = state.ready != 0;
    if (!ready) {
      status = 503;
      reason = "Service Unavailable";
    }
    body = std::string(ready ? "ready" : "unready") + " role=" +
           std::string(RoleName(static_cast<Role>(state.role))) +
           " epoch=" + std::to_string(state.head.epoch) +
           " lag_records=" + std::to_string(state.lag_records) +
           " applied_seq=" + std::to_string(state.applied_seq) +
           " head_seq=" + std::to_string(state.head_seq) + "\n";
  } else {
    status = 404;
    reason = "Not Found";
    body = "not found\n";
  }
  std::string response = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  conn->out.append(response);
  conn->closing = true;
  FlushConnection(conn);
}

void Server::MaybeDispatchNext(Connection* conn) {
  // Responses go out in request order: one executing request per
  // connection; cheap requests answer inline and the loop continues.
  while (!conn->busy && !conn->pending.empty() && !conn->closing) {
    Frame frame = std::move(conn->pending.front());
    conn->pending.pop_front();
    DispatchFrame(conn, std::move(frame));
  }
}

void Server::DispatchFrame(Connection* conn, Frame frame) {
  const uint64_t conn_id = conn->id;
  // A decodable-but-rejectable request still answers a typed frame;
  // kErrorResp carries a bare ResponseHead so the client needs no
  // per-request body to learn the status.
  const auto reject = [&](const Status& status) {
    CountOutcome(status);
    SendFrame(conn, EncodeFrame(MsgType::kErrorResp,
                                EncodeErrorResp(MakeHead(status))));
  };
  // A fenced server (it observed a higher epoch) answers with the winning
  // epoch in the message AND its own epoch in the head — the client learns
  // where to go, and never mistakes this endpoint for current.
  const auto reject_stale = [&](uint64_t winner) {
    stale_refusals_.fetch_add(1, std::memory_order_relaxed);
    QMATCH_COUNTER_ADD("net.stale_refusals", 1);
    reject(Status::Unavailable(
        "stale_epoch: epoch=" + std::to_string(epoch()) +
        " winner_epoch=" + std::to_string(winner)));
  };
  // Engine work runs only on a primary: a standby's state is replicated,
  // not owned, and a draining server is shedding. The rejection is typed
  // kUnavailable BEFORE any work runs, so a client may safely retry it
  // against another endpoint whatever the request type.
  const auto require_primary = [&]() {
    const uint64_t winner = fenced_by_.load(std::memory_order_acquire);
    if (winner != 0) {
      reject_stale(winner);
      return false;
    }
    const Role r = role();
    if (r == Role::kPrimary) return true;
    reject(Status::Unavailable("not primary: role=" +
                               std::string(RoleName(r))));
    return false;
  };
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kSubmitSchema: {
      if (!require_primary()) return;
      SubmitSchemaReq req;
      if (!DecodeSubmitSchemaReq(frame.payload, &req)) {
        reject(Status::InvalidArgument("undecodable SubmitSchema payload"));
        return;
      }
      conn->busy = true;
      workers_->Submit([this, conn_id, req = std::move(req)]() mutable {
        ExecuteSubmitSchema(conn_id, std::move(req));
      });
      return;
    }
    case MsgType::kMatchPair: {
      if (!require_primary()) return;
      MatchPairReq req;
      if (!DecodeMatchPairReq(frame.payload, &req)) {
        reject(Status::InvalidArgument("undecodable MatchPair payload"));
        return;
      }
      conn->busy = true;
      workers_->Submit([this, conn_id, req = std::move(req)]() mutable {
        ExecuteMatchPair(conn_id, std::move(req));
      });
      return;
    }
    case MsgType::kMatchCorpus: {
      if (!require_primary()) return;
      MatchCorpusReq req;
      if (!DecodeMatchCorpusReq(frame.payload, &req)) {
        reject(Status::InvalidArgument("undecodable MatchCorpus payload"));
        return;
      }
      conn->busy = true;
      workers_->Submit([this, conn_id, req = std::move(req)]() mutable {
        ExecuteMatchCorpus(conn_id, std::move(req));
      });
      return;
    }
    case MsgType::kGetStats: {
      CountOutcome(Status::OK());
      SendFrame(conn, EncodeFrame(MsgType::kGetStatsResp,
                                  EncodeStatsResp(BuildStats())));
      return;
    }
    case MsgType::kGetMetrics: {
      MetricsResp resp;
      resp.head.epoch = epoch();
      resp.prometheus_text = obs::Registry::Global().PrometheusText();
      CountOutcome(Status::OK());
      SendFrame(conn, EncodeFrame(MsgType::kGetMetricsResp,
                                  EncodeMetricsResp(resp)));
      return;
    }
    case MsgType::kHealth: {
      // Answered inline by every role, draining included: if the process
      // can speak the protocol, it is alive.
      HealthResp resp;
      resp.head.epoch = epoch();
      resp.role = static_cast<uint32_t>(role());
      CountOutcome(Status::OK());
      SendFrame(conn, EncodeFrame(MsgType::kHealthResp,
                                  EncodeHealthResp(resp)));
      return;
    }
    case MsgType::kRole: {
      CountOutcome(Status::OK());
      SendFrame(conn,
                EncodeFrame(MsgType::kRoleResp, EncodeRoleResp(BuildRole())));
      return;
    }
    case MsgType::kReplicaSubscribe: {
      // Partition injection: the replica-class link is severed — the
      // subscription dies like a cut cable (no response), while client
      // connections on the same server keep working.
      if (QMATCH_FAILPOINT_FIRED("net.partition.replica")) {
        QMATCH_COUNTER_ADD("net.partition_drops", 1);
        conn->closing = true;
        return;
      }
      if (options_.replication_log == nullptr) {
        reject(Status::Unavailable("replication not enabled on this server"));
        return;
      }
      replica::SubscribeReq req;
      if (!replica::DecodeSubscribeReq(frame.payload, &req)) {
        reject(Status::InvalidArgument("undecodable Subscribe payload"));
        return;
      }
      // The handshake is one of the three demotion triggers: a subscriber
      // arriving from a higher epoch fences this server before any reply.
      ObserveEpoch(req.epoch);
      const uint64_t winner = fenced_by_.load(std::memory_order_acquire);
      if (winner != 0) {
        reject_stale(winner);
        return;
      }
      if (req.epoch != 0 && req.epoch < epoch()) {
        // A promoted server never anchors a lower epoch: the subscriber
        // reads the head's (higher) epoch, adopts it and resubscribes.
        reject_stale(epoch());
        return;
      }
      CountOutcome(Status::OK());
      conn->replica = true;
      conn->replica_next_seq = req.from_seq == 0 ? 1 : req.from_seq;
      // Push-mode from here on: the subscriber never writes again, so the
      // idle timeout no longer applies.
      if (conn->idle_timer != 0) {
        loop_.timers().Cancel(conn->idle_timer);
        conn->idle_timer = 0;
      }
      replica_subscribers_.fetch_add(1, std::memory_order_relaxed);
      QMATCH_COUNTER_ADD("net.replica_subscribers", 1);
      PumpReplica(conn);
      return;
    }
    default:
      reject(Status::InvalidArgument("unknown request type " +
                                     std::to_string(frame.type)));
      return;
  }
}

void Server::PumpReplica(Connection* conn) {
  replica::ReplicationLog* log = options_.replication_log;
  if (log == nullptr || !conn->replica || conn->closing) return;
  // A fenced server never re-anchors a standby at its stale epoch: the
  // link is cut and the subscriber finds the winner through its endpoints.
  if (fenced()) {
    conn->closing = true;
    return;
  }
  while (true) {
    std::vector<replica::LogRecord> batch;
    if (!log->Fetch(conn->replica_next_seq, options_.replica_batch_records,
                    &batch)) {
      // The subscriber predates the log's retained window: anchor it with
      // a full snapshot. The sequence is captured BEFORE the state export,
      // so records racing the export overlap the snapshot and replay
      // idempotently (last-wins, same as journal-over-snapshot recovery).
      replica::SnapshotMsg snap;
      snap.next_seq = log->head_seq() + 1;
      snap.epoch = epoch();
      std::vector<std::pair<std::string, std::string>> schemas =
          ExportSchemas();
      snap.schemas.reserve(schemas.size());
      for (auto& [name, xsd_text] : schemas) {
        snap.schemas.push_back(
            replica::SchemaRec{std::move(name), std::move(xsd_text)});
      }
      const persist::StoreState state = engine_->ExportState();
      snap.cache_payloads.reserve(state.cache_entries.size());
      for (const persist::CacheEntryRec& rec : state.cache_entries) {
        snap.cache_payloads.push_back(persist::EncodeCacheRecordPayload(rec));
      }
      snap.corpus_payloads.reserve(state.corpus_entries.size());
      for (const persist::CorpusEntryRec& rec : state.corpus_entries) {
        snap.corpus_payloads.push_back(persist::EncodeCorpusRecordPayload(rec));
      }
      std::string payload = replica::EncodeSnapshotMsg(snap);
      if (payload.size() > kMaxFramePayload) {
        // Unshippable state: close rather than send a frame the peer is
        // obliged to reject.
        QMATCH_COUNTER_ADD("replica.snapshot_oversize", 1);
        conn->closing = true;
        return;
      }
      conn->replica_next_seq = snap.next_seq;
      QMATCH_COUNTER_ADD("replica.snapshots_sent", 1);
      SendFrame(conn, EncodeFrame(MsgType::kReplicaSnapshot, payload));
      continue;  // records from next_seq may already be waiting
    }
    if (batch.empty()) return;  // caught up
    replica::RecordsMsg msg;
    msg.head_seq = log->head_seq();
    msg.epoch = epoch();
    conn->replica_next_seq = batch.back().seq + 1;
    msg.records = std::move(batch);
    std::string payload = replica::EncodeRecordsMsg(msg);
    if (payload.size() > kMaxFramePayload) {
      QMATCH_COUNTER_ADD("replica.batch_oversize", 1);
      conn->closing = true;
      return;
    }
    QMATCH_COUNTER_ADD("replica.records_sent", msg.records.size());
    SendFrame(conn, EncodeFrame(MsgType::kReplicaRecords, payload));
  }
}

void Server::PumpAllReplicas() {
  // Ids first: PumpReplica appends output and FlushConnection may close
  // (erasing from connections_), so the map is never iterated live.
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) {
    if (conn->replica) ids.push_back(id);
  }
  for (const uint64_t id : ids) {
    Connection* conn = FindConnection(id);
    if (conn == nullptr) continue;
    PumpReplica(conn);
    conn = FindConnection(id);
    if (conn != nullptr) FlushConnection(conn);
  }
}

void Server::ArmReplicaHeartbeat() {
  if (options_.replica_heartbeat.count() <= 0) return;
  heartbeat_timer_ =
      loop_.timers().ScheduleAfter(options_.replica_heartbeat, [this] {
        replica::ReplicationLog* log = options_.replication_log;
        if (log != nullptr) {
          if (QMATCH_FAILPOINT_FIRED("net.partition.replica") || fenced()) {
            // Partitioned or fenced: sever every subscriber instead of
            // pumping — a dead link must look dead, and a stale primary
            // must not keep feeding a standby it no longer owns.
            CloseAllReplicas();
          } else {
            // Ship anything owed first, then an empty batch carrying the
            // head: an idle standby's lag reading stays truthful and a dead
            // link surfaces as a send failure here instead of never.
            PumpAllReplicas();
            replica::RecordsMsg heartbeat;
            heartbeat.head_seq = log->head_seq();
            heartbeat.epoch = epoch();
            const std::string frame = EncodeFrame(
                MsgType::kReplicaRecords, replica::EncodeRecordsMsg(heartbeat));
            std::vector<uint64_t> ids;
            ids.reserve(connections_.size());
            for (const auto& [id, conn] : connections_) {
              if (conn->replica && !conn->closing) ids.push_back(id);
            }
            for (const uint64_t id : ids) {
              Connection* conn = FindConnection(id);
              if (conn == nullptr) continue;
              SendFrame(conn, frame);
              FlushConnection(conn);
            }
          }
        }
        ProbePeerEpoch();
        ArmReplicaHeartbeat();
      });
}

void Server::CloseAllReplicas() {
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) {
    if (conn->replica) ids.push_back(id);
  }
  for (const uint64_t id : ids) CloseConnection(id);
  if (!ids.empty()) {
    QMATCH_COUNTER_ADD("net.replica_links_severed", ids.size());
  }
}

void Server::ProbePeerEpoch() {
  // The probe is a primary-side defence: only a server that believes it
  // owns the epoch needs to discover it does not. (Standbys learn from
  // their stream instead.)
  if (role() != Role::kPrimary) return;
  std::string host;
  uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(peer_mutex_);
    host = peer_host_;
    port = peer_port_;
  }
  if (port == 0) return;
  // Partition injection: the peer link is down — probes vanish.
  if (QMATCH_FAILPOINT_FIRED("net.partition.peer")) {
    QMATCH_COUNTER_ADD("net.partition_drops", 1);
    return;
  }
  // One probe in flight at a time: heartbeats must not pile blocked
  // connects behind a slow peer.
  if (probe_inflight_.exchange(true, std::memory_order_acq_rel)) return;
  workers_->Submit([this, host, port] {
    Result<Client> peer =
        Client::Connect(host, port, options_.peer_probe_timeout);
    if (peer.ok()) {
      Result<RoleResp> role_resp = peer.value().GetRole();
      if (role_resp.ok()) {
        QMATCH_COUNTER_ADD("net.peer_probes_ok", 1);
        ObserveEpoch(role_resp.value().head.epoch);
      }
    }
    probe_inflight_.store(false, std::memory_order_release);
  });
}

void Server::SendFrame(Connection* conn, std::string frame_bytes) {
  conn->out.append(frame_bytes);
}

void Server::FlushConnection(Connection* conn) {
  const uint64_t conn_id = conn->id;
  // Chaos handle: a fired net.write is a fatal socket error mid-flush.
  if (!conn->out.empty() && QMATCH_FAILPOINT_FIRED("net.write")) {
    QMATCH_COUNTER_ADD("net.write_faults", 1);
    CloseConnection(conn_id);
    return;
  }
  while (!conn->out.empty()) {
    // MSG_NOSIGNAL: flushing to a just-disconnected peer must surface as
    // EPIPE (close the connection), never as a process-killing SIGPIPE.
    const ssize_t n =
        send(conn->fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn_id);
    return;
  }
  if (conn->out.empty() && conn->closing && !conn->busy) {
    CloseConnection(conn_id);
    return;
  }
  UpdateEpollMask(conn);
}

void Server::UpdateEpollMask(Connection* conn) {
  const uint32_t mask =
      EPOLLIN | (conn->out.empty() ? 0u : static_cast<uint32_t>(EPOLLOUT));
  loop_.Modify(conn->fd, mask);
}

void Server::CloseConnection(uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if (conn->idle_timer != 0) loop_.timers().Cancel(conn->idle_timer);
  loop_.Remove(conn->fd);
  close(conn->fd);
  conn->fd = -1;
  connections_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
  QMATCH_COUNTER_ADD("net.closed", 1);
  QMATCH_GAUGE_ADD("net.connections", -1);
}

void Server::ArmIdleTimer(Connection* conn) {
  if (conn->replica) return;  // push-mode: never idle-closed
  if (options_.idle_timeout.count() <= 0) return;
  if (conn->idle_timer != 0) loop_.timers().Cancel(conn->idle_timer);
  const uint64_t conn_id = conn->id;
  conn->idle_timer = loop_.timers().ScheduleAfter(
      options_.idle_timeout, [this, conn_id] {
        QMATCH_COUNTER_ADD("net.idle_timeouts", 1);
        CloseConnection(conn_id);
      });
}

// --- worker pool -----------------------------------------------------------

void Server::CountOutcome(const Status& status) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  QMATCH_COUNTER_ADD("net.requests", 1);
  switch (status.code()) {
    case StatusCode::kOk:
      QMATCH_COUNTER_ADD("net.requests_ok", 1);
      break;
    case StatusCode::kOverloaded:
      QMATCH_COUNTER_ADD("net.requests_overloaded", 1);
      break;
    case StatusCode::kDeadlineExceeded:
      QMATCH_COUNTER_ADD("net.requests_deadline_exceeded", 1);
      break;
    case StatusCode::kResourceExhausted:
      QMATCH_COUNTER_ADD("net.requests_resource_exhausted", 1);
      break;
    case StatusCode::kCancelled:
      QMATCH_COUNTER_ADD("net.requests_cancelled", 1);
      break;
    case StatusCode::kUnavailable:
      QMATCH_COUNTER_ADD("net.requests_unavailable", 1);
      break;
    default:
      QMATCH_COUNTER_ADD("net.requests_error", 1);
      break;
  }
}

Deadline Server::RequestDeadline(uint64_t deadline_ms) const {
  milliseconds budget = deadline_ms > 0
                            ? milliseconds(static_cast<int64_t>(deadline_ms))
                            : options_.default_deadline;
  // The ceiling also binds "unbounded" asks: with a max configured, no
  // request parks on the engine forever.
  if (options_.max_deadline.count() > 0 &&
      (budget.count() <= 0 || budget > options_.max_deadline)) {
    budget = options_.max_deadline;
  }
  if (budget.count() <= 0) return Deadline::Infinite();
  return Deadline::After(budget);
}

StatsResp Server::BuildStats() const {
  StatsResp s;
  s.head.epoch = epoch();
  s.schemas = schema_count();
  const core::MatchEngineCacheStats cache = engine_->cache_stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_entries = cache.entries;
  s.admission_shed = engine_->admission().shed_total();
  s.requests_total = requests_.load(std::memory_order_relaxed);
  s.connections_active = connections_.size();
  s.pressure = engine_->Pressure();
  return s;
}

RoleResp Server::BuildRole() const {
  RoleResp resp;
  resp.head.epoch = epoch();
  const Role r = role();
  resp.role = static_cast<uint32_t>(r);
  resp.ready = Ready() ? 1 : 0;
  if (r == Role::kPrimary && options_.replication_log != nullptr) {
    // A primary is its own source of truth: applied == head by definition.
    const uint64_t head = options_.replication_log->head_seq();
    resp.applied_seq = head;
    resp.head_seq = head;
  } else {
    resp.applied_seq = replica_applied_.load(std::memory_order_relaxed);
    resp.head_seq = replica_head_.load(std::memory_order_relaxed);
  }
  resp.lag_records = resp.head_seq > resp.applied_seq
                         ? resp.head_seq - resp.applied_seq
                         : 0;
  return resp;
}

std::shared_ptr<const xsd::Schema> Server::LookupSchema(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(schemas_mutex_);
  const auto it = schemas_.find(name);
  return it == schemas_.end() ? nullptr : it->second.schema;
}

void Server::ExecuteSubmitSchema(uint64_t conn_id, SubmitSchemaReq req) {
  QMATCH_SPAN(span, "net.submit_schema");
  const steady_clock::time_point start = steady_clock::now();
  SubmitSchemaResp resp;
  xsd::ParseOptions parse = options_.parse;
  parse.schema_name = req.name;
  if (req.name.empty()) {
    resp.head = ResponseHead::FromStatus(
        Status::InvalidArgument("schema name must be non-empty"));
  } else {
    Result<xsd::Schema> schema = xsd::ParseSchema(req.xsd_text, parse);
    if (!schema.ok()) {
      resp.head = ResponseHead::FromStatus(schema.status());
    } else {
      resp.fingerprint = xsd::SchemaFingerprint(*schema);
      resp.node_count = schema->NodeCount();
      auto shared = std::make_shared<const xsd::Schema>(std::move(*schema));
      {
        std::lock_guard<std::mutex> lock(schemas_mutex_);
        schemas_[req.name] = SchemaEntry{std::move(shared), req.xsd_text};
      }
      if (options_.schema_observer) {
        options_.schema_observer(req.name, req.xsd_text);
      }
    }
  }
  QMATCH_HISTOGRAM_OBSERVE(
      "net.request_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          steady_clock::now() - start)
          .count());
  resp.head.epoch = epoch();
  CompleteRequest(conn_id, resp.head.ToStatus(),
                  EncodeFrame(MsgType::kSubmitSchemaResp,
                              EncodeSubmitSchemaResp(resp)));
}

void Server::ExecuteMatchPair(uint64_t conn_id, MatchPairReq req) {
  QMATCH_SPAN(span, "net.match_pair");
  const steady_clock::time_point start = steady_clock::now();
  MatchPairResp resp;
  const std::shared_ptr<const xsd::Schema> source = LookupSchema(req.source);
  const std::shared_ptr<const xsd::Schema> target = LookupSchema(req.target);
  if (source == nullptr || target == nullptr) {
    resp.head = ResponseHead::FromStatus(Status::NotFound(
        "unknown schema: " + (source == nullptr ? req.source : req.target)));
  } else {
    core::EngineRequestOptions opts;
    opts.deadline = RequestDeadline(req.deadline_ms);
    const core::EngineMatchResult result =
        engine_->Match(*source, *target, opts);
    resp.head = ResponseHead::FromStatus(result.status);
    resp.algorithm = result.result.algorithm;
    resp.mode = static_cast<uint32_t>(result.result.mode);
    resp.schema_qom = result.result.schema_qom;
    resp.completed_rows = result.completed_rows;
    resp.total_rows = result.total_rows;
    resp.correspondences.reserve(result.result.correspondences.size());
    for (const Correspondence& c : result.result.correspondences) {
      resp.correspondences.push_back(
          WireCorrespondence{c.source->Path(), c.target->Path(), c.score});
    }
  }
  QMATCH_HISTOGRAM_OBSERVE(
      "net.request_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          steady_clock::now() - start)
          .count());
  resp.head.epoch = epoch();
  CompleteRequest(
      conn_id, resp.head.ToStatus(),
      EncodeFrame(MsgType::kMatchPairResp, EncodeMatchPairResp(resp)));
}

void Server::ExecuteMatchCorpus(uint64_t conn_id, MatchCorpusReq req) {
  QMATCH_SPAN(span, "net.match_corpus");
  const steady_clock::time_point start = steady_clock::now();
  MatchCorpusResp resp;
  const std::shared_ptr<const xsd::Schema> query = LookupSchema(req.query);
  if (query == nullptr) {
    resp.head = ResponseHead::FromStatus(
        Status::NotFound("unknown schema: " + req.query));
  } else {
    // One shared deadline across every candidate, same as MatchCorpus's
    // request envelope: candidates matched after expiry degrade typed.
    core::EngineRequestOptions opts;
    opts.deadline = RequestDeadline(req.deadline_ms);
    std::vector<std::pair<std::string, std::shared_ptr<const xsd::Schema>>>
        candidates;
    {
      std::lock_guard<std::mutex> lock(schemas_mutex_);
      candidates.reserve(schemas_.size());
      for (const auto& [name, entry] : schemas_) {
        if (name != req.query) candidates.emplace_back(name, entry.schema);
      }
    }
    resp.entries.reserve(candidates.size());
    for (const auto& [name, schema] : candidates) {
      const core::EngineMatchResult result =
          engine_->Match(*query, *schema, opts);
      WireCorpusEntry entry;
      entry.name = name;
      entry.code = static_cast<uint32_t>(result.status.code());
      entry.schema_qom = result.result.schema_qom;
      entry.correspondences = result.result.correspondences.size();
      resp.entries.push_back(std::move(entry));
    }
  }
  QMATCH_HISTOGRAM_OBSERVE(
      "net.request_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          steady_clock::now() - start)
          .count());
  resp.head.epoch = epoch();
  CompleteRequest(
      conn_id, resp.head.ToStatus(),
      EncodeFrame(MsgType::kMatchCorpusResp, EncodeMatchCorpusResp(resp)));
}

void Server::CompleteRequest(uint64_t conn_id, const Status& status,
                             std::string frame_bytes) {
  // The outcome is counted HERE, on the worker, before the connection is
  // consulted: a client that disconnected mid-request still accounts for
  // exactly one outcome (the chaos suite's exactly-once contract).
  CountOutcome(status);
  loop_.Post([this, conn_id, frame_bytes = std::move(frame_bytes)]() mutable {
    Connection* conn = FindConnection(conn_id);
    if (conn == nullptr) return;  // disconnected mid-request: response dropped
    conn->busy = false;
    SendFrame(conn, std::move(frame_bytes));
    MaybeDispatchNext(conn);
    FlushConnection(conn);
  });
}

}  // namespace qmatch::net
