#include "net/resilient_client.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/random.h"
#include "obs/obs.h"

namespace qmatch::net {

namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using std::chrono::steady_clock;

constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

}  // namespace

nanoseconds RetryBackoff(milliseconds base, milliseconds cap, uint64_t attempt,
                         uint64_t seed) {
  if (base.count() <= 0) return nanoseconds(0);
  // min(base * 2^attempt, cap), with the shift clamped so it cannot
  // overflow before the cap comparison gets a say.
  const uint64_t shift = std::min<uint64_t>(attempt, 20);
  int64_t span_ms = base.count() << shift;
  if (span_ms <= 0 || (cap.count() > 0 && span_ms > cap.count())) {
    span_ms = cap.count() > 0 ? cap.count() : base.count();
  }
  // Jitter to [span/2, span]: decorrelates a thundering herd while keeping
  // the schedule fully reproducible from (seed, attempt).
  Random jitter(seed ^ (kGolden * (attempt + 1)));
  const int64_t span_ns = span_ms * 1'000'000;
  return nanoseconds(span_ns / 2 +
                     static_cast<int64_t>(jitter.Uniform(
                         static_cast<uint64_t>(span_ns / 2) + 1)));
}

ResilientClient::ResilientClient(ResilientClientOptions options)
    : options_(std::move(options)),
      endpoint_epochs_(options_.endpoints.size(), 0) {}

void ResilientClient::NoteEpoch(size_t endpoint, const ResponseHead& head) {
  if (head.epoch != 0 && endpoint < endpoint_epochs_.size()) {
    endpoint_epochs_[endpoint] = head.epoch;
    max_epoch_ = std::max(max_epoch_, head.epoch);
  }
  // A fenced server's refusal names the epoch that beat it — higher than
  // anything in its own head. "winner_epoch=<N>" is part of the
  // stale_epoch message contract (net::Server::DispatchFrame).
  static constexpr std::string_view kWinnerKey = "winner_epoch=";
  const size_t at = head.message.find(kWinnerKey);
  if (at != std::string::npos) {
    uint64_t winner = 0;
    for (size_t i = at + kWinnerKey.size(); i < head.message.size(); ++i) {
      const char c = head.message[i];
      if (c < '0' || c > '9') break;
      winner = winner * 10 + static_cast<uint64_t>(c - '0');
    }
    max_epoch_ = std::max(max_epoch_, winner);
  }
}

void ResilientClient::Failover() {
  if (options_.endpoints.empty()) return;
  const size_t n = options_.endpoints.size();
  size_t next = (endpoint_index_ + 1) % n;  // plain rotation fallback
  // First choice: an endpoint KNOWN to hold the highest epoch seen (the
  // new primary, once it has answered anything). Second choice: the next
  // endpoint not known to be stale — an unanswered endpoint (epoch 0) may
  // BE the new primary. Known-stale endpoints are never failed back to
  // while a fresher one exists; if every endpoint is stale (heal in
  // progress) plain rotation wins — availability over precision.
  bool chosen = false;
  if (max_epoch_ > 0) {
    for (size_t step = 0; step < n && !chosen; ++step) {
      const size_t cand = (endpoint_index_ + 1 + step) % n;
      if (cand != endpoint_index_ && endpoint_epochs_[cand] == max_epoch_) {
        next = cand;
        chosen = true;
      }
    }
  }
  for (size_t step = 0; step < n && !chosen; ++step) {
    const size_t cand = (endpoint_index_ + 1 + step) % n;
    const uint64_t known = endpoint_epochs_[cand];
    if (known == 0 || known >= max_epoch_) {
      next = cand;
      chosen = true;
    } else {
      ++stats_.stale_endpoint_skips;
      QMATCH_COUNTER_ADD("client.stale_endpoint_skips", 1);
    }
  }
  endpoint_index_ = next;
  ++stats_.failovers;
  QMATCH_COUNTER_ADD("client.failovers", 1);
}

template <typename Resp>
Result<Resp> ResilientClient::CallRetry(MsgType req_type, std::string payload,
                                        MsgType resp_type,
                                        bool (*decode)(std::string_view,
                                                       Resp*),
                                        bool idempotent) {
  if (options_.endpoints.empty()) {
    return Status::Unavailable("no endpoints configured");
  }
  const bool bounded = options_.call_deadline.count() > 0;
  const steady_clock::time_point deadline_tp =
      steady_clock::now() + options_.call_deadline;
  Status last_error = Status::Unavailable("retry budget was zero attempts");
  const std::string frame_bytes = EncodeFrame(req_type, payload);
  const size_t max_attempts = options_.retry_budget + 1;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      QMATCH_COUNTER_ADD("client.retries", 1);
      nanoseconds pause =
          RetryBackoff(options_.backoff_base, options_.backoff_cap,
                       attempt - 1, options_.backoff_seed ^ attempt_counter_);
      if (bounded) {
        const nanoseconds remaining = deadline_tp - steady_clock::now();
        pause = std::min(pause, std::max(nanoseconds(0), remaining));
      }
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
    }
    ++attempt_counter_;
    // The call deadline bounds TOTAL time: each attempt gets whatever I/O
    // budget is left, and an expired budget returns the last real error,
    // not a fresh generic one.
    milliseconds io_budget = options_.io_timeout;
    if (bounded) {
      const milliseconds remaining =
          std::chrono::duration_cast<milliseconds>(deadline_tp -
                                                   steady_clock::now());
      if (remaining.count() <= 0) break;
      io_budget = std::min(io_budget, std::max(milliseconds(1), remaining));
    }
    if (!client_.connected()) {
      const Endpoint& ep = options_.endpoints[endpoint_index_];
      Result<Client> fresh = Client::Connect(
          ep.host, ep.port, std::min(options_.connect_timeout, io_budget));
      if (!fresh.ok()) {
        // Nothing was sent: every request type may try the next endpoint.
        last_error = fresh.status();
        Failover();
        continue;
      }
      client_ = std::move(*fresh);
      ++stats_.reconnects;
      QMATCH_COUNTER_ADD("client.reconnects", 1);
    }
    const Status sent = client_.SendBytes(frame_bytes);
    if (!sent.ok()) {
      // Bytes may or may not have reached the server: ambiguous from here.
      last_error = sent;
      client_.Close();
      Failover();
      if (!idempotent) return last_error;
      continue;
    }
    Result<Frame> frame = client_.ReadFrame();
    if (!frame.ok()) {
      // Sent but unanswered — the server may have executed the request.
      last_error = frame.status();
      client_.Close();
      Failover();
      if (!idempotent) return last_error;
      continue;
    }
    Resp resp;
    if (frame->type == static_cast<uint32_t>(MsgType::kErrorResp)) {
      if (!DecodeResponseHead(frame->payload, &resp.head)) {
        last_error = Status::DataLoss("undecodable error response head");
        client_.Close();
        Failover();
        if (!idempotent) return last_error;
        continue;
      }
      NoteEpoch(endpoint_index_, resp.head);
      if (resp.head.status_code() == StatusCode::kUnavailable) {
        // The server refused BEFORE any work ran (standby or draining):
        // retrying against the next endpoint is safe for every request
        // type, SubmitSchema included.
        last_error = resp.head.ToStatus();
        client_.Close();
        Failover();
        continue;
      }
      return resp;  // any other typed verdict belongs to the caller
    }
    if (frame->type != static_cast<uint32_t>(resp_type)) {
      last_error = Status::DataLoss("mispaired response type " +
                                    std::to_string(frame->type));
      client_.Close();
      Failover();
      if (!idempotent) return last_error;
      continue;
    }
    if (!decode(frame->payload, &resp)) {
      last_error = Status::DataLoss("undecodable response payload");
      client_.Close();
      Failover();
      if (!idempotent) return last_error;
      continue;
    }
    NoteEpoch(endpoint_index_, resp.head);
    return resp;
  }
  return last_error;
}

Result<SubmitSchemaResp> ResilientClient::SubmitSchema(
    const std::string& name, std::string_view xsd_text) {
  SubmitSchemaReq req;
  req.name = name;
  req.xsd_text = std::string(xsd_text);
  // NOT idempotent past an ambiguous send: a registration that may have
  // landed is the caller's call to repeat.
  return CallRetry<SubmitSchemaResp>(
      MsgType::kSubmitSchema, EncodeSubmitSchemaReq(req),
      MsgType::kSubmitSchemaResp, &DecodeSubmitSchemaResp,
      /*idempotent=*/false);
}

Result<MatchPairResp> ResilientClient::MatchPair(const std::string& source,
                                                 const std::string& target,
                                                 uint64_t deadline_ms) {
  MatchPairReq req;
  req.source = source;
  req.target = target;
  req.deadline_ms = deadline_ms;
  return CallRetry<MatchPairResp>(MsgType::kMatchPair, EncodeMatchPairReq(req),
                                  MsgType::kMatchPairResp,
                                  &DecodeMatchPairResp,
                                  /*idempotent=*/true);
}

Result<MatchCorpusResp> ResilientClient::MatchCorpus(const std::string& query,
                                                     uint64_t deadline_ms) {
  MatchCorpusReq req;
  req.query = query;
  req.deadline_ms = deadline_ms;
  return CallRetry<MatchCorpusResp>(
      MsgType::kMatchCorpus, EncodeMatchCorpusReq(req),
      MsgType::kMatchCorpusResp, &DecodeMatchCorpusResp,
      /*idempotent=*/true);
}

Result<StatsResp> ResilientClient::GetStats() {
  return CallRetry<StatsResp>(MsgType::kGetStats, std::string(),
                              MsgType::kGetStatsResp, &DecodeStatsResp,
                              /*idempotent=*/true);
}

Result<MetricsResp> ResilientClient::GetMetrics() {
  return CallRetry<MetricsResp>(MsgType::kGetMetrics, std::string(),
                                MsgType::kGetMetricsResp, &DecodeMetricsResp,
                                /*idempotent=*/true);
}

Result<HealthResp> ResilientClient::Health() {
  return CallRetry<HealthResp>(MsgType::kHealth, std::string(),
                               MsgType::kHealthResp, &DecodeHealthResp,
                               /*idempotent=*/true);
}

Result<RoleResp> ResilientClient::GetRole() {
  return CallRetry<RoleResp>(MsgType::kRole, std::string(),
                             MsgType::kRoleResp, &DecodeRoleResp,
                             /*idempotent=*/true);
}

}  // namespace qmatch::net
