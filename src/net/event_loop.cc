#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace qmatch::net {

namespace {
Status ErrnoStatus(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (!ok()) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    close(wake_fd_);
    wake_fd_ = -1;
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  if (!ok()) return Status::Internal("event loop failed to initialise");
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return ErrnoStatus("epoll_ctl(ADD)");
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return ErrnoStatus("epoll_ctl(MOD)");
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  handlers_.erase(fd);
  // The fd may already be closed (EPOLL_CTL_DEL then fails with EBADF);
  // either way it no longer dispatches.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(task));
  }
  Wake();
}

void EventLoop::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; a failed write is only a
  // lost nudge, which the pre-wait drain covers.
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (std::function<void()>& task : tasks) task();
}

int EventLoop::PollTimeoutMs() const {
  const std::optional<TimerWheel::Clock::duration> next =
      timers_.UntilNext(TimerWheel::Clock::now());
  if (!next.has_value()) return -1;  // no timers: sleep until an fd or Post
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(*next).count();
  if (ms <= 0) return 0;
  return ms > 60000 ? 60000 : static_cast<int>(ms);
}

int EventLoop::RunOnce(int timeout_ms) {
  epoll_event events[64];
  const int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      uint64_t drained = 0;
      [[maybe_unused]] ssize_t r = read(wake_fd_, &drained, sizeof(drained));
      continue;
    }
    // Look up per event, not per batch: an earlier handler this round may
    // have Removed this fd (e.g. the peer connection it was proxying for).
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    const std::shared_ptr<FdHandler> handler = it->second;  // pin across self-Remove
    (*handler)(events[i].events);
    ++dispatched;
  }
  DrainPosted();
  timers_.Advance(TimerWheel::Clock::now());
  return dispatched;
}

void EventLoop::Run() {
  if (!ok()) return;
  loop_thread_.store(std::this_thread::get_id());
  while (!stop_.load(std::memory_order_acquire)) {
    RunOnce(PollTimeoutMs());
  }
  // Final drain so a Stop posted together with cleanup tasks runs them.
  DrainPosted();
  loop_thread_.store(std::thread::id());
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

}  // namespace qmatch::net
