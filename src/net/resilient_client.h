#ifndef QMATCH_NET_RESILIENT_CLIENT_H_
#define QMATCH_NET_RESILIENT_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/client.h"
#include "net/frame.h"

namespace qmatch::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Tuning knobs of the failover-aware client (DESIGN.md §15).
struct ResilientClientOptions {
  /// Walked in order on failure, sticky on success: the client stays on
  /// the endpoint that last answered until it stops answering.
  std::vector<Endpoint> endpoints;

  /// Per-attempt connect budget (further clamped by the call deadline).
  std::chrono::milliseconds connect_timeout{1000};

  /// Per-attempt socket I/O budget (further clamped by the call deadline).
  std::chrono::milliseconds io_timeout{2000};

  /// Total wall-clock bound of one logical call across every retry,
  /// backoff sleep and failover. 0 = unbounded (the per-attempt timeouts
  /// still apply).
  std::chrono::milliseconds call_deadline{10000};

  /// Extra attempts after the first (so retry_budget = 4 means at most 5
  /// attempts touch a socket).
  size_t retry_budget = 4;

  /// Jittered exponential backoff between attempts: attempt n sleeps
  /// uniformly in [d/2, d] where d = min(base * 2^n, cap). Deterministic
  /// under a fixed seed (RetryBackoff below is the exact function).
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_cap{500};
  uint64_t backoff_seed = 0;
};

/// The backoff schedule, exposed as a pure function so tests can assert
/// determinism: same (base, cap, attempt, seed) -> same sleep, always in
/// [d/2, d]. base <= 0 disables sleeping entirely.
std::chrono::nanoseconds RetryBackoff(std::chrono::milliseconds base,
                                      std::chrono::milliseconds cap,
                                      uint64_t attempt, uint64_t seed);

struct ResilientClientStats {
  uint64_t retries = 0;     ///< attempts after the first, across all calls
  uint64_t reconnects = 0;  ///< sockets (re)established
  uint64_t failovers = 0;   ///< endpoint advances after a failure
  /// Endpoints passed over during failover because their last answer
  /// carried an epoch below the highest seen (split-brain fencing).
  uint64_t stale_endpoint_skips = 0;
};

/// A qmatchd client that survives its server (DESIGN.md §15): automatic
/// reconnect with seeded jittered exponential backoff, a bounded retry
/// budget, and ordered multi-endpoint failover (sticky until failure).
///
/// Retry rules — the part that makes failover SAFE, not just persistent:
///   - A connect failure happened before any bytes were sent: every
///     request type may retry.
///   - A typed kUnavailable response is the server refusing BEFORE any
///     work ran (standby, draining): every request type may retry against
///     the next endpoint.
///   - A transport error after the request bytes were sent is AMBIGUOUS —
///     the server may have executed the request. Only idempotent requests
///     (MatchPair, MatchCorpus, GetStats, GetMetrics, Health, GetRole)
///     retry past this point; SubmitSchema surfaces the transport error to
///     the caller, which owns the resubmit decision.
///   - Budget exhaustion returns the LAST error observed (the typed
///     kUnavailable, the connect errno, ...), never a generic failure.
///
/// Epoch awareness (DESIGN.md §16): every response head carries the
/// answering server's fencing epoch, and a fenced server's
/// kUnavailable{stale_epoch} refusal names the winning epoch. The client
/// tracks both, prefers the endpoint known to hold the highest epoch on
/// failover, and never fails BACK to an endpoint whose last answer was
/// stale — the split-brain half of the failover contract.
///
/// Not thread-safe: one instance per calling thread, like net::Client.
class ResilientClient {
 public:
  explicit ResilientClient(ResilientClientOptions options);

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;
  ResilientClient(ResilientClient&&) = default;
  ResilientClient& operator=(ResilientClient&&) = default;

  Result<SubmitSchemaResp> SubmitSchema(const std::string& name,
                                        std::string_view xsd_text);
  Result<MatchPairResp> MatchPair(const std::string& source,
                                  const std::string& target,
                                  uint64_t deadline_ms = 0);
  Result<MatchCorpusResp> MatchCorpus(const std::string& query,
                                      uint64_t deadline_ms = 0);
  Result<StatsResp> GetStats();
  Result<MetricsResp> GetMetrics();
  Result<HealthResp> Health();
  Result<RoleResp> GetRole();

  /// Index into options().endpoints the client is currently sticky on.
  size_t current_endpoint() const { return endpoint_index_; }

  /// Highest fencing epoch seen across every response head and every
  /// winner_epoch named by a stale_epoch refusal. 0 until a server answers.
  uint64_t highest_epoch() const { return max_epoch_; }
  /// Last epoch the given endpoint answered with (0 = never answered).
  uint64_t endpoint_epoch(size_t index) const {
    return index < endpoint_epochs_.size() ? endpoint_epochs_[index] : 0;
  }
  bool connected() const { return client_.connected(); }
  const ResilientClientOptions& options() const { return options_; }
  ResilientClientStats stats() const { return stats_; }

  void Close() { client_.Close(); }

 private:
  template <typename Resp>
  Result<Resp> CallRetry(MsgType req_type, std::string payload,
                         MsgType resp_type,
                         bool (*decode)(std::string_view, Resp*),
                         bool idempotent);

  /// Advances the sticky endpoint after a failure, skipping endpoints
  /// known to be at a stale epoch and preferring the highest-epoch one.
  void Failover();

  /// Records the epoch an endpoint answered with (head.epoch) and raises
  /// the high-water mark; also mines a stale_epoch refusal's message for
  /// the winning epoch it names.
  void NoteEpoch(size_t endpoint, const ResponseHead& head);

  ResilientClientOptions options_;
  Client client_;
  size_t endpoint_index_ = 0;
  uint64_t attempt_counter_ = 0;  ///< global: diversifies backoff jitter
  ResilientClientStats stats_;
  std::vector<uint64_t> endpoint_epochs_;
  uint64_t max_epoch_ = 0;
};

}  // namespace qmatch::net

#endif  // QMATCH_NET_RESILIENT_CLIENT_H_
