#ifndef QMATCH_NET_FRAME_H_
#define QMATCH_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qmatch::net {

/// The qmatchd wire protocol (DESIGN.md §14): a stream of self-delimiting
/// frames sharing the persist layer's record discipline — little-endian
/// fixed-width framing, a CRC32 trailer over everything the length field
/// governs, and a hostile-length pre-check so a lying peer can never make
/// the server allocate from an unvalidated length.
///
///   frame:
///     [4]  u32 message type  (MsgType)
///     [4]  u32 payload length (<= kMaxFramePayload, checked BEFORE any
///          allocation — the fuzz contract inherited from persist)
///     [n]  payload            (persist::Encoder wire format)
///     [4]  CRC32 of type + length + payload
///
/// Requests occupy the low type space; a response carries its request's
/// type with kResponseBit set, so a pipelined client can pair them without
/// sequence numbers (responses are written in request order per
/// connection). kErrorResp answers bytes that never became a decodable
/// request (bad CRC, bogus length, unknown type, undecodable payload) —
/// always a typed frame, never a silently dropped connection.
///
/// Every response payload begins with a ResponseHead (u32 StatusCode +
/// message); request-specific fields follow only when the head is OK.
/// Doubles travel as IEEE-754 bit patterns via Encoder::PutDouble, so a
/// QoM read over the wire is bit-identical to the in-process value — the
/// serving acceptance criterion, same as warm start's.

enum class MsgType : uint32_t {
  kSubmitSchema = 1,
  kMatchPair = 2,
  kMatchCorpus = 3,
  kGetStats = 4,
  kGetMetrics = 5,
  /// Liveness probe: answered inline on the loop by every role, even while
  /// draining — if the process can speak the protocol, it answers.
  kHealth = 6,
  /// Role + readiness probe: current role, replication positions and the
  /// readiness verdict /readyz would give (DESIGN.md §15).
  kRole = 7,
  /// Standby -> primary: subscribe to the replication stream
  /// (replica::SubscribeReq payload). The connection becomes push-mode:
  /// the primary answers with kReplicaSnapshot and/or kReplicaRecords
  /// frames for its remaining lifetime — no further requests are paired.
  kReplicaSubscribe = 8,

  kSubmitSchemaResp = 0x101,
  kMatchPairResp = 0x102,
  kMatchCorpusResp = 0x103,
  kGetStatsResp = 0x104,
  kGetMetricsResp = 0x105,
  kHealthResp = 0x106,
  kRoleResp = 0x107,
  /// Pushed batch of replication log records (replica::RecordsMsg); an
  /// empty batch is a heartbeat carrying the primary's head sequence.
  kReplicaRecords = 0x108,
  /// Full-state anchor for a subscriber too far behind the log
  /// (replica::SnapshotMsg).
  kReplicaSnapshot = 0x109,
  /// Typed answer to a frame that never became a decodable request.
  kErrorResp = 0x1FF,
};

/// OR-ed into a request type to form its response type.
inline constexpr uint32_t kResponseBit = 0x100;

/// Framing sanity cap, mirroring persist::kMaxPayloadBytes: the server
/// never writes a larger payload, so a bigger length field is hostile by
/// definition and is rejected before any buffer grows to hold it.
inline constexpr uint32_t kMaxFramePayload = 1u << 24;  // 16 MiB

/// Fixed bytes of framing around a payload (type + length + CRC).
inline constexpr size_t kFrameOverhead = 12;

struct Frame {
  uint32_t type = 0;
  std::string payload;
};

/// Encodes one frame ready for the socket.
std::string EncodeFrame(uint32_t type, std::string_view payload);
inline std::string EncodeFrame(MsgType type, std::string_view payload) {
  return EncodeFrame(static_cast<uint32_t>(type), payload);
}

/// Outcome of one incremental decode step over a connection's input buffer.
enum class FrameDecodeResult {
  /// The buffer holds a prefix of a valid frame; read more bytes.
  kNeedMore,
  /// One whole frame was decoded into *out; *consumed bytes are done.
  kFrame,
  /// The length field exceeds kMaxFramePayload — hostile framing, detected
  /// before any allocation. The stream cannot be resynchronised.
  kBadLength,
  /// The frame was complete but its CRC32 did not match — corruption or a
  /// non-protocol peer. The stream cannot be trusted past this point.
  kBadCrc,
};

std::string_view FrameDecodeResultName(FrameDecodeResult result);

/// Attempts to decode the first frame of `buffer`. On kFrame, `*out` holds
/// the type + payload and `*consumed` the bytes to drop from the buffer;
/// on kNeedMore nothing is consumed; on kBadLength/kBadCrc the connection
/// should answer a typed error frame and close (the stream is desynced).
FrameDecodeResult DecodeFrame(std::string_view buffer, Frame* out,
                              size_t* consumed);

// ---------------------------------------------------------------------------
// Request payloads
// ---------------------------------------------------------------------------

/// Registers (or replaces) a named schema parsed from XSD text.
struct SubmitSchemaReq {
  std::string name;
  std::string xsd_text;
};

/// Matches two previously submitted schemas. `deadline_ms` = 0 leaves the
/// server's default in force; otherwise it is clamped to the server's
/// configured maximum and wired into the request's ExecControl.
struct MatchPairReq {
  std::string source;
  std::string target;
  uint64_t deadline_ms = 0;
};

/// Matches `query` against every other submitted schema.
struct MatchCorpusReq {
  std::string query;
  uint64_t deadline_ms = 0;
};

std::string EncodeSubmitSchemaReq(const SubmitSchemaReq& req);
std::string EncodeMatchPairReq(const MatchPairReq& req);
std::string EncodeMatchCorpusReq(const MatchCorpusReq& req);
bool DecodeSubmitSchemaReq(std::string_view payload, SubmitSchemaReq* out);
bool DecodeMatchPairReq(std::string_view payload, MatchPairReq* out);
bool DecodeMatchCorpusReq(std::string_view payload, MatchCorpusReq* out);

// ---------------------------------------------------------------------------
// Response payloads
// ---------------------------------------------------------------------------

/// First fields of every response payload: the request's typed outcome.
/// `code` is a StatusCode; anything but kOk means the body is absent.
struct ResponseHead {
  uint32_t code = 0;
  std::string message;
  /// The answering server's fencing epoch (DESIGN.md §16). Every response
  /// — success, typed error, kRole, kHealth — carries the responder's OWN
  /// epoch, so clients and peers learn about promotions from any frame.
  /// 0 means "epoch-unaware" (a pre-epoch peer or an unset head).
  uint64_t epoch = 0;

  bool ok() const { return code == 0; }
  StatusCode status_code() const { return static_cast<StatusCode>(code); }
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(status_code(), message);
  }
  static ResponseHead FromStatus(const Status& status) {
    return ResponseHead{static_cast<uint32_t>(status.code()),
                        status.message()};
  }
};

struct SubmitSchemaResp {
  ResponseHead head;
  uint64_t fingerprint = 0;
  uint64_t node_count = 0;
};

/// One correspondence by endpoint path; `score` crosses the wire as its
/// exact bit pattern.
struct WireCorrespondence {
  std::string source_path;
  std::string target_path;
  double score = 0.0;

  friend bool operator==(const WireCorrespondence&,
                         const WireCorrespondence&) = default;
};

struct MatchPairResp {
  ResponseHead head;
  std::string algorithm;
  uint32_t mode = 0;  ///< MatchMode the result was computed at
  double schema_qom = 0.0;
  uint64_t completed_rows = 0;
  uint64_t total_rows = 0;
  std::vector<WireCorrespondence> correspondences;
};

/// Per-candidate summary row of a corpus match.
struct WireCorpusEntry {
  std::string name;
  uint32_t code = 0;  ///< StatusCode of this candidate's match
  double schema_qom = 0.0;
  uint64_t correspondences = 0;

  friend bool operator==(const WireCorpusEntry&,
                         const WireCorpusEntry&) = default;
};

struct MatchCorpusResp {
  ResponseHead head;
  std::vector<WireCorpusEntry> entries;
};

struct StatsResp {
  ResponseHead head;
  uint64_t schemas = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_entries = 0;
  uint64_t admission_shed = 0;
  uint64_t requests_total = 0;
  uint64_t connections_active = 0;
  double pressure = 0.0;
};

struct MetricsResp {
  ResponseHead head;
  std::string prometheus_text;
};

/// Liveness: the serving role is informational here — a draining server
/// still answers Health OK (it is alive) while Role says not-ready.
struct HealthResp {
  ResponseHead head;
  uint32_t role = 0;  ///< net::Server Role enum value
};

/// Role + replication positions — the typed twin of HTTP /readyz.
struct RoleResp {
  ResponseHead head;
  uint32_t role = 0;      ///< net::Server Role enum value
  uint8_t ready = 0;      ///< the /readyz verdict: 1 = serving traffic is safe
  uint64_t applied_seq = 0;  ///< standby: last replication record applied
  uint64_t head_seq = 0;     ///< standby: primary head as last heard
  uint64_t lag_records = 0;  ///< head_seq - applied_seq (0 on a primary)
};

std::string EncodeErrorResp(const ResponseHead& head);
std::string EncodeSubmitSchemaResp(const SubmitSchemaResp& resp);
std::string EncodeMatchPairResp(const MatchPairResp& resp);
std::string EncodeMatchCorpusResp(const MatchCorpusResp& resp);
std::string EncodeStatsResp(const StatsResp& resp);
std::string EncodeMetricsResp(const MetricsResp& resp);
std::string EncodeHealthResp(const HealthResp& resp);
std::string EncodeRoleResp(const RoleResp& resp);

bool DecodeResponseHead(std::string_view payload, ResponseHead* out);
bool DecodeSubmitSchemaResp(std::string_view payload, SubmitSchemaResp* out);
bool DecodeMatchPairResp(std::string_view payload, MatchPairResp* out);
bool DecodeMatchCorpusResp(std::string_view payload, MatchCorpusResp* out);
bool DecodeStatsResp(std::string_view payload, StatsResp* out);
bool DecodeMetricsResp(std::string_view payload, MetricsResp* out);
bool DecodeHealthResp(std::string_view payload, HealthResp* out);
bool DecodeRoleResp(std::string_view payload, RoleResp* out);

}  // namespace qmatch::net

#endif  // QMATCH_NET_FRAME_H_
