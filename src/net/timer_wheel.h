#ifndef QMATCH_NET_TIMER_WHEEL_H_
#define QMATCH_NET_TIMER_WHEEL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

namespace qmatch::net {

/// Hashed timer wheel: O(1) schedule/cancel, amortised O(1) expiry. Time is
/// bucketed into fixed `tick` slots; a timer lands in slot
/// (expiry / tick) % slots and fires when the wheel's cursor sweeps past
/// its slot with the expiry actually due (an entry a full lap away simply
/// stays in the slot for the next revolution — the classic hashed-wheel
/// trade of memory for sorting).
///
/// Drives every per-connection deadline in the event loop: idle timeouts
/// and request-deadline watchdogs. NOT thread-safe — owned and advanced by
/// the loop thread only; cross-thread arming goes through EventLoop::Post.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using TimerId = uint64_t;

  explicit TimerWheel(Clock::duration tick = std::chrono::milliseconds(10),
                      size_t slots = 256);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arms `callback` to fire at `when` (immediately on the next Advance if
  /// `when` is already past). Returns an id for Cancel; ids are never
  /// reused within one wheel's lifetime.
  TimerId Schedule(Clock::time_point when, std::function<void()> callback);

  /// Convenience: fire `delay` from now.
  TimerId ScheduleAfter(Clock::duration delay, std::function<void()> callback) {
    return Schedule(Clock::now() + delay, std::move(callback));
  }

  /// Disarms a pending timer. False when the id already fired or was
  /// cancelled (both are benign — cancellation races are expected).
  bool Cancel(TimerId id);

  /// Fires every timer due at `now`, in slot order. Callbacks may schedule
  /// or cancel other timers freely (due entries are unlinked before any
  /// callback runs). Returns the number fired.
  size_t Advance(Clock::time_point now);

  /// Delay until the earliest pending timer (zero if already due), or
  /// nullopt when the wheel is empty — the event loop's epoll timeout.
  std::optional<Clock::duration> UntilNext(Clock::time_point now) const;

  size_t pending() const { return pending_; }
  Clock::duration tick() const { return tick_; }

 private:
  struct Entry {
    TimerId id = 0;
    Clock::time_point when;
    std::function<void()> callback;
  };

  uint64_t TickOf(Clock::time_point when) const {
    return static_cast<uint64_t>(when.time_since_epoch() / tick_);
  }

  const Clock::duration tick_;
  std::vector<std::list<Entry>> slots_;
  /// id -> slot index, so Cancel only scans one short slot list.
  std::unordered_map<TimerId, size_t> slot_of_;
  uint64_t cursor_tick_;  ///< last tick fully swept by Advance
  TimerId next_id_ = 1;
  size_t pending_ = 0;
};

}  // namespace qmatch::net

#endif  // QMATCH_NET_TIMER_WHEEL_H_
