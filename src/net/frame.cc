#include "net/frame.h"

#include "persist/crc32.h"
#include "persist/wire.h"

namespace qmatch::net {

using persist::Crc32;
using persist::Decoder;
using persist::Encoder;

std::string_view FrameDecodeResultName(FrameDecodeResult result) {
  switch (result) {
    case FrameDecodeResult::kNeedMore:
      return "need-more";
    case FrameDecodeResult::kFrame:
      return "frame";
    case FrameDecodeResult::kBadLength:
      return "bad-length";
    case FrameDecodeResult::kBadCrc:
      return "bad-crc";
  }
  return "unknown";
}

std::string EncodeFrame(uint32_t type, std::string_view payload) {
  Encoder enc;
  enc.PutU32(type);
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  std::string bytes = enc.Take();
  bytes.append(payload);
  const uint32_t crc = Crc32(bytes);
  Encoder trailer;
  trailer.PutU32(crc);
  bytes.append(trailer.bytes());
  return bytes;
}

FrameDecodeResult DecodeFrame(std::string_view buffer, Frame* out,
                              size_t* consumed) {
  *consumed = 0;
  if (buffer.size() < 8) return FrameDecodeResult::kNeedMore;
  Decoder header(buffer);
  uint32_t type = 0;
  uint32_t length = 0;
  header.GetU32(&type);
  header.GetU32(&length);
  // The hostile-length pre-check: reject before the connection buffer is
  // ever asked to hold `length` bytes.
  if (length > kMaxFramePayload) return FrameDecodeResult::kBadLength;
  const size_t total = kFrameOverhead + static_cast<size_t>(length);
  if (buffer.size() < total) return FrameDecodeResult::kNeedMore;
  const std::string_view covered = buffer.substr(0, 8 + length);
  Decoder trailer(buffer.substr(8 + length, 4));
  uint32_t crc = 0;
  trailer.GetU32(&crc);
  if (crc != Crc32(covered)) return FrameDecodeResult::kBadCrc;
  out->type = type;
  out->payload.assign(buffer.substr(8, length));
  *consumed = total;
  return FrameDecodeResult::kFrame;
}

// --- requests --------------------------------------------------------------

std::string EncodeSubmitSchemaReq(const SubmitSchemaReq& req) {
  Encoder enc;
  enc.PutString(req.name);
  enc.PutString(req.xsd_text);
  return enc.Take();
}

std::string EncodeMatchPairReq(const MatchPairReq& req) {
  Encoder enc;
  enc.PutString(req.source);
  enc.PutString(req.target);
  enc.PutU64(req.deadline_ms);
  return enc.Take();
}

std::string EncodeMatchCorpusReq(const MatchCorpusReq& req) {
  Encoder enc;
  enc.PutString(req.query);
  enc.PutU64(req.deadline_ms);
  return enc.Take();
}

bool DecodeSubmitSchemaReq(std::string_view payload, SubmitSchemaReq* out) {
  Decoder dec(payload);
  return dec.GetString(&out->name) && dec.GetString(&out->xsd_text) &&
         dec.remaining() == 0;
}

bool DecodeMatchPairReq(std::string_view payload, MatchPairReq* out) {
  Decoder dec(payload);
  return dec.GetString(&out->source) && dec.GetString(&out->target) &&
         dec.GetU64(&out->deadline_ms) && dec.remaining() == 0;
}

bool DecodeMatchCorpusReq(std::string_view payload, MatchCorpusReq* out) {
  Decoder dec(payload);
  return dec.GetString(&out->query) && dec.GetU64(&out->deadline_ms) &&
         dec.remaining() == 0;
}

// --- responses -------------------------------------------------------------

namespace {

void PutHead(Encoder* enc, const ResponseHead& head) {
  enc->PutU32(head.code);
  enc->PutString(head.message);
  enc->PutU64(head.epoch);
}

bool GetHead(Decoder* dec, ResponseHead* head) {
  return dec->GetU32(&head->code) && dec->GetString(&head->message) &&
         dec->GetU64(&head->epoch);
}

}  // namespace

std::string EncodeErrorResp(const ResponseHead& head) {
  Encoder enc;
  PutHead(&enc, head);
  return enc.Take();
}

std::string EncodeSubmitSchemaResp(const SubmitSchemaResp& resp) {
  Encoder enc;
  PutHead(&enc, resp.head);
  if (resp.head.ok()) {
    enc.PutU64(resp.fingerprint);
    enc.PutU64(resp.node_count);
  }
  return enc.Take();
}

std::string EncodeMatchPairResp(const MatchPairResp& resp) {
  Encoder enc;
  PutHead(&enc, resp.head);
  enc.PutString(resp.algorithm);
  enc.PutU32(resp.mode);
  enc.PutDouble(resp.schema_qom);
  enc.PutU64(resp.completed_rows);
  enc.PutU64(resp.total_rows);
  enc.PutU32(static_cast<uint32_t>(resp.correspondences.size()));
  for (const WireCorrespondence& c : resp.correspondences) {
    enc.PutString(c.source_path);
    enc.PutString(c.target_path);
    enc.PutDouble(c.score);
  }
  return enc.Take();
}

std::string EncodeMatchCorpusResp(const MatchCorpusResp& resp) {
  Encoder enc;
  PutHead(&enc, resp.head);
  enc.PutU32(static_cast<uint32_t>(resp.entries.size()));
  for (const WireCorpusEntry& e : resp.entries) {
    enc.PutString(e.name);
    enc.PutU32(e.code);
    enc.PutDouble(e.schema_qom);
    enc.PutU64(e.correspondences);
  }
  return enc.Take();
}

std::string EncodeStatsResp(const StatsResp& resp) {
  Encoder enc;
  PutHead(&enc, resp.head);
  enc.PutU64(resp.schemas);
  enc.PutU64(resp.cache_hits);
  enc.PutU64(resp.cache_misses);
  enc.PutU64(resp.cache_entries);
  enc.PutU64(resp.admission_shed);
  enc.PutU64(resp.requests_total);
  enc.PutU64(resp.connections_active);
  enc.PutDouble(resp.pressure);
  return enc.Take();
}

std::string EncodeMetricsResp(const MetricsResp& resp) {
  Encoder enc;
  PutHead(&enc, resp.head);
  enc.PutString(resp.prometheus_text);
  return enc.Take();
}

std::string EncodeHealthResp(const HealthResp& resp) {
  Encoder enc;
  PutHead(&enc, resp.head);
  enc.PutU32(resp.role);
  return enc.Take();
}

std::string EncodeRoleResp(const RoleResp& resp) {
  Encoder enc;
  PutHead(&enc, resp.head);
  enc.PutU32(resp.role);
  enc.PutU32(resp.ready);
  enc.PutU64(resp.applied_seq);
  enc.PutU64(resp.head_seq);
  enc.PutU64(resp.lag_records);
  return enc.Take();
}

bool DecodeResponseHead(std::string_view payload, ResponseHead* out) {
  Decoder dec(payload);
  return GetHead(&dec, out);
}

bool DecodeSubmitSchemaResp(std::string_view payload, SubmitSchemaResp* out) {
  Decoder dec(payload);
  if (!GetHead(&dec, &out->head)) return false;
  if (!out->head.ok()) return dec.remaining() == 0;
  return dec.GetU64(&out->fingerprint) && dec.GetU64(&out->node_count) &&
         dec.remaining() == 0;
}

bool DecodeMatchPairResp(std::string_view payload, MatchPairResp* out) {
  Decoder dec(payload);
  if (!GetHead(&dec, &out->head)) return false;
  if (!dec.GetString(&out->algorithm) || !dec.GetU32(&out->mode) ||
      !dec.GetDouble(&out->schema_qom) || !dec.GetU64(&out->completed_rows) ||
      !dec.GetU64(&out->total_rows)) {
    return false;
  }
  uint32_t count = 0;
  if (!dec.GetU32(&count)) return false;
  // A correspondence is at least 20 bytes (two length prefixes + a
  // double), so a count the remaining bytes cannot possibly hold is
  // rejected before the vector reserves anything — the same
  // no-allocation-from-hostile-lengths rule as the frame pre-check.
  if (static_cast<uint64_t>(count) * 20 > dec.remaining()) return false;
  out->correspondences.clear();
  out->correspondences.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireCorrespondence c;
    if (!dec.GetString(&c.source_path) || !dec.GetString(&c.target_path) ||
        !dec.GetDouble(&c.score)) {
      return false;
    }
    out->correspondences.push_back(std::move(c));
  }
  return dec.remaining() == 0;
}

bool DecodeMatchCorpusResp(std::string_view payload, MatchCorpusResp* out) {
  Decoder dec(payload);
  if (!GetHead(&dec, &out->head)) return false;
  uint32_t count = 0;
  if (!dec.GetU32(&count)) return false;
  // Minimum 24 bytes per entry (name prefix + code + double + u64).
  if (static_cast<uint64_t>(count) * 24 > dec.remaining()) return false;
  out->entries.clear();
  out->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireCorpusEntry e;
    if (!dec.GetString(&e.name) || !dec.GetU32(&e.code) ||
        !dec.GetDouble(&e.schema_qom) || !dec.GetU64(&e.correspondences)) {
      return false;
    }
    out->entries.push_back(std::move(e));
  }
  return dec.remaining() == 0;
}

bool DecodeStatsResp(std::string_view payload, StatsResp* out) {
  Decoder dec(payload);
  return GetHead(&dec, &out->head) && dec.GetU64(&out->schemas) &&
         dec.GetU64(&out->cache_hits) && dec.GetU64(&out->cache_misses) &&
         dec.GetU64(&out->cache_entries) && dec.GetU64(&out->admission_shed) &&
         dec.GetU64(&out->requests_total) &&
         dec.GetU64(&out->connections_active) &&
         dec.GetDouble(&out->pressure) && dec.remaining() == 0;
}

bool DecodeMetricsResp(std::string_view payload, MetricsResp* out) {
  Decoder dec(payload);
  return GetHead(&dec, &out->head) && dec.GetString(&out->prometheus_text) &&
         dec.remaining() == 0;
}

bool DecodeHealthResp(std::string_view payload, HealthResp* out) {
  Decoder dec(payload);
  return GetHead(&dec, &out->head) && dec.GetU32(&out->role) &&
         dec.remaining() == 0;
}

bool DecodeRoleResp(std::string_view payload, RoleResp* out) {
  Decoder dec(payload);
  uint32_t ready = 0;
  if (!GetHead(&dec, &out->head) || !dec.GetU32(&out->role) ||
      !dec.GetU32(&ready) || !dec.GetU64(&out->applied_seq) ||
      !dec.GetU64(&out->head_seq) || !dec.GetU64(&out->lag_records) ||
      dec.remaining() != 0) {
    return false;
  }
  out->ready = ready != 0 ? 1 : 0;
  return true;
}

}  // namespace qmatch::net
