#ifndef QMATCH_XSD_VALIDATE_H_
#define QMATCH_XSD_VALIDATE_H_

#include <string>
#include <vector>

#include "xml/dom.h"
#include "xsd/schema.h"

namespace qmatch::xsd {

/// One conformance violation found while validating a document.
struct Violation {
  enum class Kind {
    kWrongRoot,          // root element name differs from the schema root
    kUnknownElement,     // element not declared at this position
    kUnknownAttribute,   // attribute not declared on this element
    kMissingChild,       // required (minOccurs >= 1) child absent
    kMissingAttribute,   // required attribute absent
    kTooFewOccurrences,  // fewer than minOccurs occurrences
    kTooManyOccurrences, // more than (bounded) maxOccurs occurrences
    kTypeMismatch,       // leaf text does not parse as the declared type
    kFixedValueMismatch, // fixed= value violated
  };
  Kind kind;
  /// Document location ("/bookstore/book[2]/price").
  std::string where;
  std::string message;

  std::string ToString() const;
};

std::string_view ViolationKindName(Violation::Kind kind);

/// Options controlling validation strictness.
struct ValidateOptions {
  /// Whether undeclared elements/attributes are violations (strict) or
  /// tolerated (open-content mode).
  bool allow_undeclared = false;
  /// Whether leaf text must parse as the declared built-in type.
  bool check_types = true;
  /// Stop after this many violations (0 = unlimited).
  size_t max_violations = 0;
};

/// Validates an XML instance document against a schema tree, returning all
/// violations found (empty = valid). This closes the loop between the
/// schema substrate, the document generator and the inference path:
/// `Validate(GenerateDocument(S), S)` is empty by construction, and the
/// property tests assert it.
std::vector<Violation> Validate(const xml::XmlDocument& doc,
                                const Schema& schema,
                                const ValidateOptions& options = {});

}  // namespace qmatch::xsd

#endif  // QMATCH_XSD_VALIDATE_H_
