#ifndef QMATCH_XSD_STATS_H_
#define QMATCH_XSD_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "xsd/schema.h"

namespace qmatch::xsd {

/// Aggregate shape statistics of a schema tree — the Table 1 data plus the
/// distributional detail the generator is calibrated against.
struct SchemaStats {
  size_t node_count = 0;
  size_t element_count = 0;
  size_t attribute_count = 0;
  size_t leaf_count = 0;
  size_t inner_count = 0;
  size_t max_depth = 0;          // edges
  double average_depth = 0.0;    // over all nodes
  size_t max_fanout = 0;
  double average_fanout = 0.0;   // over inner nodes
  size_t optional_count = 0;     // minOccurs == 0
  size_t repeating_count = 0;    // maxOccurs > 1 or unbounded
  /// Node count per built-in type name (leaves only).
  std::map<std::string, size_t> type_histogram;
  /// Distinct canonicalised label tokens.
  size_t distinct_tokens = 0;

  std::string ToString() const;
};

/// Computes the statistics in one pass over the tree.
SchemaStats ComputeStats(const Schema& schema);

}  // namespace qmatch::xsd

#endif  // QMATCH_XSD_STATS_H_
