#ifndef QMATCH_XSD_SCHEMA_H_
#define QMATCH_XSD_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xsd/types.h"

namespace qmatch::xsd {

/// Kind of schema node. The paper treats sub-elements and attributes
/// uniformly as "children"; the kind is retained as a property.
enum class NodeKind { kElement, kAttribute };

/// Occurrence constraint (minOccurs/maxOccurs). Attributes map use=optional
/// to {0,1} and use=required to {1,1}.
struct Occurs {
  static constexpr int kUnbounded = -1;

  int min = 1;
  int max = 1;

  bool unbounded() const { return max == kUnbounded; }

  friend bool operator==(const Occurs& a, const Occurs& b) {
    return a.min == b.min && a.max == b.max;
  }
};

struct FlatSchema;  // xsd/flatten.h — the SoA projection cached by Schema

/// Content-model compositor governing a node's children. `kSequence` makes
/// the sibling order semantically meaningful (the paper's *order* property);
/// `kAll`/`kChoice` do not.
enum class Compositor { kNone, kSequence, kChoice, kAll };

std::string_view CompositorName(Compositor c);
std::string_view NodeKindName(NodeKind k);

/// A node of the schema tree: the unit the QoM model compares.
///
/// Carries the paper's four axes of information: the label `L`, the property
/// set `P` (type, order, occurrence, kind, ...), the children `C`, and the
/// nesting level `H` (filled in by `Schema::Finalize`).
class SchemaNode {
 public:
  explicit SchemaNode(std::string label, NodeKind kind = NodeKind::kElement)
      : label_(std::move(label)), kind_(kind) {}

  SchemaNode(const SchemaNode&) = delete;
  SchemaNode& operator=(const SchemaNode&) = delete;

  // --- Label axis ------------------------------------------------------
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  // --- Property axis ---------------------------------------------------
  NodeKind kind() const { return kind_; }

  XsdType type() const { return type_; }
  /// The type name as written in the schema (e.g. "xs:string" or a custom
  /// complex-type name). Empty for untyped structural nodes.
  const std::string& type_name() const { return type_name_; }
  void set_type(XsdType type, std::string type_name = std::string()) {
    type_ = type;
    if (type_name.empty() && type != XsdType::kUnknown) {
      type_name_ = std::string(TypeName(type));
    } else {
      type_name_ = std::move(type_name);
    }
  }

  const Occurs& occurs() const { return occurs_; }
  void set_occurs(Occurs occurs) { occurs_ = occurs; }

  /// 0-based position among siblings; meaningful only when `ordered()`.
  int order() const { return order_; }
  /// Whether the parent compositor makes sibling order significant.
  bool ordered() const { return ordered_; }

  Compositor compositor() const { return compositor_; }
  void set_compositor(Compositor c) { compositor_ = c; }

  bool nillable() const { return nillable_; }
  void set_nillable(bool v) { nillable_ = v; }

  const std::optional<std::string>& default_value() const { return default_; }
  void set_default_value(std::string v) { default_ = std::move(v); }
  const std::optional<std::string>& fixed_value() const { return fixed_; }
  void set_fixed_value(std::string v) { fixed_ = std::move(v); }

  // --- Level axis ------------------------------------------------------
  /// Depth from the schema root (root = 0). Valid after Schema::Finalize.
  size_t level() const { return level_; }

  // --- Children axis ---------------------------------------------------
  bool IsLeaf() const { return children_.empty(); }
  const std::vector<std::unique_ptr<SchemaNode>>& children() const {
    return children_;
  }
  size_t child_count() const { return children_.size(); }
  const SchemaNode* child(size_t i) const { return children_[i].get(); }
  SchemaNode* child(size_t i) { return children_[i].get(); }

  const SchemaNode* parent() const { return parent_; }

  /// Appends a child and returns a borrowed pointer to it.
  SchemaNode* AddChild(std::unique_ptr<SchemaNode> child);

  /// First direct child with the given label, or nullptr.
  const SchemaNode* FindChild(std::string_view label) const;

  /// Number of nodes in this subtree (inclusive).
  size_t SubtreeSize() const;

  /// Height of this subtree in edges (leaf = 0).
  size_t Height() const;

  /// Slash-separated path from the root, attributes prefixed with '@'
  /// (e.g. "/PO/PurchaseInfo/@id"). Valid after Schema::Finalize for the
  /// level; the path itself only needs parent pointers.
  std::string Path() const;

  /// One-line summary for debugging: label, kind, type, occurs, level.
  std::string DebugString() const;

 private:
  friend class Schema;

  std::string label_;
  NodeKind kind_;
  XsdType type_ = XsdType::kAnyType;
  std::string type_name_;
  Occurs occurs_;
  int order_ = 0;
  bool ordered_ = false;
  Compositor compositor_ = Compositor::kNone;
  bool nillable_ = false;
  std::optional<std::string> default_;
  std::optional<std::string> fixed_;
  size_t level_ = 0;
  std::vector<std::unique_ptr<SchemaNode>> children_;
  const SchemaNode* parent_ = nullptr;
};

/// A schema tree: the parsed/constructed form of one XML Schema that the
/// matchers operate on.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::unique_ptr<SchemaNode> root)
      : name_(std::move(name)), root_(std::move(root)) {
    Finalize();
  }

  Schema(Schema&&) noexcept = default;
  Schema& operator=(Schema&&) noexcept = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& target_namespace() const { return target_namespace_; }
  void set_target_namespace(std::string ns) {
    target_namespace_ = std::move(ns);
  }

  const SchemaNode* root() const { return root_.get(); }
  SchemaNode* root() { return root_.get(); }
  void set_root(std::unique_ptr<SchemaNode> root) {
    root_ = std::move(root);
    Finalize();
  }

  /// Detaches and returns the root (e.g. to graft this tree into a larger
  /// schema). The schema is left empty.
  std::unique_ptr<SchemaNode> TakeRoot() {
    flat_.reset();
    return std::move(root_);
  }

  /// Recomputes levels, sibling order indices and ordered flags across the
  /// whole tree. Called automatically by the constructors/setters; call it
  /// again after mutating the tree in place.
  void Finalize();

  /// Total node count (elements + attributes), 0 for an empty schema.
  size_t NodeCount() const;

  /// Element-only count — the paper's "# elements" in Table 1.
  size_t ElementCount() const;

  /// Maximum depth in edges from the root — the paper's "max depth".
  size_t MaxDepth() const;

  /// All nodes in preorder (root first).
  std::vector<const SchemaNode*> AllNodes() const;
  std::vector<SchemaNode*> AllNodes();

  /// Looks a node up by its `SchemaNode::Path()`; nullptr when absent.
  const SchemaNode* FindByPath(std::string_view path) const;

  /// The structure-of-arrays projection of this tree (see xsd/flatten.h):
  /// interned labels with prepared token lists, packed property
  /// descriptors, level vectors and CSR child ranges — everything the SoA
  /// match kernel reads, built lazily on first use and cached until the
  /// tree changes (Finalize/set_root/TakeRoot invalidate it). Thread-safe
  /// against concurrent Flat() calls; the returned reference lives as long
  /// as the schema does (or until invalidation).
  const FlatSchema& Flat() const;

  /// Deep copy of this schema.
  Schema Clone() const;

  /// Multi-line indented rendering of the tree for debugging.
  std::string ToTreeString() const;

 private:
  std::string name_;
  std::string target_namespace_;
  std::unique_ptr<SchemaNode> root_;
  /// Lazily built SoA projection; shared_ptr (not unique_ptr) so the
  /// defaulted moves stay noexcept with the incomplete FlatSchema type.
  mutable std::shared_ptr<const FlatSchema> flat_;
};

/// Deterministic 64-bit structural fingerprint of a schema tree: an FNV-1a
/// hash over a canonical preorder serialisation of every node's label,
/// kind, type, occurrence constraints, compositor and value facets. Two
/// schemas that would produce identical match behaviour hash equally
/// regardless of object identity; the match engine's result cache keys on
/// (source fingerprint, target fingerprint, config hash).
uint64_t SchemaFingerprint(const Schema& schema);

}  // namespace qmatch::xsd

#endif  // QMATCH_XSD_SCHEMA_H_
