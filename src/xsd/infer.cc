#include "xsd/infer.h"

#include <map>
#include <set>
#include <memory>
#include <vector>

#include "common/string_util.h"
#include "xml/parser.h"

namespace qmatch::xsd {

namespace {

bool IsIntegerLiteral(std::string_view s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!IsAsciiDigit(s[i])) return false;
  }
  return true;
}

bool IsDecimalLiteral(std::string_view s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digits = false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    if (IsAsciiDigit(s[i])) {
      digits = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits;
}

bool IsBooleanLiteral(std::string_view s) {
  return s == "true" || s == "false" || s == "0" || s == "1";
}

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsAsciiDigit(c)) return false;
  }
  return true;
}

// YYYY-MM-DD
bool IsDateLiteral(std::string_view s) {
  return s.size() == 10 && AllDigits(s.substr(0, 4)) && s[4] == '-' &&
         AllDigits(s.substr(5, 2)) && s[7] == '-' && AllDigits(s.substr(8, 2));
}

// YYYY-MM-DDThh:mm:ss (timezone suffix tolerated)
bool IsDateTimeLiteral(std::string_view s) {
  return s.size() >= 19 && IsDateLiteral(s.substr(0, 10)) && s[10] == 'T' &&
         AllDigits(s.substr(11, 2)) && s[13] == ':' &&
         AllDigits(s.substr(14, 2)) && s[16] == ':' &&
         AllDigits(s.substr(17, 2));
}

bool IsGYearLiteral(std::string_view s) {
  return s.size() == 4 && AllDigits(s);
}

bool IsUriLiteral(std::string_view s) {
  return StartsWith(s, "http://") || StartsWith(s, "https://") ||
         StartsWith(s, "urn:") || StartsWith(s, "ftp://");
}

/// Widens `current` so it also covers a value of type `observed`.
XsdType WidenToCover(XsdType current, XsdType observed) {
  if (current == observed) return current;
  if (current == XsdType::kAnySimpleType) return observed;  // first value
  // int ∪ decimal = decimal; gYear ∪ int = int (4-digit numbers).
  auto numeric = [](XsdType t) {
    return t == XsdType::kInt || t == XsdType::kDecimal ||
           t == XsdType::kGYear;
  };
  if (numeric(current) && numeric(observed)) {
    if (current == XsdType::kDecimal || observed == XsdType::kDecimal) {
      return XsdType::kDecimal;
    }
    return XsdType::kInt;
  }
  if ((current == XsdType::kDate && observed == XsdType::kDateTime) ||
      (current == XsdType::kDateTime && observed == XsdType::kDate)) {
    return XsdType::kDateTime;
  }
  return XsdType::kString;
}

/// Accumulated knowledge about one element (or attribute) name under one
/// parent context.
struct Profile {
  std::string name;
  NodeKind kind = NodeKind::kElement;
  size_t instances = 0;   // how many element instances were observed
  size_t present_in = 0;  // parent instances that contained at least one
  int max_per_parent = 0;
  XsdType value_type = XsdType::kAnySimpleType;  // none observed yet
  bool has_values = false;
  bool has_element_children = false;
  std::vector<std::string> child_order;  // first-seen order (elements)
  std::map<std::string, Profile> children;
  std::vector<std::string> attr_order;
  std::map<std::string, Profile> attributes;
};

class Inferrer {
 public:
  explicit Inferrer(const InferOptions& options) : options_(options) {}

  void Observe(const xml::XmlElement& element, Profile& profile) {
    ++profile.instances;

    // Attributes.
    if (options_.include_attributes) {
      for (const xml::XmlAttribute& attr : element.attributes()) {
        if (attr.name == "xmlns" || StartsWith(attr.name, "xmlns:")) continue;
        Profile& child = Touch(profile.attributes, profile.attr_order,
                               attr.name, NodeKind::kAttribute);
        ++child.present_in;
        ++child.instances;
        child.max_per_parent = 1;
        child.has_values = true;
        child.value_type =
            WidenToCover(child.value_type, InferValueType(Trim(attr.value)));
      }
    }

    // Child elements: count per-instance occurrences, registering names in
    // document order (first appearance wins the sibling position).
    std::map<std::string, int> counts;
    for (const xml::XmlElement* child : element.ChildElements()) {
      ++counts[std::string(child->LocalName())];
      profile.has_element_children = true;
    }
    std::set<std::string> seen_here;
    for (const xml::XmlElement* child : element.ChildElements()) {
      std::string name(child->LocalName());
      if (!seen_here.insert(name).second) continue;
      Profile& child_profile =
          Touch(profile.children, profile.child_order, name, NodeKind::kElement);
      ++child_profile.present_in;
      child_profile.max_per_parent =
          std::max(child_profile.max_per_parent, counts[name]);
    }
    for (const xml::XmlElement* child : element.ChildElements()) {
      Observe(*child, profile.children.at(std::string(child->LocalName())));
    }

    // Text content (ignore pure whitespace and mixed content around
    // element children).
    if (!profile.has_element_children) {
      std::string inner = element.InnerText();  // keep the buffer alive
      std::string_view text = Trim(inner);
      if (!text.empty()) {
        profile.has_values = true;
        profile.value_type =
            WidenToCover(profile.value_type, InferValueType(text));
      }
    }
  }

  std::unique_ptr<SchemaNode> Convert(const Profile& profile,
                                      size_t parent_instances) {
    auto node = std::make_unique<SchemaNode>(profile.name, profile.kind);
    if (profile.kind == NodeKind::kAttribute) {
      node->set_occurs(
          Occurs{profile.present_in >= parent_instances ? 1 : 0, 1});
    } else if (parent_instances > 0) {
      Occurs occurs;
      occurs.min = profile.present_in >= parent_instances ? 1 : 0;
      occurs.max = profile.max_per_parent > 1 ? Occurs::kUnbounded : 1;
      node->set_occurs(occurs);
    }
    if (profile.children.empty() && profile.attributes.empty()) {
      if (options_.infer_types && profile.has_values) {
        node->set_type(profile.value_type == XsdType::kAnySimpleType
                           ? XsdType::kString
                           : profile.value_type);
      } else {
        node->set_type(XsdType::kString);
      }
      return node;
    }
    node->set_compositor(Compositor::kSequence);
    // Children's occurrence constraints are judged against the number of
    // *instances* of this element, not the number of parents containing it.
    for (const std::string& name : profile.child_order) {
      node->AddChild(Convert(profile.children.at(name), profile.instances));
    }
    for (const std::string& name : profile.attr_order) {
      node->AddChild(Convert(profile.attributes.at(name), profile.instances));
    }
    return node;
  }

 private:
  static Profile& Touch(std::map<std::string, Profile>& table,
                        std::vector<std::string>& order,
                        const std::string& name, NodeKind kind) {
    auto it = table.find(name);
    if (it == table.end()) {
      it = table.emplace(name, Profile{}).first;
      it->second.name = name;
      it->second.kind = kind;
      order.push_back(name);
    }
    return it->second;
  }

  const InferOptions& options_;
};

}  // namespace

XsdType InferValueType(std::string_view value) {
  if (value.empty()) return XsdType::kString;
  if (IsBooleanLiteral(value) && !AllDigits(value)) return XsdType::kBoolean;
  if (IsGYearLiteral(value)) return XsdType::kGYear;
  if (IsIntegerLiteral(value)) return XsdType::kInt;
  if (IsDecimalLiteral(value)) return XsdType::kDecimal;
  if (IsDateTimeLiteral(value)) return XsdType::kDateTime;
  if (IsDateLiteral(value)) return XsdType::kDate;
  if (IsUriLiteral(value)) return XsdType::kAnyUri;
  return XsdType::kString;
}

Result<Schema> InferSchemaFromDocuments(
    const std::vector<const xml::XmlDocument*>& docs,
    const InferOptions& options) {
  if (docs.empty()) {
    return Status::InvalidArgument("no documents to infer from");
  }
  Inferrer inferrer(options);
  Profile root_profile;
  for (const xml::XmlDocument* doc : docs) {
    if (doc == nullptr || doc->root() == nullptr) {
      return Status::InvalidArgument("document has no root element");
    }
    std::string root_name(doc->root()->LocalName());
    if (root_profile.name.empty()) {
      root_profile.name = root_name;
    } else if (root_profile.name != root_name) {
      return Status::InvalidArgument(
          "documents have different roots: '" + root_profile.name +
          "' vs '" + root_name + "'");
    }
    ++root_profile.present_in;
    root_profile.max_per_parent = 1;
    inferrer.Observe(*doc->root(), root_profile);
  }

  Schema schema;
  schema.set_name(options.schema_name.empty() ? root_profile.name
                                              : options.schema_name);
  schema.set_root(
      inferrer.Convert(root_profile, /*parent_instances=*/docs.size()));
  return schema;
}

Result<Schema> InferSchema(const xml::XmlDocument& doc,
                           const InferOptions& options) {
  return InferSchemaFromDocuments({&doc}, options);
}

Result<Schema> InferSchemaFromXml(std::string_view xml_text,
                                  const InferOptions& options) {
  QMATCH_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(xml_text));
  return InferSchema(doc, options);
}

}  // namespace qmatch::xsd
