#include "xsd/parser.h"

#include <map>
#include <set>
#include <string>

#include "common/string_util.h"
#include "fault/failpoint.h"
#include "obs/obs.h"
#include "xml/parser.h"

namespace qmatch::xsd {

namespace {

constexpr std::string_view kXsdNamespace = "http://www.w3.org/2001/XMLSchema";

/// Estimated footprint charged to the memory budget per SchemaNode: the
/// node object plus typical label/type-name/child-vector storage.
constexpr size_t kApproxBytesPerSchemaNode = 256;

/// Converts one parsed XSD DOM into a Schema tree.
class XsdTreeBuilder {
 public:
  XsdTreeBuilder(const xml::XmlElement& schema_el, const ParseOptions& options)
      : schema_el_(schema_el), options_(options), charge_(options.budget) {}

  Result<Schema> Build() {
    IndexGlobals();
    const xml::XmlElement* root_decl = nullptr;
    if (!options_.root_element.empty()) {
      auto it = global_elements_.find(options_.root_element);
      if (it == global_elements_.end()) {
        return Status::NotFound("global element '" + options_.root_element +
                                "' not declared in schema");
      }
      root_decl = it->second;
    } else {
      for (const xml::XmlElement* child : schema_el_.ChildElements()) {
        if (child->LocalName() == "element") {
          root_decl = child;
          break;
        }
      }
      if (root_decl == nullptr) {
        return Status::ParseError("schema declares no global element");
      }
    }

    QMATCH_ASSIGN_OR_RETURN(std::unique_ptr<SchemaNode> root,
                            BuildElement(*root_decl, /*depth=*/0));
    Schema schema;
    schema.set_target_namespace(
        std::string(schema_el_.AttributeOr("targetNamespace", "")));
    schema.set_name(options_.schema_name.empty() ? root->label()
                                                 : options_.schema_name);
    schema.set_root(std::move(root));
    return schema;
  }

 private:
  void IndexGlobals() {
    for (const xml::XmlElement* child : schema_el_.ChildElements()) {
      const std::string* name = child->FindAttribute("name");
      if (name == nullptr) continue;
      std::string_view local = child->LocalName();
      if (local == "element") {
        global_elements_.emplace(*name, child);
      } else if (local == "complexType") {
        complex_types_.emplace(*name, child);
      } else if (local == "simpleType") {
        simple_types_.emplace(*name, child);
      } else if (local == "attribute") {
        global_attributes_.emplace(*name, child);
      } else if (local == "group") {
        groups_.emplace(*name, child);
      } else if (local == "attributeGroup") {
        attribute_groups_.emplace(*name, child);
      }
    }
  }

  static std::string_view LocalOf(std::string_view qname) {
    return xml::XmlElement::LocalNameOf(qname);
  }

  /// True when `qname`'s prefix resolves to the XML Schema namespace at
  /// `context`. Unprefixed names count as XSD when no default namespace is
  /// declared (common in schema snippets) or the default is the XSD ns.
  bool IsXsdQName(const xml::XmlElement& context, std::string_view qname) const {
    std::string_view prefix = xml::XmlElement::PrefixOf(qname);
    const std::string* uri = context.ResolveNamespacePrefix(prefix);
    if (uri != nullptr) return *uri == kXsdNamespace;
    return prefix.empty();
  }

  Result<Occurs> ParseOccurs(const xml::XmlElement& decl) const {
    Occurs occurs;
    if (const std::string* v = decl.FindAttribute("minOccurs")) {
      QMATCH_ASSIGN_OR_RETURN(occurs.min, ParseNonNegativeInt(*v, "minOccurs"));
    }
    if (const std::string* v = decl.FindAttribute("maxOccurs")) {
      if (*v == "unbounded") {
        occurs.max = Occurs::kUnbounded;
      } else {
        QMATCH_ASSIGN_OR_RETURN(occurs.max,
                                ParseNonNegativeInt(*v, "maxOccurs"));
      }
    }
    if (!occurs.unbounded() && occurs.max < occurs.min) {
      return Status::ParseError(
          StrFormat("maxOccurs (%d) < minOccurs (%d)", occurs.max, occurs.min));
    }
    return occurs;
  }

  static Result<int> ParseNonNegativeInt(std::string_view text,
                                         std::string_view what) {
    if (text.empty()) {
      return Status::ParseError("empty " + std::string(what));
    }
    long value = 0;
    for (char c : text) {
      if (!IsAsciiDigit(c)) {
        return Status::ParseError("malformed " + std::string(what) + " '" +
                                  std::string(text) + "'");
      }
      value = value * 10 + (c - '0');
      if (value > 1'000'000'000) {
        return Status::ParseError(std::string(what) + " out of range");
      }
    }
    return static_cast<int>(value);
  }

  /// Resolves a type= QName to a built-in type, chasing named simple types
  /// down to their built-in base. Named complex types are NOT resolved here
  /// (the caller expands them structurally).
  XsdType ResolveSimpleTypeName(const xml::XmlElement& context,
                                std::string_view qname,
                                std::set<std::string>* visiting) const {
    std::string_view local = LocalOf(qname);
    if (IsXsdQName(context, qname)) {
      XsdType builtin = ParseBuiltinType(local);
      if (builtin != XsdType::kUnknown) return builtin;
    }
    auto it = simple_types_.find(std::string(local));
    if (it == simple_types_.end()) return XsdType::kUnknown;
    if (visiting->count(std::string(local)) > 0) return XsdType::kUnknown;
    visiting->insert(std::string(local));
    XsdType resolved = ResolveSimpleTypeElement(*it->second, visiting);
    visiting->erase(std::string(local));
    return resolved;
  }

  XsdType ResolveSimpleTypeElement(const xml::XmlElement& st,
                                   std::set<std::string>* visiting) const {
    if (const xml::XmlElement* restriction = st.FirstChildElement("restriction")) {
      std::string_view base = restriction->AttributeOr("base", "");
      if (!base.empty()) {
        return ResolveSimpleTypeName(*restriction, base, visiting);
      }
      if (const xml::XmlElement* nested =
              restriction->FirstChildElement("simpleType")) {
        return ResolveSimpleTypeElement(*nested, visiting);
      }
      return XsdType::kAnySimpleType;
    }
    if (const xml::XmlElement* list = st.FirstChildElement("list")) {
      std::string_view item = list->AttributeOr("itemType", "");
      if (!item.empty()) return ResolveSimpleTypeName(*list, item, visiting);
      return XsdType::kAnySimpleType;
    }
    if (const xml::XmlElement* u = st.FirstChildElement("union")) {
      // Approximate a union by its first member type.
      std::string_view members = u->AttributeOr("memberTypes", "");
      std::vector<std::string> names = SplitSkipEmpty(members, ' ');
      if (!names.empty()) {
        return ResolveSimpleTypeName(*u, names.front(), visiting);
      }
      if (const xml::XmlElement* nested = u->FirstChildElement("simpleType")) {
        return ResolveSimpleTypeElement(*nested, visiting);
      }
      return XsdType::kAnySimpleType;
    }
    return XsdType::kAnySimpleType;
  }

  /// Accounts for one SchemaNode about to be created: enforces the output
  /// node cap and charges the memory budget.
  Status CountNode() {
    if (nodes_ >= options_.max_nodes) {
      return Status::ResourceExhausted(
          "schema expansion exceeds max_nodes " +
          std::to_string(options_.max_nodes));
    }
    ++nodes_;
    return charge_.Add(kApproxBytesPerSchemaNode, "xsd parse: schema node");
  }

  Result<std::unique_ptr<SchemaNode>> BuildElement(const xml::XmlElement& decl,
                                                   size_t depth) {
    if (depth > options_.max_depth) {
      return Status::ParseError("schema nesting exceeds max_depth");
    }
    // ref= : resolve to the global declaration, but keep local occurs.
    if (const std::string* ref = decl.FindAttribute("ref")) {
      std::string local(LocalOf(*ref));
      auto it = global_elements_.find(local);
      if (it == global_elements_.end()) {
        return Status::NotFound("element ref '" + *ref + "' not declared");
      }
      if (expanding_elements_.count(local) > 0) {
        // Recursive element reference: truncate into a typed leaf.
        QMATCH_RETURN_IF_ERROR(CountNode());
        auto leaf = std::make_unique<SchemaNode>(local, NodeKind::kElement);
        leaf->set_type(XsdType::kUnknown, local);
        QMATCH_ASSIGN_OR_RETURN(Occurs occurs, ParseOccurs(decl));
        leaf->set_occurs(occurs);
        return leaf;
      }
      expanding_elements_.insert(local);
      Result<std::unique_ptr<SchemaNode>> node = BuildElement(*it->second, depth);
      expanding_elements_.erase(local);
      if (!node.ok()) return node.status();
      QMATCH_ASSIGN_OR_RETURN(Occurs occurs, ParseOccurs(decl));
      node.value()->set_occurs(occurs);
      return node;
    }

    const std::string* name = decl.FindAttribute("name");
    if (name == nullptr) {
      return Status::ParseError("element declaration without name or ref");
    }
    // Guard against self-reference while this element's content is being
    // expanded (e.g. <element name="node"> ... <element ref="node"/>).
    struct ExpansionGuard {
      std::set<std::string>* expanding;
      const std::string* name;
      bool active;
      ~ExpansionGuard() {
        if (active) expanding->erase(*name);
      }
    } guard{&expanding_elements_, name,
            expanding_elements_.insert(*name).second};
    QMATCH_RETURN_IF_ERROR(CountNode());
    auto node = std::make_unique<SchemaNode>(*name, NodeKind::kElement);
    QMATCH_ASSIGN_OR_RETURN(Occurs occurs, ParseOccurs(decl));
    node->set_occurs(occurs);
    node->set_nillable(decl.AttributeOr("nillable", "false") == "true");
    if (const std::string* v = decl.FindAttribute("default")) {
      node->set_default_value(*v);
    }
    if (const std::string* v = decl.FindAttribute("fixed")) {
      node->set_fixed_value(*v);
    }

    if (const std::string* type_name = decl.FindAttribute("type")) {
      QMATCH_RETURN_IF_ERROR(
          ApplyNamedType(node.get(), decl, *type_name, depth));
      return node;
    }
    if (const xml::XmlElement* ct = decl.FirstChildElement("complexType")) {
      QMATCH_RETURN_IF_ERROR(ExpandComplexType(node.get(), *ct, depth));
      return node;
    }
    if (const xml::XmlElement* st = decl.FirstChildElement("simpleType")) {
      std::set<std::string> visiting;
      node->set_type(ResolveSimpleTypeElement(*st, &visiting));
      return node;
    }
    // Untyped element: xs:anyType.
    node->set_type(XsdType::kAnyType);
    return node;
  }

  Status ApplyNamedType(SchemaNode* node, const xml::XmlElement& context,
                        const std::string& type_qname, size_t depth) {
    std::string local(LocalOf(type_qname));
    // Built-in simple type?
    if (IsXsdQName(context, type_qname)) {
      XsdType builtin = ParseBuiltinType(local);
      if (builtin != XsdType::kUnknown) {
        node->set_type(builtin);
        return Status::OK();
      }
      if (local == "anyType") {
        node->set_type(XsdType::kAnyType);
        return Status::OK();
      }
    }
    // Named complex type?
    auto ct = complex_types_.find(local);
    if (ct != complex_types_.end()) {
      if (expanding_types_.count(local) > 0) {
        // Recursive type: truncate.
        node->set_type(XsdType::kUnknown, local);
        return Status::OK();
      }
      expanding_types_.insert(local);
      Status s = ExpandComplexType(node, *ct->second, depth);
      expanding_types_.erase(local);
      node->set_type(node->type(), local);
      return s;
    }
    // Named simple type?
    auto st = simple_types_.find(local);
    if (st != simple_types_.end()) {
      std::set<std::string> visiting;
      node->set_type(ResolveSimpleTypeElement(*st->second, &visiting), local);
      return Status::OK();
    }
    // Unknown user type: keep the name, mark unknown.
    node->set_type(XsdType::kUnknown, local);
    return Status::OK();
  }

  Status ExpandComplexType(SchemaNode* node, const xml::XmlElement& ct,
                           size_t depth) {
    if (depth > options_.max_depth) {
      return Status::ParseError("schema nesting exceeds max_depth");
    }
    for (const xml::XmlElement* child : ct.ChildElements()) {
      std::string_view local = child->LocalName();
      if (local == "annotation") continue;
      if (local == "sequence" || local == "choice" || local == "all") {
        node->set_compositor(local == "sequence"  ? Compositor::kSequence
                             : local == "choice" ? Compositor::kChoice
                                                 : Compositor::kAll);
        QMATCH_RETURN_IF_ERROR(ExpandParticle(node, *child, depth));
      } else if (local == "group") {
        QMATCH_RETURN_IF_ERROR(ExpandGroupRef(node, *child, depth));
      } else if (local == "attribute") {
        QMATCH_RETURN_IF_ERROR(AddAttribute(node, *child));
      } else if (local == "attributeGroup") {
        QMATCH_RETURN_IF_ERROR(ExpandAttributeGroupRef(node, *child));
      } else if (local == "complexContent") {
        QMATCH_RETURN_IF_ERROR(ExpandDerivedContent(node, *child, depth,
                                                    /*simple_content=*/false));
      } else if (local == "simpleContent") {
        QMATCH_RETURN_IF_ERROR(ExpandDerivedContent(node, *child, depth,
                                                    /*simple_content=*/true));
      } else if (local == "anyAttribute" || local == "any") {
        continue;  // wildcards carry no matchable structure
      } else {
        return Status::ParseError("unsupported complexType child <" +
                                  std::string(child->name()) + ">");
      }
    }
    return Status::OK();
  }

  Status ExpandDerivedContent(SchemaNode* node, const xml::XmlElement& content,
                              size_t depth, bool simple_content) {
    const xml::XmlElement* derivation = content.FirstChildElement("extension");
    bool is_extension = derivation != nullptr;
    if (derivation == nullptr) {
      derivation = content.FirstChildElement("restriction");
    }
    if (derivation == nullptr) {
      return Status::ParseError(
          "complexContent/simpleContent without extension or restriction");
    }
    std::string_view base = derivation->AttributeOr("base", "");
    if (!base.empty()) {
      if (simple_content) {
        std::set<std::string> visiting;
        node->set_type(ResolveSimpleTypeName(*derivation, base, &visiting),
                       std::string(LocalOf(base)));
      } else if (is_extension) {
        // Extension inherits the base type's particles and attributes.
        std::string local(LocalOf(base));
        auto it = complex_types_.find(local);
        if (it != complex_types_.end() && expanding_types_.count(local) == 0) {
          expanding_types_.insert(local);
          Status s = ExpandComplexType(node, *it->second, depth);
          expanding_types_.erase(local);
          QMATCH_RETURN_IF_ERROR(s);
        }
      }
      // complexContent restriction: the restricted content model is
      // repeated inline below, so nothing is inherited.
    }
    for (const xml::XmlElement* child : derivation->ChildElements()) {
      std::string_view local = child->LocalName();
      if (local == "annotation") continue;
      if (local == "sequence" || local == "choice" || local == "all") {
        node->set_compositor(local == "sequence"  ? Compositor::kSequence
                             : local == "choice" ? Compositor::kChoice
                                                 : Compositor::kAll);
        QMATCH_RETURN_IF_ERROR(ExpandParticle(node, *child, depth));
      } else if (local == "group") {
        QMATCH_RETURN_IF_ERROR(ExpandGroupRef(node, *child, depth));
      } else if (local == "attribute") {
        QMATCH_RETURN_IF_ERROR(AddAttribute(node, *child));
      } else if (local == "attributeGroup") {
        QMATCH_RETURN_IF_ERROR(ExpandAttributeGroupRef(node, *child));
      }
      // Facets (enumeration, pattern, ...) under simpleContent restriction
      // are ignored: they constrain values, not structure.
    }
    return Status::OK();
  }

  /// Walks a compositor's children, appending element declarations to
  /// `node`. Nested compositors are flattened into the same child list.
  Status ExpandParticle(SchemaNode* node, const xml::XmlElement& compositor,
                        size_t depth) {
    for (const xml::XmlElement* child : compositor.ChildElements()) {
      std::string_view local = child->LocalName();
      if (local == "annotation" || local == "any") continue;
      if (local == "element") {
        QMATCH_ASSIGN_OR_RETURN(std::unique_ptr<SchemaNode> el,
                                BuildElement(*child, depth + 1));
        node->AddChild(std::move(el));
      } else if (local == "sequence" || local == "choice" || local == "all") {
        QMATCH_RETURN_IF_ERROR(ExpandParticle(node, *child, depth));
      } else if (local == "group") {
        QMATCH_RETURN_IF_ERROR(ExpandGroupRef(node, *child, depth));
      } else {
        return Status::ParseError("unsupported particle <" +
                                  std::string(child->name()) + ">");
      }
    }
    return Status::OK();
  }

  Status ExpandGroupRef(SchemaNode* node, const xml::XmlElement& group_ref,
                        size_t depth) {
    std::string_view ref = group_ref.AttributeOr("ref", "");
    if (ref.empty()) {
      return Status::ParseError("group reference without ref attribute");
    }
    std::string local(LocalOf(ref));
    auto it = groups_.find(local);
    if (it == groups_.end()) {
      return Status::NotFound("group '" + local + "' not declared");
    }
    if (expanding_groups_.count(local) > 0) return Status::OK();
    expanding_groups_.insert(local);
    Status s = Status::OK();
    for (const xml::XmlElement* child : it->second->ChildElements()) {
      std::string_view child_local = child->LocalName();
      if (child_local == "annotation") continue;
      if (child_local == "sequence" || child_local == "choice" ||
          child_local == "all") {
        if (node->compositor() == Compositor::kNone) {
          node->set_compositor(child_local == "sequence" ? Compositor::kSequence
                               : child_local == "choice" ? Compositor::kChoice
                                                         : Compositor::kAll);
        }
        s = ExpandParticle(node, *child, depth);
        if (!s.ok()) break;
      }
    }
    expanding_groups_.erase(local);
    return s;
  }

  Status AddAttribute(SchemaNode* node, const xml::XmlElement& decl) {
    if (!options_.include_attributes) return Status::OK();
    const xml::XmlElement* resolved = &decl;
    if (const std::string* ref = decl.FindAttribute("ref")) {
      auto it = global_attributes_.find(std::string(LocalOf(*ref)));
      if (it == global_attributes_.end()) {
        return Status::NotFound("attribute ref '" + *ref + "' not declared");
      }
      resolved = it->second;
    }
    const std::string* name = resolved->FindAttribute("name");
    if (name == nullptr) {
      return Status::ParseError("attribute declaration without name or ref");
    }
    QMATCH_RETURN_IF_ERROR(CountNode());
    auto attr = std::make_unique<SchemaNode>(*name, NodeKind::kAttribute);
    // use= comes from the *reference site* when present, else the decl.
    std::string_view use = decl.AttributeOr("use", resolved->AttributeOr("use", "optional"));
    attr->set_occurs(Occurs{use == "required" ? 1 : 0, 1});
    if (const std::string* type_name = resolved->FindAttribute("type")) {
      std::set<std::string> visiting;
      XsdType t = ResolveSimpleTypeName(*resolved, *type_name, &visiting);
      attr->set_type(t, std::string(LocalOf(*type_name)));
    } else if (const xml::XmlElement* st =
                   resolved->FirstChildElement("simpleType")) {
      std::set<std::string> visiting;
      attr->set_type(ResolveSimpleTypeElement(*st, &visiting));
    } else {
      attr->set_type(XsdType::kAnySimpleType);
    }
    if (const std::string* v = resolved->FindAttribute("default")) {
      attr->set_default_value(*v);
    }
    if (const std::string* v = resolved->FindAttribute("fixed")) {
      attr->set_fixed_value(*v);
    }
    node->AddChild(std::move(attr));
    return Status::OK();
  }

  Status ExpandAttributeGroupRef(SchemaNode* node,
                                 const xml::XmlElement& group_ref) {
    std::string_view ref = group_ref.AttributeOr("ref", "");
    if (ref.empty()) {
      return Status::ParseError("attributeGroup reference without ref");
    }
    std::string local(LocalOf(ref));
    auto it = attribute_groups_.find(local);
    if (it == attribute_groups_.end()) {
      return Status::NotFound("attributeGroup '" + local + "' not declared");
    }
    for (const xml::XmlElement* child : it->second->ChildElements()) {
      if (child->LocalName() == "attribute") {
        QMATCH_RETURN_IF_ERROR(AddAttribute(node, *child));
      } else if (child->LocalName() == "attributeGroup") {
        QMATCH_RETURN_IF_ERROR(ExpandAttributeGroupRef(node, *child));
      }
    }
    return Status::OK();
  }

  const xml::XmlElement& schema_el_;
  const ParseOptions& options_;
  std::map<std::string, const xml::XmlElement*> global_elements_;
  std::map<std::string, const xml::XmlElement*> global_attributes_;
  std::map<std::string, const xml::XmlElement*> complex_types_;
  std::map<std::string, const xml::XmlElement*> simple_types_;
  std::map<std::string, const xml::XmlElement*> groups_;
  std::map<std::string, const xml::XmlElement*> attribute_groups_;
  std::set<std::string> expanding_types_;
  std::set<std::string> expanding_elements_;
  std::set<std::string> expanding_groups_;
  ScopedCharge charge_;  // released when the builder dies (end of parse)
  size_t nodes_ = 0;     // schema nodes created so far
};

}  // namespace

Result<Schema> ParseSchemaDocument(const xml::XmlDocument& doc,
                                   const ParseOptions& options) {
  QMATCH_SPAN(span, "xsd.parse");
  QMATCH_COUNTER_ADD("xsd.parse.documents", 1);
  QMATCH_FAILPOINT_RETURN("xsd.parse");
  if (doc.root() == nullptr) {
    QMATCH_COUNTER_ADD("xsd.parse.errors", 1);
    return Status::ParseError("empty XML document");
  }
  if (doc.root()->LocalName() != "schema") {
    QMATCH_COUNTER_ADD("xsd.parse.errors", 1);
    return Status::ParseError("root element is <" + doc.root()->name() +
                              ">, expected an XSD <schema>");
  }
  XsdTreeBuilder builder(*doc.root(), options);
  Result<Schema> result = builder.Build();
#if QMATCH_OBS_ENABLED
  if (result.ok()) {
    QMATCH_COUNTER_ADD("xsd.parse.nodes", result.value().NodeCount());
    QMATCH_SPAN_ARG(span, "nodes", result.value().NodeCount());
  } else {
    QMATCH_COUNTER_ADD("xsd.parse.errors", 1);
  }
#endif
  return result;
}

Result<Schema> ParseSchema(std::string_view xsd_text,
                           const ParseOptions& options) {
  if (xsd_text.size() > options.max_input_bytes) {
    QMATCH_COUNTER_ADD("xsd.parse.errors", 1);
    return Status::ResourceExhausted(
        "XSD input of " + std::to_string(xsd_text.size()) +
        " bytes exceeds max_input_bytes " +
        std::to_string(options.max_input_bytes));
  }
  xml::ParserOptions xml_options;
  xml_options.max_input_bytes = options.max_input_bytes;
  xml_options.budget = options.budget;
  QMATCH_ASSIGN_OR_RETURN(xml::XmlDocument doc,
                          xml::Parse(xsd_text, xml_options));
  return ParseSchemaDocument(doc, options);
}

}  // namespace qmatch::xsd
