#ifndef QMATCH_XSD_BUILDER_H_
#define QMATCH_XSD_BUILDER_H_

#include <memory>
#include <string>

#include "xsd/schema.h"

namespace qmatch::xsd {

/// Fluent programmatic construction of schema trees, used by the test
/// corpus, the synthetic generator and unit tests.
///
/// ```
///   SchemaBuilder b("PO");
///   SchemaNode* root = b.Root("PO");
///   SchemaNode* info = b.Element(root, "PurchaseInfo");
///   b.Element(info, "BillingAddr", XsdType::kString);
///   Schema schema = std::move(b).Build();
/// ```
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string name) : name_(std::move(name)) {}

  /// Creates the root element. Must be called exactly once, first.
  SchemaNode* Root(std::string label,
                   Compositor compositor = Compositor::kSequence);

  /// Appends an element child under `parent` and returns it.
  SchemaNode* Element(SchemaNode* parent, std::string label,
                      XsdType type = XsdType::kAnyType, Occurs occurs = {},
                      Compositor compositor = Compositor::kSequence);

  /// Appends an attribute child under `parent` and returns it.
  SchemaNode* Attribute(SchemaNode* parent, std::string label,
                        XsdType type = XsdType::kString,
                        bool required = false);

  /// Finalizes and returns the schema. The builder is consumed.
  Schema Build() &&;

 private:
  std::string name_;
  std::unique_ptr<SchemaNode> root_;
};

}  // namespace qmatch::xsd

#endif  // QMATCH_XSD_BUILDER_H_
