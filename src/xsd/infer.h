#ifndef QMATCH_XSD_INFER_H_
#define QMATCH_XSD_INFER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"
#include "xsd/schema.h"

namespace qmatch::xsd {

/// Options for XML-instance-to-schema inference.
struct InferOptions {
  /// Display name of the inferred schema; defaults to the root's name.
  std::string schema_name;
  /// Whether XML attributes become attribute-kind schema children
  /// (xmlns declarations are always skipped).
  bool include_attributes = true;
  /// Whether leaf datatypes are inferred from the observed text values
  /// (boolean / integer family / decimal / date / dateTime / gYear /
  /// anyURI / string). When false, every leaf is xs:string.
  bool infer_types = true;
};

/// Infers a schema tree from an XML *instance* document.
///
/// This is the substrate for the paper's motivating scenario — matching a
/// query schema against the "melting pot" of schemaless XML documents on
/// the Web (Section 1): documents without an XSD are lifted into the same
/// `Schema` representation the matchers consume.
///
/// Inference rules:
///  - repeated sibling elements of one name merge into a single schema
///    node; `maxOccurs` becomes unbounded when more than one occurrence
///    appears under any single parent instance, and `minOccurs` becomes 0
///    when any parent instance lacks the child;
///  - the structures of all instances of a name (under one parent name)
///    are unioned;
///  - child order follows first appearance (document order);
///  - leaf element / attribute types are inferred from the observed text
///    values as the narrowest type covering all of them.
Result<Schema> InferSchema(const xml::XmlDocument& doc,
                           const InferOptions& options = {});

/// Convenience: parse `xml_text` and infer.
Result<Schema> InferSchemaFromXml(std::string_view xml_text,
                                  const InferOptions& options = {});

/// Infers one schema from several instance documents of the same source
/// (they must share a root element name). Occurrence constraints and types
/// are aggregated across all documents, so a child missing from some
/// documents becomes optional even if every individual document is
/// self-consistent.
Result<Schema> InferSchemaFromDocuments(
    const std::vector<const xml::XmlDocument*>& docs,
    const InferOptions& options = {});

/// The narrowest built-in type covering a single text value (exposed for
/// tests): "42" -> int, "3.5" -> decimal, "true" -> boolean,
/// "2004-01-02" -> date, "http://x" -> anyURI, else string.
XsdType InferValueType(std::string_view value);

}  // namespace qmatch::xsd

#endif  // QMATCH_XSD_INFER_H_
