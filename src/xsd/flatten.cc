#include "xsd/flatten.h"

#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <utility>

namespace qmatch::xsd {

namespace {

/// The property-descriptor projection of one node. `type_name` is only
/// discriminating when the type is kUnknown (user-defined types compare by
/// written name — see match::CompareTypeProperty); for known types it is
/// dropped so that cosmetically different spellings of the same lattice
/// type intern to one descriptor.
FlatSchema::PropertyKey KeyOf(const SchemaNode& node) {
  FlatSchema::PropertyKey key;
  key.kind = node.kind();
  key.type = node.type();
  if (node.type() == XsdType::kUnknown) key.type_name = node.type_name();
  key.order = node.order();
  key.ordered = node.ordered();
  key.occurs_min = node.occurs().min;
  key.occurs_max = node.occurs().max;
  key.nillable = node.nillable();
  return key;
}

}  // namespace

FlatSchema BuildFlatSchema(const Schema& schema) {
  FlatSchema flat;
  if (schema.root() == nullptr) return flat;
  flat.nodes = schema.AllNodes();  // preorder, root first
  const size_t n = flat.nodes.size();
  flat.label_id.reserve(n);
  flat.prop_id.reserve(n);
  flat.level.reserve(n);
  flat.parent.reserve(n);
  flat.child_begin.reserve(n + 1);
  flat.child_index.reserve(n - 1);

  std::map<const SchemaNode*, uint32_t> index;
  for (size_t i = 0; i < n; ++i) {
    index[flat.nodes[i]] = static_cast<uint32_t>(i);
  }

  // Interning maps; ids are assigned in first-occurrence preorder order so
  // that repeated flattens of equal trees produce identical tables (the
  // intern-stability property the flatten tests pin down).
  std::map<std::string_view, uint32_t> label_ids;
  std::map<FlatSchema::PropertyKey, uint32_t> prop_ids;

  for (size_t i = 0; i < n; ++i) {
    const SchemaNode* node = flat.nodes[i];

    const auto [label_it, label_fresh] = label_ids.try_emplace(
        node->label(), static_cast<uint32_t>(flat.labels.size()));
    if (label_fresh) flat.labels.push_back(node->label());
    flat.label_id.push_back(label_it->second);

    const auto [prop_it, prop_fresh] = prop_ids.try_emplace(
        KeyOf(*node), static_cast<uint32_t>(flat.prop_keys.size()));
    if (prop_fresh) {
      flat.prop_keys.push_back(prop_it->first);
      flat.prop_rep.push_back(static_cast<uint32_t>(i));
    }
    flat.prop_id.push_back(prop_it->second);

    const auto level = static_cast<uint32_t>(node->level());
    flat.level.push_back(level);
    if (level > flat.max_level) flat.max_level = level;
    flat.parent.push_back(node->parent() == nullptr
                              ? FlatSchema::kNoParent
                              : index.at(node->parent()));
  }

  // CSR child ranges, in the same preorder: node i's children occupy one
  // contiguous run of child_index in tree (sibling) order.
  for (size_t i = 0; i < n; ++i) {
    flat.child_begin.push_back(static_cast<uint32_t>(flat.child_index.size()));
    for (const auto& child : flat.nodes[i]->children()) {
      flat.child_index.push_back(index.at(child.get()));
    }
  }
  flat.child_begin.push_back(static_cast<uint32_t>(flat.child_index.size()));

  // Thesaurus-ready prepared form once per distinct label, not per node.
  flat.prepared.reserve(flat.labels.size());
  for (const std::string& label : flat.labels) {
    flat.prepared.push_back(lingua::NameMatcher::Prepare(label));
  }
  return flat;
}

Schema ReconstructFromFlat(const FlatSchema& flat, std::string name) {
  Schema schema;
  schema.set_name(std::move(name));
  if (flat.size() == 0) return schema;

  const size_t n = flat.size();
  std::vector<std::unique_ptr<SchemaNode>> built;
  std::vector<SchemaNode*> raw(n, nullptr);
  built.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const FlatSchema::PropertyKey& key = flat.prop_keys[flat.prop_id[i]];
    auto node = std::make_unique<SchemaNode>(flat.labels[flat.label_id[i]],
                                             key.kind);
    node->set_type(key.type, key.type_name);
    node->set_occurs({key.occurs_min, key.occurs_max});
    node->set_nillable(key.nillable);
    raw[i] = node.get();
    built.push_back(std::move(node));
  }

  for (size_t i = 0; i < n; ++i) {
    const uint32_t begin = flat.child_begin[i];
    const uint32_t end = flat.child_begin[i + 1];
    if (begin == end) continue;
    // All siblings share the ordered flag (it is a property of the parent
    // compositor); kSequence reproduces ordered=true, kChoice false.
    const bool ordered =
        flat.prop_keys[flat.prop_id[flat.child_index[begin]]].ordered;
    raw[i]->set_compositor(ordered ? Compositor::kSequence
                                   : Compositor::kChoice);
    for (uint32_t c = begin; c < end; ++c) {
      raw[i]->AddChild(std::move(built[flat.child_index[c]]));
    }
  }

  schema.set_root(std::move(built[0]));  // Finalize(): levels/order/ordered
  return schema;
}

const FlatSchema& Schema::Flat() const {
  // One process-wide mutex for all schemas: Flat() is called once per
  // schema per match, so contention is negligible, and keeping the Schema
  // object free of sync members preserves its defaulted move operations.
  static std::mutex mu;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (flat_ != nullptr) return *flat_;
  }
  // Build outside the lock (the tree is immutable while matching); the
  // first finished build wins, concurrent losers are discarded.
  auto built = std::make_shared<const FlatSchema>(BuildFlatSchema(*this));
  std::lock_guard<std::mutex> lock(mu);
  if (flat_ == nullptr) flat_ = std::move(built);
  return *flat_;
}

}  // namespace qmatch::xsd
