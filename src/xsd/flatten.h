#ifndef QMATCH_XSD_FLATTEN_H_
#define QMATCH_XSD_FLATTEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lingua/name_match.h"
#include "xsd/schema.h"

namespace qmatch::xsd {

/// Structure-of-arrays projection of one schema tree: everything the match
/// kernel reads, flattened into contiguous preorder-indexed columns (see
/// DESIGN.md §13).
///
/// The projection is *exact* for matching purposes: two nodes with the same
/// label id, property id and level are indistinguishable to the label,
/// property and level axes, and the CSR child ranges reproduce the tree's
/// child iteration order for the children axis. Information the matcher
/// never reads (default/fixed value facets, the choice-vs-all compositor
/// distinction, the schema name) is deliberately not represented;
/// `ReconstructFromFlat` rebuilds a tree carrying exactly the projected
/// information.
///
/// Instances are immutable after construction and borrow the tree's nodes
/// (`nodes[i]`), so a FlatSchema must not outlive its schema's tree.
struct FlatSchema {
  static constexpr uint32_t kNoParent = UINT32_MAX;

  // --- per-node columns, preorder-indexed (0 = root) --------------------
  std::vector<const SchemaNode*> nodes;  // borrowed tree nodes
  std::vector<uint32_t> label_id;        // index into labels/prepared
  std::vector<uint32_t> prop_id;         // index into prop_keys
  std::vector<uint32_t> level;           // depth from root (root = 0)
  std::vector<uint32_t> parent;          // preorder index; kNoParent at root

  // --- CSR child ranges --------------------------------------------------
  // Children of node i are child_index[child_begin[i] .. child_begin[i+1])
  // in tree order. Preorder numbering makes every child id > its parent's,
  // and all ids within a range share level[parent]+1.
  std::vector<uint32_t> child_begin;  // size() + 1 entries
  std::vector<uint32_t> child_index;  // size() - 1 entries (all but root)

  // --- interned label table ----------------------------------------------
  // Distinct label strings in first-occurrence (preorder) order, with the
  // thesaurus-ready prepared form (canonical string + singularised tokens)
  // resolved once per distinct label instead of once per node.
  std::vector<std::string> labels;
  std::vector<lingua::PreparedLabel> prepared;

  // --- packed property descriptors ---------------------------------------
  /// Exactly the node fields match::MatchProperties reads — the property
  /// axis is a pure function of a (PropertyKey, PropertyKey) pair, which is
  /// what lets the kernel dedup it to one evaluation per distinct pair.
  struct PropertyKey {
    NodeKind kind = NodeKind::kElement;
    XsdType type = XsdType::kAnyType;
    std::string type_name;
    int order = 0;
    bool ordered = false;
    int occurs_min = 1;
    int occurs_max = 1;
    bool nillable = false;

    friend bool operator==(const PropertyKey&, const PropertyKey&) = default;
    friend auto operator<=>(const PropertyKey&, const PropertyKey&) = default;
  };
  /// Distinct descriptors in first-occurrence (preorder) order.
  std::vector<PropertyKey> prop_keys;
  /// prop_rep[k] = preorder index of the first node carrying prop_keys[k]
  /// (a representative whose SchemaNode realises the descriptor).
  std::vector<uint32_t> prop_rep;

  uint32_t max_level = 0;

  size_t size() const { return nodes.size(); }
};

/// Flattens a finalised schema. An empty schema yields an empty FlatSchema.
/// Prefer `Schema::Flat()`, which caches the result on the schema.
FlatSchema BuildFlatSchema(const Schema& schema);

/// Rebuilds a schema tree from the flattened projection: structure, labels,
/// kinds, types, occurrence constraints, nillable flags and (via a
/// sequence/choice compositor choice) the ordered flags. Re-flattening the
/// result reproduces `flat` column for column — the flatten round-trip
/// property the xsd_flatten_test suite checks.
Schema ReconstructFromFlat(const FlatSchema& flat, std::string name);

}  // namespace qmatch::xsd

#endif  // QMATCH_XSD_FLATTEN_H_
