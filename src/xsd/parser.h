#ifndef QMATCH_XSD_PARSER_H_
#define QMATCH_XSD_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/memory_budget.h"
#include "common/result.h"
#include "xml/dom.h"
#include "xsd/schema.h"

namespace qmatch::xsd {

/// Options controlling XSD-to-schema-tree conversion.
struct ParseOptions {
  /// Display name of the produced schema; defaults to the root element label.
  std::string schema_name;
  /// Name of the global element to use as the tree root. Empty picks the
  /// first global element declaration in document order.
  std::string root_element;
  /// Whether attribute declarations become (attribute-kind) children.
  bool include_attributes = true;
  /// Expansion-depth guard against degenerate or recursive schemas. Named
  /// types that recurse are expanded once and then cut off into leaves.
  size_t max_depth = 64;
  /// Maximum accepted XSD text size (ParseSchema only; kResourceExhausted
  /// past it). Also forwarded to the underlying XML parse.
  size_t max_input_bytes = 64u << 20;  // 64 MiB
  /// Maximum number of schema nodes the expansion may produce — group/type
  /// reuse can blow a small document up combinatorially, so the cap is on
  /// the *output* tree, not the input (typed kResourceExhausted past it).
  size_t max_nodes = 100000;
  /// Optional accounting arena (borrowed): charged an estimate per schema
  /// node while building, released when the parse finishes; also forwarded
  /// to the underlying XML parse. Null = no accounting.
  MemoryBudget* budget = nullptr;
};

/// Parses an XML Schema (XSD) document into a `Schema` tree.
///
/// Supported XSD constructs: global/local `element`, named and anonymous
/// `complexType`, `simpleType` with `restriction`/`list`/`union`,
/// `sequence`/`choice`/`all` compositors (nested compositors are flattened
/// into the nearest element's child list), `group`/`attributeGroup`
/// definitions and references, `element`/`attribute` `ref=`,
/// `complexContent`/`simpleContent` with `extension` and `restriction`,
/// `minOccurs`/`maxOccurs`/`use`, `nillable`, `default`, `fixed`, and
/// `annotation` (skipped). Recursive type definitions are expanded once and
/// then truncated, matching how matchers bound recursion.
Result<Schema> ParseSchema(std::string_view xsd_text,
                           const ParseOptions& options = {});

/// Same, starting from an already parsed XML document.
Result<Schema> ParseSchemaDocument(const xml::XmlDocument& doc,
                                   const ParseOptions& options = {});

}  // namespace qmatch::xsd

#endif  // QMATCH_XSD_PARSER_H_
