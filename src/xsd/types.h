#ifndef QMATCH_XSD_TYPES_H_
#define QMATCH_XSD_TYPES_H_

#include <string_view>

namespace qmatch::xsd {

/// Built-in XML Schema datatypes (W3C XML Schema Part 2), arranged in the
/// specification's derivation hierarchy. `kUnknown` marks user-defined types
/// the parser could not resolve to a built-in base.
enum class XsdType {
  kUnknown = 0,
  kAnyType,
  kAnySimpleType,
  // Primitive types.
  kString,
  kBoolean,
  kDecimal,
  kFloat,
  kDouble,
  kDuration,
  kDateTime,
  kTime,
  kDate,
  kGYearMonth,
  kGYear,
  kGMonthDay,
  kGDay,
  kGMonth,
  kHexBinary,
  kBase64Binary,
  kAnyUri,
  kQName,
  // String-derived.
  kNormalizedString,
  kToken,
  kLanguage,
  kNmToken,
  kName,
  kNcName,
  kId,
  kIdRef,
  kEntity,
  // Decimal-derived.
  kInteger,
  kNonPositiveInteger,
  kNegativeInteger,
  kLong,
  kInt,
  kShort,
  kByte,
  kNonNegativeInteger,
  kUnsignedLong,
  kUnsignedInt,
  kUnsignedShort,
  kUnsignedByte,
  kPositiveInteger,
};

/// How two types relate in the derivation hierarchy. Used by the property
/// matcher: `kGeneralizes`/`kSpecializes` yield a *relaxed* type match
/// (Section 2.1 of the paper), `kEqual` an *exact* one.
enum class TypeRelation {
  kEqual,
  kGeneralizes,   // lhs is an ancestor (generalization) of rhs
  kSpecializes,   // lhs is a descendant (specialization) of rhs
  kSameFamily,    // share a primitive ancestor other than anySimpleType
  kUnrelated,
};

/// Parses a built-in type local name ("int", "string", ...). Returns
/// kUnknown for names that are not built-in XSD types.
XsdType ParseBuiltinType(std::string_view local_name);

/// Canonical local name of a built-in type ("unknown" for kUnknown).
std::string_view TypeName(XsdType type);

/// Immediate base type in the XSD derivation hierarchy; kAnyType for the
/// roots (kAnyType, kUnknown map to themselves).
XsdType BaseType(XsdType type);

/// True if `general` appears on `specific`'s derivation chain (inclusive of
/// equality only when `general == specific`).
bool IsAncestorType(XsdType general, XsdType specific);

/// The primitive ancestor of `type` (string for ID, decimal for int, ...).
XsdType PrimitiveAncestor(XsdType type);

/// Classifies the relation between two types. Unknown types compare
/// kUnrelated unless equal.
TypeRelation CompareTypes(XsdType lhs, XsdType rhs);

/// Number of derivation steps between `type` and its ancestor `ancestor`;
/// -1 when `ancestor` is not on the chain.
int DerivationDistance(XsdType ancestor, XsdType type);

}  // namespace qmatch::xsd

#endif  // QMATCH_XSD_TYPES_H_
