#include "xsd/schema.h"

#include <algorithm>

#include "common/string_util.h"

namespace qmatch::xsd {

std::string_view CompositorName(Compositor c) {
  switch (c) {
    case Compositor::kNone:
      return "none";
    case Compositor::kSequence:
      return "sequence";
    case Compositor::kChoice:
      return "choice";
    case Compositor::kAll:
      return "all";
  }
  return "?";
}

std::string_view NodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::kElement:
      return "element";
    case NodeKind::kAttribute:
      return "attribute";
  }
  return "?";
}

SchemaNode* SchemaNode::AddChild(std::unique_ptr<SchemaNode> child) {
  child->parent_ = this;
  SchemaNode* borrowed = child.get();
  children_.push_back(std::move(child));
  return borrowed;
}

const SchemaNode* SchemaNode::FindChild(std::string_view label) const {
  for (const auto& child : children_) {
    if (child->label() == label) return child.get();
  }
  return nullptr;
}

size_t SchemaNode::SubtreeSize() const {
  size_t count = 1;
  for (const auto& child : children_) count += child->SubtreeSize();
  return count;
}

size_t SchemaNode::Height() const {
  size_t h = 0;
  for (const auto& child : children_) {
    h = std::max(h, 1 + child->Height());
  }
  return h;
}

std::string SchemaNode::Path() const {
  std::string path;
  // Build from root down: collect ancestry, then emit.
  std::vector<const SchemaNode*> chain;
  for (const SchemaNode* n = this; n != nullptr; n = n->parent_) {
    chain.push_back(n);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    path += '/';
    if ((*it)->kind() == NodeKind::kAttribute) path += '@';
    path += (*it)->label();
  }
  return path;
}

std::string SchemaNode::DebugString() const {
  std::string occurs_str;
  if (occurs_.unbounded()) {
    occurs_str = StrFormat("[%d,*]", occurs_.min);
  } else {
    occurs_str = StrFormat("[%d,%d]", occurs_.min, occurs_.max);
  }
  return StrFormat(
      "%s%s (%s, type=%s, occurs=%s, level=%zu, order=%d%s)",
      kind_ == NodeKind::kAttribute ? "@" : "", label_.c_str(),
      std::string(NodeKindName(kind_)).c_str(),
      type_name_.empty() ? std::string(TypeName(type_)).c_str()
                         : type_name_.c_str(),
      occurs_str.c_str(), level_, order_, ordered_ ? ", ordered" : "");
}

void Schema::Finalize() {
  flat_.reset();  // any tree mutation invalidates the SoA projection
  if (root_ == nullptr) return;
  // Iterative preorder walk assigning levels and sibling order.
  struct Item {
    SchemaNode* node;
    size_t level;
  };
  std::vector<Item> stack;
  root_->level_ = 0;
  root_->order_ = 0;
  root_->ordered_ = false;
  root_->parent_ = nullptr;
  stack.push_back({root_.get(), 0});
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    SchemaNode* node = item.node;
    node->level_ = item.level;
    const bool children_ordered = node->compositor_ == Compositor::kSequence;
    int index = 0;
    for (auto& child : node->children_) {
      child->parent_ = node;
      child->order_ = index++;
      child->ordered_ = children_ordered;
      stack.push_back({child.get(), item.level + 1});
    }
  }
}

size_t Schema::NodeCount() const {
  return root_ != nullptr ? root_->SubtreeSize() : 0;
}

size_t Schema::ElementCount() const {
  size_t count = 0;
  for (const SchemaNode* node : AllNodes()) {
    if (node->kind() == NodeKind::kElement) ++count;
  }
  return count;
}

size_t Schema::MaxDepth() const {
  return root_ != nullptr ? root_->Height() : 0;
}

std::vector<const SchemaNode*> Schema::AllNodes() const {
  std::vector<const SchemaNode*> out;
  if (root_ == nullptr) return out;
  std::vector<const SchemaNode*> stack = {root_.get()};
  while (!stack.empty()) {
    const SchemaNode* node = stack.back();
    stack.pop_back();
    out.push_back(node);
    // Push children in reverse so preorder emits them left-to-right.
    for (auto it = node->children().rbegin(); it != node->children().rend();
         ++it) {
      stack.push_back(it->get());
    }
  }
  return out;
}

std::vector<SchemaNode*> Schema::AllNodes() {
  std::vector<SchemaNode*> out;
  if (root_ == nullptr) return out;
  std::vector<SchemaNode*> stack = {root_.get()};
  while (!stack.empty()) {
    SchemaNode* node = stack.back();
    stack.pop_back();
    out.push_back(node);
    for (auto it = node->children_.rbegin(); it != node->children_.rend();
         ++it) {
      stack.push_back(it->get());
    }
  }
  return out;
}

const SchemaNode* Schema::FindByPath(std::string_view path) const {
  for (const SchemaNode* node : AllNodes()) {
    if (node->Path() == path) return node;
  }
  return nullptr;
}

namespace {

std::unique_ptr<SchemaNode> CloneNode(const SchemaNode& src) {
  auto copy = std::make_unique<SchemaNode>(src.label(), src.kind());
  copy->set_type(src.type(), src.type_name());
  copy->set_occurs(src.occurs());
  copy->set_compositor(src.compositor());
  copy->set_nillable(src.nillable());
  if (src.default_value().has_value()) {
    copy->set_default_value(*src.default_value());
  }
  if (src.fixed_value().has_value()) {
    copy->set_fixed_value(*src.fixed_value());
  }
  for (const auto& child : src.children()) {
    copy->AddChild(CloneNode(*child));
  }
  return copy;
}

void AppendTree(const SchemaNode& node, size_t depth, std::string& out) {
  out.append(depth * 2, ' ');
  out += node.DebugString();
  out += '\n';
  for (const auto& child : node.children()) {
    AppendTree(*child, depth + 1, out);
  }
}

}  // namespace

Schema Schema::Clone() const {
  Schema copy;
  copy.set_name(name_);
  copy.set_target_namespace(target_namespace_);
  if (root_ != nullptr) {
    copy.set_root(CloneNode(*root_));
  }
  return copy;
}

std::string Schema::ToTreeString() const {
  std::string out = "schema '" + name_ + "'\n";
  if (root_ != nullptr) AppendTree(*root_, 1, out);
  return out;
}

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashBytes(std::string_view bytes, uint64_t& h) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

void HashInt(uint64_t value, uint64_t& h) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (byte * 8)) & 0xffu;
    h *= kFnvPrime;
  }
}

void HashNode(const SchemaNode& node, uint64_t& h) {
  HashBytes(node.label(), h);
  HashInt(static_cast<uint64_t>(node.kind()), h);
  HashInt(static_cast<uint64_t>(node.type()), h);
  HashBytes(node.type_name(), h);
  HashInt(static_cast<uint64_t>(static_cast<int64_t>(node.occurs().min)), h);
  HashInt(static_cast<uint64_t>(static_cast<int64_t>(node.occurs().max)), h);
  HashInt(static_cast<uint64_t>(node.compositor()), h);
  HashInt(node.nillable() ? 1u : 0u, h);
  HashBytes(node.default_value().value_or(""), h);
  HashBytes(node.fixed_value().value_or(""), h);
  HashInt(node.child_count(), h);
  for (const auto& child : node.children()) HashNode(*child, h);
}

}  // namespace

uint64_t SchemaFingerprint(const Schema& schema) {
  uint64_t h = kFnvOffset;
  if (schema.root() != nullptr) HashNode(*schema.root(), h);
  return h;
}

}  // namespace qmatch::xsd
