#include "xsd/types.h"

#include <array>
#include <utility>

namespace qmatch::xsd {

namespace {

struct TypeInfo {
  XsdType type;
  std::string_view name;
  XsdType base;
};

// Derivation hierarchy per W3C XML Schema Part 2 §3.
constexpr std::array<TypeInfo, 42> kTypeTable = {{
    {XsdType::kUnknown, "unknown", XsdType::kUnknown},
    {XsdType::kAnyType, "anyType", XsdType::kAnyType},
    {XsdType::kAnySimpleType, "anySimpleType", XsdType::kAnyType},
    {XsdType::kString, "string", XsdType::kAnySimpleType},
    {XsdType::kBoolean, "boolean", XsdType::kAnySimpleType},
    {XsdType::kDecimal, "decimal", XsdType::kAnySimpleType},
    {XsdType::kFloat, "float", XsdType::kAnySimpleType},
    {XsdType::kDouble, "double", XsdType::kAnySimpleType},
    {XsdType::kDuration, "duration", XsdType::kAnySimpleType},
    {XsdType::kDateTime, "dateTime", XsdType::kAnySimpleType},
    {XsdType::kTime, "time", XsdType::kAnySimpleType},
    {XsdType::kDate, "date", XsdType::kAnySimpleType},
    {XsdType::kGYearMonth, "gYearMonth", XsdType::kAnySimpleType},
    {XsdType::kGYear, "gYear", XsdType::kAnySimpleType},
    {XsdType::kGMonthDay, "gMonthDay", XsdType::kAnySimpleType},
    {XsdType::kGDay, "gDay", XsdType::kAnySimpleType},
    {XsdType::kGMonth, "gMonth", XsdType::kAnySimpleType},
    {XsdType::kHexBinary, "hexBinary", XsdType::kAnySimpleType},
    {XsdType::kBase64Binary, "base64Binary", XsdType::kAnySimpleType},
    {XsdType::kAnyUri, "anyURI", XsdType::kAnySimpleType},
    {XsdType::kQName, "QName", XsdType::kAnySimpleType},
    {XsdType::kNormalizedString, "normalizedString", XsdType::kString},
    {XsdType::kToken, "token", XsdType::kNormalizedString},
    {XsdType::kLanguage, "language", XsdType::kToken},
    {XsdType::kNmToken, "NMTOKEN", XsdType::kToken},
    {XsdType::kName, "Name", XsdType::kToken},
    {XsdType::kNcName, "NCName", XsdType::kName},
    {XsdType::kId, "ID", XsdType::kNcName},
    {XsdType::kIdRef, "IDREF", XsdType::kNcName},
    {XsdType::kEntity, "ENTITY", XsdType::kNcName},
    {XsdType::kInteger, "integer", XsdType::kDecimal},
    {XsdType::kNonPositiveInteger, "nonPositiveInteger", XsdType::kInteger},
    {XsdType::kNegativeInteger, "negativeInteger",
     XsdType::kNonPositiveInteger},
    {XsdType::kLong, "long", XsdType::kInteger},
    {XsdType::kInt, "int", XsdType::kLong},
    {XsdType::kShort, "short", XsdType::kInt},
    {XsdType::kByte, "byte", XsdType::kShort},
    {XsdType::kNonNegativeInteger, "nonNegativeInteger", XsdType::kInteger},
    {XsdType::kUnsignedLong, "unsignedLong", XsdType::kNonNegativeInteger},
    {XsdType::kUnsignedInt, "unsignedInt", XsdType::kUnsignedLong},
    {XsdType::kUnsignedShort, "unsignedShort", XsdType::kUnsignedInt},
    {XsdType::kUnsignedByte, "unsignedByte", XsdType::kUnsignedShort},
}};

const TypeInfo& InfoOf(XsdType type) {
  for (const TypeInfo& info : kTypeTable) {
    if (info.type == type) return info;
  }
  return kTypeTable[0];
}

}  // namespace

XsdType ParseBuiltinType(std::string_view local_name) {
  for (const TypeInfo& info : kTypeTable) {
    if (info.name == local_name) return info.type;
  }
  // positiveInteger is the one type not representable purely by the table
  // loop above (its base is nonNegativeInteger); handle explicitly.
  if (local_name == "positiveInteger") return XsdType::kPositiveInteger;
  return XsdType::kUnknown;
}

std::string_view TypeName(XsdType type) {
  if (type == XsdType::kPositiveInteger) return "positiveInteger";
  return InfoOf(type).name;
}

XsdType BaseType(XsdType type) {
  if (type == XsdType::kPositiveInteger) return XsdType::kNonNegativeInteger;
  return InfoOf(type).base;
}

bool IsAncestorType(XsdType general, XsdType specific) {
  if (general == specific) return true;
  if (general == XsdType::kUnknown || specific == XsdType::kUnknown) {
    return false;
  }
  XsdType cur = specific;
  while (cur != XsdType::kAnyType) {
    cur = BaseType(cur);
    if (cur == general) return true;
  }
  return general == XsdType::kAnyType;
}

XsdType PrimitiveAncestor(XsdType type) {
  if (type == XsdType::kUnknown || type == XsdType::kAnyType ||
      type == XsdType::kAnySimpleType) {
    return type;
  }
  XsdType cur = type;
  while (BaseType(cur) != XsdType::kAnySimpleType) {
    cur = BaseType(cur);
  }
  return cur;
}

TypeRelation CompareTypes(XsdType lhs, XsdType rhs) {
  if (lhs == rhs) return TypeRelation::kEqual;
  if (lhs == XsdType::kUnknown || rhs == XsdType::kUnknown) {
    return TypeRelation::kUnrelated;
  }
  if (IsAncestorType(lhs, rhs)) return TypeRelation::kGeneralizes;
  if (IsAncestorType(rhs, lhs)) return TypeRelation::kSpecializes;
  XsdType pl = PrimitiveAncestor(lhs);
  XsdType pr = PrimitiveAncestor(rhs);
  if (pl == pr && pl != XsdType::kAnySimpleType && pl != XsdType::kAnyType) {
    return TypeRelation::kSameFamily;
  }
  // float/double/decimal are spec-distinct primitives but semantically one
  // numeric family for matching purposes.
  auto numeric = [](XsdType t) {
    return t == XsdType::kDecimal || t == XsdType::kFloat ||
           t == XsdType::kDouble;
  };
  if (numeric(pl) && numeric(pr)) return TypeRelation::kSameFamily;
  return TypeRelation::kUnrelated;
}

int DerivationDistance(XsdType ancestor, XsdType type) {
  int steps = 0;
  XsdType cur = type;
  for (;;) {
    if (cur == ancestor) return steps;
    if (cur == XsdType::kAnyType) return -1;
    cur = BaseType(cur);
    ++steps;
  }
}

}  // namespace qmatch::xsd
