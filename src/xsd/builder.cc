#include "xsd/builder.h"

#include <utility>

#include "common/logging.h"

namespace qmatch::xsd {

SchemaNode* SchemaBuilder::Root(std::string label, Compositor compositor) {
  QMATCH_CHECK(root_ == nullptr) << "Root() called twice";
  root_ = std::make_unique<SchemaNode>(std::move(label), NodeKind::kElement);
  root_->set_compositor(compositor);
  return root_.get();
}

SchemaNode* SchemaBuilder::Element(SchemaNode* parent, std::string label,
                                   XsdType type, Occurs occurs,
                                   Compositor compositor) {
  QMATCH_CHECK(parent != nullptr) << "Element() requires a parent";
  auto node = std::make_unique<SchemaNode>(std::move(label), NodeKind::kElement);
  node->set_type(type);
  node->set_occurs(occurs);
  node->set_compositor(compositor);
  return parent->AddChild(std::move(node));
}

SchemaNode* SchemaBuilder::Attribute(SchemaNode* parent, std::string label,
                                     XsdType type, bool required) {
  QMATCH_CHECK(parent != nullptr) << "Attribute() requires a parent";
  auto node =
      std::make_unique<SchemaNode>(std::move(label), NodeKind::kAttribute);
  node->set_type(type);
  node->set_occurs(Occurs{required ? 1 : 0, 1});
  return parent->AddChild(std::move(node));
}

Schema SchemaBuilder::Build() && {
  QMATCH_CHECK(root_ != nullptr) << "Build() before Root()";
  return Schema(std::move(name_), std::move(root_));
}

}  // namespace qmatch::xsd
