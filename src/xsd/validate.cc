#include "xsd/validate.h"

#include <map>

#include "common/string_util.h"
#include "xsd/infer.h"

namespace qmatch::xsd {

std::string_view ViolationKindName(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kWrongRoot:
      return "wrong root";
    case Violation::Kind::kUnknownElement:
      return "unknown element";
    case Violation::Kind::kUnknownAttribute:
      return "unknown attribute";
    case Violation::Kind::kMissingChild:
      return "missing child";
    case Violation::Kind::kMissingAttribute:
      return "missing attribute";
    case Violation::Kind::kTooFewOccurrences:
      return "too few occurrences";
    case Violation::Kind::kTooManyOccurrences:
      return "too many occurrences";
    case Violation::Kind::kTypeMismatch:
      return "type mismatch";
    case Violation::Kind::kFixedValueMismatch:
      return "fixed value mismatch";
  }
  return "?";
}

std::string Violation::ToString() const {
  return StrFormat("[%s] %s: %s",
                   std::string(ViolationKindName(kind)).c_str(), where.c_str(),
                   message.c_str());
}

namespace {

/// True when `text` is acceptable for the declared built-in type. The check
/// is permissive: the inferred type of the value must be the declared type
/// or a relative on the lattice (string accepts everything).
bool ValueMatchesType(std::string_view text, XsdType declared) {
  if (declared == XsdType::kUnknown || declared == XsdType::kAnyType ||
      declared == XsdType::kAnySimpleType) {
    return true;
  }
  if (PrimitiveAncestor(declared) == XsdType::kString) return true;
  // Only check types the value inferrer can actually recognise; lexical
  // spaces it does not model (gYearMonth, duration, binary, QName, ...)
  // are accepted as-is.
  switch (PrimitiveAncestor(declared)) {
    case XsdType::kDecimal:
    case XsdType::kFloat:
    case XsdType::kDouble:
    case XsdType::kBoolean:
    case XsdType::kDate:
    case XsdType::kDateTime:
    case XsdType::kGYear:
    case XsdType::kAnyUri:
      break;
    default:
      return true;
  }
  XsdType observed = InferValueType(Trim(text));
  if (observed == declared) return true;
  switch (CompareTypes(observed, declared)) {
    case TypeRelation::kEqual:
    case TypeRelation::kGeneralizes:
    case TypeRelation::kSpecializes:
    case TypeRelation::kSameFamily:
      return true;
    case TypeRelation::kUnrelated:
      return false;
  }
  return false;
}

class Validator {
 public:
  Validator(const ValidateOptions& options, std::vector<Violation>* out)
      : options_(options), out_(out) {}

  bool Full() const {
    return options_.max_violations > 0 &&
           out_->size() >= options_.max_violations;
  }

  void Report(Violation::Kind kind, std::string where, std::string message) {
    if (Full()) return;
    out_->push_back({kind, std::move(where), std::move(message)});
  }

  void ValidateElement(const xml::XmlElement& element, const SchemaNode& decl,
                       const std::string& where) {
    if (Full()) return;

    // Attributes.
    std::map<std::string, const SchemaNode*> declared_attributes;
    for (const auto& child : decl.children()) {
      if (child->kind() == NodeKind::kAttribute) {
        declared_attributes[child->label()] = child.get();
      }
    }
    for (const xml::XmlAttribute& attr : element.attributes()) {
      if (attr.name == "xmlns" || StartsWith(attr.name, "xmlns:")) continue;
      auto it = declared_attributes.find(attr.name);
      if (it == declared_attributes.end()) {
        if (!options_.allow_undeclared) {
          Report(Violation::Kind::kUnknownAttribute, where + "/@" + attr.name,
                 "attribute not declared");
        }
        continue;
      }
      CheckValue(attr.value, *it->second, where + "/@" + attr.name);
    }
    for (const auto& [name, attr_decl] : declared_attributes) {
      if (attr_decl->occurs().min >= 1 && !element.HasAttribute(name)) {
        Report(Violation::Kind::kMissingAttribute, where + "/@" + name,
               "required attribute absent");
      }
    }

    // Child elements.
    std::map<std::string, const SchemaNode*> declared_children;
    for (const auto& child : decl.children()) {
      if (child->kind() == NodeKind::kElement) {
        declared_children[child->label()] = child.get();
      }
    }
    std::map<std::string, int> counts;
    std::map<std::string, int> sibling_index;
    for (const xml::XmlElement* child : element.ChildElements()) {
      std::string name(child->LocalName());
      int index = ++sibling_index[name];
      std::string child_where =
          StrFormat("%s/%s[%d]", where.c_str(), name.c_str(), index);
      auto it = declared_children.find(name);
      if (it == declared_children.end()) {
        if (!options_.allow_undeclared) {
          Report(Violation::Kind::kUnknownElement, child_where,
                 "element not declared here");
        }
        continue;
      }
      ++counts[name];
      ValidateElement(*child, *it->second, child_where);
    }
    for (const auto& [name, child_decl] : declared_children) {
      int count = counts.count(name) > 0 ? counts.at(name) : 0;
      const Occurs& occurs = child_decl->occurs();
      if (count == 0 && occurs.min >= 1) {
        Report(Violation::Kind::kMissingChild, where + "/" + name,
               StrFormat("requires at least %d occurrence(s), found none",
                         occurs.min));
      } else if (count > 0 && count < occurs.min) {
        Report(Violation::Kind::kTooFewOccurrences, where + "/" + name,
               StrFormat("requires at least %d, found %d", occurs.min, count));
      } else if (!occurs.unbounded() && count > occurs.max) {
        Report(Violation::Kind::kTooManyOccurrences, where + "/" + name,
               StrFormat("allows at most %d, found %d", occurs.max, count));
      }
    }

    // Leaf value.
    if (decl.IsLeaf() ||
        declared_children.empty()) {  // element-content nodes skip text
      CheckValue(element.InnerText(), decl, where);
    }
  }

 private:
  void CheckValue(std::string_view text, const SchemaNode& decl,
                  const std::string& where) {
    if (decl.fixed_value().has_value() &&
        Trim(text) != std::string_view(*decl.fixed_value())) {
      Report(Violation::Kind::kFixedValueMismatch, where,
             "value '" + std::string(Trim(text)) + "' != fixed '" +
                 *decl.fixed_value() + "'");
      return;
    }
    if (!options_.check_types) return;
    std::string_view trimmed = Trim(text);
    if (trimmed.empty()) return;  // emptiness is an occurrence concern
    if (!ValueMatchesType(trimmed, decl.type())) {
      Report(Violation::Kind::kTypeMismatch, where,
             "value '" + std::string(trimmed) + "' does not conform to " +
                 std::string(TypeName(decl.type())));
    }
  }

  const ValidateOptions& options_;
  std::vector<Violation>* out_;
};

}  // namespace

std::vector<Violation> Validate(const xml::XmlDocument& doc,
                                const Schema& schema,
                                const ValidateOptions& options) {
  std::vector<Violation> violations;
  if (doc.root() == nullptr || schema.root() == nullptr) {
    violations.push_back({Violation::Kind::kWrongRoot, "/",
                          "document or schema has no root"});
    return violations;
  }
  if (doc.root()->LocalName() != schema.root()->label()) {
    // Built via += (not `"/" + std::string(...)`): GCC 12's -Wrestrict
    // false-positives on the rvalue operator+ overload at -O2 (PR105329).
    std::string root_path = "/";
    root_path += doc.root()->name();
    violations.push_back(
        {Violation::Kind::kWrongRoot, std::move(root_path),
         "expected root '" + schema.root()->label() + "'"});
    return violations;
  }
  std::string schema_root_path = "/";
  schema_root_path += schema.root()->label();
  Validator validator(options, &violations);
  validator.ValidateElement(*doc.root(), *schema.root(), schema_root_path);
  return violations;
}

}  // namespace qmatch::xsd
