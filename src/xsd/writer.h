#ifndef QMATCH_XSD_WRITER_H_
#define QMATCH_XSD_WRITER_H_

#include <string>

#include "xsd/schema.h"

namespace qmatch::xsd {

/// Options for schema-to-XSD serialization.
struct XsdWriteOptions {
  /// Spaces per indentation level.
  int indent = 2;
  /// Namespace prefix to bind to the XML Schema namespace.
  std::string prefix = "xs";
};

/// Serializes a schema tree back to XML Schema text.
///
/// The output uses inline anonymous complex types (the tree shape maps
/// 1:1 onto nested declarations), emits `minOccurs`/`maxOccurs`/`use`,
/// `nillable`, `default`/`fixed` and the compositor recorded on each node.
/// Unknown user types are written by their recorded `type_name`.
///
/// `ParseSchema(ToXsd(schema))` reconstructs a tree with identical paths,
/// types, occurrence constraints and compositors (verified by the
/// round-trip property tests).
std::string ToXsd(const Schema& schema, const XsdWriteOptions& options = {});

}  // namespace qmatch::xsd

#endif  // QMATCH_XSD_WRITER_H_
