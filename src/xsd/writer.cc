#include "xsd/writer.h"

#include "common/string_util.h"
#include "xml/dom.h"
#include "xml/writer.h"

namespace qmatch::xsd {

namespace {

/// Serializer state: the prefix and element factory helpers.
class XsdWriter {
 public:
  explicit XsdWriter(const XsdWriteOptions& options) : options_(options) {}

  std::unique_ptr<xml::XmlElement> Build(const Schema& schema) {
    auto root = Tag("schema");
    root->SetAttribute("xmlns:" + options_.prefix,
                       "http://www.w3.org/2001/XMLSchema");
    if (!schema.target_namespace().empty()) {
      root->SetAttribute("targetNamespace", schema.target_namespace());
    }
    if (schema.root() != nullptr) {
      root->AddChild(BuildElement(*schema.root()));
    }
    return root;
  }

 private:
  std::unique_ptr<xml::XmlElement> Tag(std::string_view local) {
    return std::make_unique<xml::XmlElement>(options_.prefix + ":" +
                                             std::string(local));
  }

  void EmitOccurs(const SchemaNode& node, xml::XmlElement* decl) {
    // Root elements carry no occurrence attributes.
    if (node.parent() == nullptr) return;
    if (node.occurs().min != 1) {
      decl->SetAttribute("minOccurs", StrFormat("%d", node.occurs().min));
    }
    if (node.occurs().unbounded()) {
      decl->SetAttribute("maxOccurs", "unbounded");
    } else if (node.occurs().max != 1) {
      decl->SetAttribute("maxOccurs", StrFormat("%d", node.occurs().max));
    }
  }

  void EmitValueFacets(const SchemaNode& node, xml::XmlElement* decl) {
    if (node.default_value().has_value()) {
      decl->SetAttribute("default", *node.default_value());
    }
    if (node.fixed_value().has_value()) {
      decl->SetAttribute("fixed", *node.fixed_value());
    }
  }

  std::string TypeAttribute(const SchemaNode& node) {
    if (node.type() == XsdType::kUnknown) {
      return node.type_name();  // user-defined name, unprefixed
    }
    return options_.prefix + ":" + std::string(TypeName(node.type()));
  }

  std::unique_ptr<xml::XmlElement> BuildAttribute(const SchemaNode& node) {
    auto decl = Tag("attribute");
    decl->SetAttribute("name", node.label());
    decl->SetAttribute("type", TypeAttribute(node));
    if (node.occurs().min >= 1) {
      decl->SetAttribute("use", "required");
    }
    EmitValueFacets(node, decl.get());
    return decl;
  }

  std::unique_ptr<xml::XmlElement> BuildElement(const SchemaNode& node) {
    auto decl = Tag("element");
    decl->SetAttribute("name", node.label());
    EmitOccurs(node, decl.get());
    if (node.nillable()) decl->SetAttribute("nillable", "true");
    EmitValueFacets(node, decl.get());

    if (node.IsLeaf()) {
      if (node.type() != XsdType::kAnyType) {
        decl->SetAttribute("type", TypeAttribute(node));
      }
      return decl;
    }

    // Inline anonymous complex type: compositor + element children, then
    // attribute children.
    auto complex_type = Tag("complexType");
    std::string_view compositor_tag;
    switch (node.compositor()) {
      case Compositor::kChoice:
        compositor_tag = "choice";
        break;
      case Compositor::kAll:
        compositor_tag = "all";
        break;
      case Compositor::kSequence:
      case Compositor::kNone:
        compositor_tag = "sequence";
        break;
    }
    auto compositor = Tag(compositor_tag);
    bool any_elements = false;
    for (const auto& child : node.children()) {
      if (child->kind() == NodeKind::kElement) {
        compositor->AddChild(BuildElement(*child));
        any_elements = true;
      }
    }
    if (any_elements) {
      complex_type->AddChild(std::move(compositor));
    }
    for (const auto& child : node.children()) {
      if (child->kind() == NodeKind::kAttribute) {
        complex_type->AddChild(BuildAttribute(*child));
      }
    }
    decl->AddChild(std::move(complex_type));
    return decl;
  }

  const XsdWriteOptions& options_;
};

}  // namespace

std::string ToXsd(const Schema& schema, const XsdWriteOptions& options) {
  XsdWriter writer(options);
  xml::XmlDocument doc;
  doc.set_root(writer.Build(schema));
  xml::WriteOptions xml_options;
  xml_options.indent = options.indent;
  return xml::ToString(doc, xml_options);
}

}  // namespace qmatch::xsd
