#include "xsd/stats.h"

#include <set>

#include "common/string_util.h"
#include "lingua/tokenize.h"

namespace qmatch::xsd {

SchemaStats ComputeStats(const Schema& schema) {
  SchemaStats stats;
  if (schema.root() == nullptr) return stats;

  std::set<std::string> tokens;
  size_t depth_sum = 0;
  size_t fanout_sum = 0;
  for (const SchemaNode* node : schema.AllNodes()) {
    ++stats.node_count;
    depth_sum += node->level();
    if (node->kind() == NodeKind::kElement) {
      ++stats.element_count;
    } else {
      ++stats.attribute_count;
    }
    if (node->IsLeaf()) {
      ++stats.leaf_count;
      ++stats.type_histogram[std::string(TypeName(node->type()))];
    } else {
      ++stats.inner_count;
      fanout_sum += node->child_count();
      stats.max_fanout = std::max(stats.max_fanout, node->child_count());
    }
    stats.max_depth = std::max(stats.max_depth, node->level());
    if (node->occurs().min == 0) ++stats.optional_count;
    if (node->occurs().unbounded() || node->occurs().max > 1) {
      ++stats.repeating_count;
    }
    for (const std::string& token : lingua::TokenizeLabel(node->label())) {
      tokens.insert(lingua::SingularizeToken(token));
    }
  }
  stats.average_depth =
      static_cast<double>(depth_sum) / static_cast<double>(stats.node_count);
  if (stats.inner_count > 0) {
    stats.average_fanout = static_cast<double>(fanout_sum) /
                           static_cast<double>(stats.inner_count);
  }
  stats.distinct_tokens = tokens.size();
  return stats;
}

std::string SchemaStats::ToString() const {
  std::string out = StrFormat(
      "nodes=%zu (elements=%zu, attributes=%zu) leaves=%zu inner=%zu\n"
      "depth: max=%zu avg=%.2f | fanout: max=%zu avg=%.2f\n"
      "optional=%zu repeating=%zu distinct_tokens=%zu\n",
      node_count, element_count, attribute_count, leaf_count, inner_count,
      max_depth, average_depth, max_fanout, average_fanout, optional_count,
      repeating_count, distinct_tokens);
  out += "types:";
  for (const auto& [name, count] : type_histogram) {
    out += StrFormat(" %s=%zu", name.c_str(), count);
  }
  out += '\n';
  return out;
}

}  // namespace qmatch::xsd
