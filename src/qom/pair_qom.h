#ifndef QMATCH_QOM_PAIR_QOM_H_
#define QMATCH_QOM_PAIR_QOM_H_

#include <string>

#include "qom/taxonomy.h"

namespace qmatch::qom {

/// Per-node-pair QoM decomposition: the quantitative score along each axis,
/// the qualitative classification of each axis, and the resulting taxonomy
/// category and weighted total (paper Sections 2-3).
///
/// Lives in the qom layer (not core) because it is the cell type of the
/// pairwise table that both table-fill implementations produce: the
/// node-at-a-time tree walk in core/qmatch and the structure-of-arrays
/// batch kernel in match/soa_kernel. `core::PairQoM` aliases this type, so
/// existing callers are unaffected.
struct PairQoM {
  double label = 0.0;
  double properties = 0.0;
  double level = 0.0;
  double children = 0.0;
  AxisMatch label_cls = AxisMatch::kNone;
  AxisMatch properties_cls = AxisMatch::kNone;
  AxisMatch level_cls = AxisMatch::kNone;
  Coverage coverage = Coverage::kNone;
  bool children_all_exact = false;
  MatchCategory category = MatchCategory::kNoMatch;
  /// Weighted total QoM (Eq. 1 / Eq. 6).
  double qom = 0.0;

  std::string ToString() const;
};

}  // namespace qmatch::qom

#endif  // QMATCH_QOM_PAIR_QOM_H_
