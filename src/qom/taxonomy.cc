#include "qom/taxonomy.h"

namespace qmatch::qom {

std::string_view AxisMatchName(AxisMatch m) {
  switch (m) {
    case AxisMatch::kNone:
      return "none";
    case AxisMatch::kRelaxed:
      return "relaxed";
    case AxisMatch::kExact:
      return "exact";
  }
  return "?";
}

std::string_view CoverageName(Coverage c) {
  switch (c) {
    case Coverage::kNone:
      return "none";
    case Coverage::kPartial:
      return "partial";
    case Coverage::kTotal:
      return "total";
  }
  return "?";
}

std::string_view MatchCategoryName(MatchCategory c) {
  switch (c) {
    case MatchCategory::kNoMatch:
      return "no match";
    case MatchCategory::kPartialRelaxed:
      return "partial relaxed";
    case MatchCategory::kPartialExact:
      return "partial exact";
    case MatchCategory::kTotalRelaxed:
      return "total relaxed";
    case MatchCategory::kTotalExact:
      return "total exact";
  }
  return "?";
}

MatchCategory Categorize(AxisMatch label, AxisMatch properties,
                         AxisMatch level, Coverage coverage,
                         bool children_all_exact) {
  // A pair with no label relationship and no child coverage is no match.
  if (label == AxisMatch::kNone && coverage == Coverage::kNone) {
    return MatchCategory::kNoMatch;
  }
  if (coverage == Coverage::kNone) {
    // Atomic axes agree to some degree but the structures share nothing.
    return MatchCategory::kNoMatch;
  }

  const bool atomic_all_exact = label == AxisMatch::kExact &&
                                properties == AxisMatch::kExact &&
                                level == AxisMatch::kExact;
  if (coverage == Coverage::kTotal) {
    return (atomic_all_exact && children_all_exact)
               ? MatchCategory::kTotalExact
               : MatchCategory::kTotalRelaxed;
  }
  // Partial coverage.
  return (atomic_all_exact && children_all_exact)
             ? MatchCategory::kPartialExact
             : MatchCategory::kPartialRelaxed;
}

int CategoryRank(MatchCategory c) { return static_cast<int>(c); }

}  // namespace qmatch::qom
