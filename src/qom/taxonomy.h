#ifndef QMATCH_QOM_TAXONOMY_H_
#define QMATCH_QOM_TAXONOMY_H_

#include <string_view>

namespace qmatch::qom {

/// Match level along an atomic-valued axis (label, properties, level).
/// Paper Section 2.1: exact / relaxed; for the level axis relaxed is
/// synonymous with no match.
enum class AxisMatch { kNone, kRelaxed, kExact };

/// Coverage along the set-valued children axis (Section 2.1): total = every
/// source child matches some target child; partial = some but not all;
/// none = no child matches (or the coverage is vacuous in a mixed
/// leaf/non-leaf comparison).
enum class Coverage { kNone, kPartial, kTotal };

/// The paper's XML match taxonomy (Section 2.2), ordered worst to best.
enum class MatchCategory {
  kNoMatch,
  kPartialRelaxed,
  kPartialExact,
  kTotalRelaxed,
  kTotalExact,
};

std::string_view AxisMatchName(AxisMatch m);
std::string_view CoverageName(Coverage c);
std::string_view MatchCategoryName(MatchCategory c);

/// Combines the three atomic axes and the children axis into a taxonomy
/// category, per Section 2.2:
///  - total exact: exact along label, properties and level AND a total
///    exact children match;
///  - total relaxed: total coverage, but one or more relaxed matches along
///    an atomic axis or among the children;
///  - partial exact: exact along all atomic axes, partial exact children;
///  - partial relaxed: partial coverage and/or relaxed matches;
///  - no match: label axis none, or no child coverage on a non-leaf pair.
///
/// `children_all_exact` states whether every matched child pair was itself
/// a total-exact match. For two leaves pass Coverage::kTotal and true
/// (leaves match exactly by default along the children axis).
MatchCategory Categorize(AxisMatch label, AxisMatch properties,
                         AxisMatch level, Coverage coverage,
                         bool children_all_exact);

/// Total order on categories for ranking ("a total exact is clearly a
/// better match", Section 3). Higher is better.
int CategoryRank(MatchCategory c);

}  // namespace qmatch::qom

#endif  // QMATCH_QOM_TAXONOMY_H_
