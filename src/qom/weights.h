#ifndef QMATCH_QOM_WEIGHTS_H_
#define QMATCH_QOM_WEIGHTS_H_

#include <string>

#include "common/status.h"

namespace qmatch::qom {

/// The per-axis weights of the quantitative match model (paper Eq. 1):
///
///   QoM(n1,n2) = WL·QoM_L + WP·QoM_P + WH·QoM_H + WC·QoM_C
///
/// Defaults are the paper's chosen values (Table 2). Weights must be
/// non-negative and sum to 1 so the highest classification (total exact)
/// yields QoM = 1.
struct Weights {
  double label = 0.3;
  double properties = 0.2;
  double level = 0.1;
  double children = 0.4;

  double Sum() const { return label + properties + level + children; }

  /// OK iff all weights are in [0,1] and sum to 1 (within 1e-9).
  Status Validate() const;

  /// Returns a copy scaled so the weights sum to 1. Weights summing to 0
  /// are returned unchanged.
  Weights Normalized() const;

  std::string ToString() const;

  friend bool operator==(const Weights& a, const Weights& b) {
    return a.label == b.label && a.properties == b.properties &&
           a.level == b.level && a.children == b.children;
  }
};

/// Table 2 of the paper: label 0.3, properties 0.2, level 0.1, children 0.4.
inline constexpr Weights kPaperWeights{0.3, 0.2, 0.1, 0.4};

/// Equal weighting across the four axes (ablation baseline).
inline constexpr Weights kUniformWeights{0.25, 0.25, 0.25, 0.25};

}  // namespace qmatch::qom

#endif  // QMATCH_QOM_WEIGHTS_H_
