#include "qom/weights.h"

#include <cmath>

#include "common/string_util.h"

namespace qmatch::qom {

Status Weights::Validate() const {
  for (double w : {label, properties, level, children}) {
    if (w < 0.0 || w > 1.0 || std::isnan(w)) {
      return Status::InvalidArgument(
          "axis weights must lie in [0, 1], got " + ToString());
    }
  }
  if (std::abs(Sum() - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        StrFormat("axis weights must sum to 1, got %.6f (%s)", Sum(),
                  ToString().c_str()));
  }
  return Status::OK();
}

Weights Weights::Normalized() const {
  double sum = Sum();
  if (sum <= 0.0) return *this;
  return Weights{label / sum, properties / sum, level / sum, children / sum};
}

std::string Weights::ToString() const {
  return StrFormat("{L=%.3f, P=%.3f, H=%.3f, C=%.3f}", label, properties,
                   level, children);
}

}  // namespace qmatch::qom
