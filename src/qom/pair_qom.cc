#include "qom/pair_qom.h"

#include "common/string_util.h"

namespace qmatch::qom {

std::string PairQoM::ToString() const {
  return StrFormat(
      "QoM=%.4f [%s] (L=%.3f/%s, P=%.3f/%s, H=%.3f/%s, C=%.3f/%s%s)", qom,
      std::string(MatchCategoryName(category)).c_str(), label,
      std::string(AxisMatchName(label_cls)).c_str(), properties,
      std::string(AxisMatchName(properties_cls)).c_str(), level,
      std::string(AxisMatchName(level_cls)).c_str(), children,
      std::string(CoverageName(coverage)).c_str(),
      children_all_exact ? " all-exact" : "");
}

}  // namespace qmatch::qom
