#ifndef QMATCH_MATCH_ASSIGNMENT_H_
#define QMATCH_MATCH_ASSIGNMENT_H_

#include <functional>
#include <string_view>
#include <vector>

#include "match/matcher.h"

namespace qmatch::match {

/// Mapping-extraction strategy: how node correspondences are selected from
/// the pairwise score table.
enum class AssignmentStrategy {
  /// Each source maps to its best target independently (the default; a
  /// target may be claimed by several sources — matches the paper's
  /// evaluation, where P is per-source).
  kBestPerSource,
  /// Greedy global 1:1 matching: repeatedly take the highest-scoring
  /// unclaimed pair. Guarantees an injective mapping.
  kGreedyGlobal,
  /// Gale-Shapley stable marriage on the score-induced preferences
  /// (sources propose). Also injective; stable w.r.t. the scores.
  kStableMarriage,
};

std::string_view AssignmentStrategyName(AssignmentStrategy s);

/// Inputs to correspondence selection: the node lists, a score oracle, a
/// predicate marking pairs eligible for reporting (e.g. the label-evidence
/// gate), the acceptance threshold and the ambiguity margin (only used by
/// kBestPerSource; the 1:1 strategies resolve ties by taking pairs in
/// descending score order).
struct AssignmentInput {
  const std::vector<const xsd::SchemaNode*>* sources = nullptr;
  const std::vector<const xsd::SchemaNode*>* targets = nullptr;
  std::function<double(size_t, size_t)> score;
  std::function<bool(size_t, size_t)> eligible;  // may be null (= all)
  double threshold = 0.5;
  double ambiguity_margin = 0.02;
};

/// Selects correspondences per the strategy. Scores below `threshold`
/// never produce a correspondence under any strategy.
std::vector<Correspondence> SelectCorrespondences(const AssignmentInput& input,
                                                  AssignmentStrategy strategy);

/// Convenience: selection over a similarity matrix.
std::vector<Correspondence> SelectFromMatrix(
    const SimilarityMatrix& matrix, double threshold, double ambiguity_margin,
    AssignmentStrategy strategy = AssignmentStrategy::kBestPerSource,
    std::function<bool(size_t, size_t)> eligible = nullptr);

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_ASSIGNMENT_H_
