#ifndef QMATCH_MATCH_STRUCTURAL_MATCHER_H_
#define QMATCH_MATCH_STRUCTURAL_MATCHER_H_

#include "match/matcher.h"

namespace qmatch::match {

/// The pure structural baseline of Section 5, modelled on CUPID's
/// structural phase with the linguistic seeding removed.
///
/// Leaves are compared by their intrinsic structure — node kind, datatype
/// (on the XSD lattice) and occurrence constraints — and two leaves whose
/// similarity clears `leaf_link_threshold` are *strongly linked*. An inner
/// node pair's similarity is the Dice coefficient of strongly linked leaf
/// pairs across their subtrees, blended with local shape features (child
/// count and subtree height). Labels are never consulted, so the matcher
/// scores high on structurally identical but linguistically disjoint
/// schemas (paper Figure 9) and low on the reverse.
class StructuralMatcher : public Matcher {
 public:
  struct Options {
    /// Correspondence cut-off on the pair similarity.
    double threshold = 0.5;
    /// Leaf-pair similarity required to create a strong link. Set above
    /// the 0.7 baseline that same-kind/same-occurs leaves of unrelated
    /// types score, so links carry type evidence.
    double leaf_link_threshold = 0.75;
    /// Suppress a mapping when the runner-up target scores within this
    /// margin of the best (ambiguity, endemic to label-blind matching).
    double ambiguity_margin = 0.02;
    /// Weight of the subtree (leaf-link) component vs local shape features.
    double subtree_weight = 0.75;
  };

  StructuralMatcher() : StructuralMatcher(Options()) {}
  explicit StructuralMatcher(Options options) : options_(options) {}

  std::string_view name() const override { return "structural"; }

  MatchResult Match(const xsd::Schema& source,
                    const xsd::Schema& target) const override;

  /// Pure structural pair similarity (leaf links + local shape blend).
  SimilarityMatrix Similarity(const xsd::Schema& source,
                              const xsd::Schema& target) const override;

  /// Structural similarity of two leaf nodes in [0,1] (exposed for tests):
  /// 0.5·type + 0.25·kind + 0.25·occurs component.
  static double LeafSimilarity(const xsd::SchemaNode& s,
                               const xsd::SchemaNode& t);

 private:
  Options options_;
};

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_STRUCTURAL_MATCHER_H_
