#include "match/cupid_matcher.h"

#include "match/assignment.h"

#include <algorithm>
#include <map>
#include <vector>

#include "lingua/name_match.h"
#include "match/structural_matcher.h"

namespace qmatch::match {

namespace {

/// Flattened view of a schema with the per-node data the passes need.
struct TreeView {
  std::vector<const xsd::SchemaNode*> nodes;  // preorder
  std::map<const xsd::SchemaNode*, size_t> index_of;
  std::vector<int64_t> leaf_count;
  std::vector<std::string> labels;

  explicit TreeView(const xsd::Schema& schema) {
    nodes = schema.AllNodes();
    leaf_count.assign(nodes.size(), 0);
    labels.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      index_of[nodes[i]] = i;
      labels.push_back(nodes[i]->label());
    }
    for (size_t i = nodes.size(); i-- > 0;) {
      if (nodes[i]->IsLeaf()) {
        leaf_count[i] = 1;
      } else {
        for (const auto& child : nodes[i]->children()) {
          leaf_count[i] += leaf_count[index_of.at(child.get())];
        }
      }
    }
  }
};

}  // namespace

SimilarityMatrix CupidMatcher::Similarity(const xsd::Schema& source,
                                          const xsd::Schema& target) const {
  if (source.root() == nullptr || target.root() == nullptr) {
    return SimilarityMatrix(source, target);
  }

  TreeView src(source);
  TreeView tgt(target);
  const size_t n = src.nodes.size();
  const size_t m = tgt.nodes.size();

  // Phase 1: linguistic similarity for every pair.
  lingua::NameMatcher name_matcher(thesaurus_);
  lingua::PairwiseLabelScorer scorer(name_matcher, src.labels, tgt.labels);
  std::vector<double> lsim(n * m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      lingua::LabelMatch lm = scorer.Match(i, j);
      lsim[i * m + j] =
          lm.cls == lingua::LabelMatchClass::kNone ? 0.0 : lm.score;
    }
  }

  // Leaf wsim (datatype compatibility blended with lsim), then the
  // structural pass. `compute` runs the bottom-up recurrences given the
  // current leaf wsim values and returns the full wsim table.
  std::vector<double> leaf_wsim(n * m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (!src.nodes[i]->IsLeaf()) continue;
    for (size_t j = 0; j < m; ++j) {
      if (!tgt.nodes[j]->IsLeaf()) continue;
      double type_sim =
          StructuralMatcher::LeafSimilarity(*src.nodes[i], *tgt.nodes[j]);
      leaf_wsim[i * m + j] = options_.wstruct * type_sim +
                             (1.0 - options_.wstruct) * lsim[i * m + j];
    }
  }

  std::vector<int64_t> linked_src(n * m);
  std::vector<int64_t> linked_tgt(n * m);
  std::vector<double> wsim(n * m, 0.0);

  auto compute = [&]() {
    std::fill(linked_src.begin(), linked_src.end(), 0);
    std::fill(linked_tgt.begin(), linked_tgt.end(), 0);
    for (size_t i = n; i-- > 0;) {
      const xsd::SchemaNode* s = src.nodes[i];
      for (size_t j = m; j-- > 0;) {
        const xsd::SchemaNode* t = tgt.nodes[j];
        const size_t at = i * m + j;
        if (s->IsLeaf() && t->IsLeaf()) {
          int64_t linked = leaf_wsim[at] >= options_.th_accept ? 1 : 0;
          linked_src[at] = linked;
          linked_tgt[at] = linked;
          wsim[at] = leaf_wsim[at];
          continue;
        }
        if (s->IsLeaf()) {
          int64_t any = 0;
          int64_t sum = 0;
          for (const auto& tc : t->children()) {
            size_t cj = i * m + tgt.index_of.at(tc.get());
            any |= linked_src[cj] > 0 ? 1 : 0;
            sum += linked_tgt[cj];
          }
          linked_src[at] = any;
          linked_tgt[at] = sum;
        } else if (t->IsLeaf()) {
          int64_t any = 0;
          int64_t sum = 0;
          for (const auto& sc : s->children()) {
            size_t ci = src.index_of.at(sc.get()) * m + j;
            any |= linked_tgt[ci] > 0 ? 1 : 0;
            sum += linked_src[ci];
          }
          linked_tgt[at] = any;
          linked_src[at] = sum;
        } else {
          int64_t src_sum = 0;
          for (const auto& sc : s->children()) {
            src_sum += linked_src[src.index_of.at(sc.get()) * m + j];
          }
          linked_src[at] = src_sum;
          int64_t tgt_sum = 0;
          for (const auto& tc : t->children()) {
            tgt_sum += linked_tgt[i * m + tgt.index_of.at(tc.get())];
          }
          linked_tgt[at] = tgt_sum;
        }
        double denominator =
            static_cast<double>(src.leaf_count[i] + tgt.leaf_count[j]);
        double ssim = denominator > 0.0
                          ? static_cast<double>(linked_src[at] +
                                                linked_tgt[at]) /
                                denominator
                          : 0.0;
        wsim[at] = options_.wstruct * ssim +
                   (1.0 - options_.wstruct) * lsim[at];
      }
    }
  };

  compute();

  // Mutual reinforcement: leaves under highly similar inner pairs get a
  // boost, then one recompute (the original CUPID iterates). Skipped for
  // very large pair tables, where the leaf-pair sweep would dominate the
  // whole match (CUPID was never run at protein scale in the paper).
  if (n * m <= 100'000) {
    // Collect the leaf index sets per subtree once.
    auto leaves_under = [](const TreeView& view, size_t root_index) {
      std::vector<size_t> out;
      std::vector<const xsd::SchemaNode*> stack = {view.nodes[root_index]};
      while (!stack.empty()) {
        const xsd::SchemaNode* node = stack.back();
        stack.pop_back();
        if (node->IsLeaf()) {
          out.push_back(view.index_of.at(node));
          continue;
        }
        for (const auto& child : node->children()) {
          stack.push_back(child.get());
        }
      }
      return out;
    };
    // Each leaf pair receives the increment at most once, no matter how
    // many similar ancestor pairs cover it (nested high-wsim subtrees
    // would otherwise compound the boost).
    std::vector<bool> boosted(n * m, false);
    bool any_boost = false;
    for (size_t i = 0; i < n; ++i) {
      if (src.nodes[i]->IsLeaf()) continue;
      for (size_t j = 0; j < m; ++j) {
        if (tgt.nodes[j]->IsLeaf()) continue;
        if (wsim[i * m + j] < options_.th_high) continue;
        for (size_t li : leaves_under(src, i)) {
          for (size_t lj : leaves_under(tgt, j)) {
            double& value = leaf_wsim[li * m + lj];
            if (value > 0.0 && !boosted[li * m + lj]) {
              boosted[li * m + lj] = true;
              value = std::min(1.0, value + options_.c_inc);
              any_boost = true;
            }
          }
        }
      }
    }
    if (any_boost) compute();
  }

  SimilarityMatrix matrix(src.nodes, tgt.nodes);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      matrix.set(i, j, wsim[i * m + j]);
    }
  }
  return matrix;
}

MatchResult CupidMatcher::Match(const xsd::Schema& source,
                                const xsd::Schema& target) const {
  MatchResult result;
  result.algorithm = std::string(name());
  if (source.root() == nullptr || target.root() == nullptr) return result;

  SimilarityMatrix matrix = Similarity(source, target);
  result.correspondences = SelectFromMatrix(matrix, options_.th_accept,
                                            options_.ambiguity_margin);
  result.schema_qom = matrix.MeanBestPerSource();
  return result;
}

}  // namespace qmatch::match
