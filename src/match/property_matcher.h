#ifndef QMATCH_MATCH_PROPERTY_MATCHER_H_
#define QMATCH_MATCH_PROPERTY_MATCHER_H_

#include <string>
#include <string_view>
#include <vector>

#include "xsd/schema.h"

namespace qmatch::match {

/// Qualitative match level of the properties axis (paper Section 2.1):
/// exact = every constituent property matches exactly; relaxed = the
/// consensus of the per-property matches is relaxed (generalization /
/// specialization); none = properties conflict.
enum class PropertyMatchClass { kNone, kRelaxed, kExact };

std::string_view PropertyMatchClassName(PropertyMatchClass c);

/// Per-property verdict, exposed for diagnostics and tests.
struct PropertyVerdict {
  std::string property;         // "type", "order", "minOccurs", ...
  PropertyMatchClass cls = PropertyMatchClass::kNone;
};

/// The properties-axis result: class plus the quantitative QoM_P in [0,1]
/// (exact properties score 1, relaxed 1/2, conflicting 0; averaged).
struct PropertyMatch {
  PropertyMatchClass cls = PropertyMatchClass::kNone;
  double score = 0.0;
  std::vector<PropertyVerdict> verdicts;
};

/// Which properties participate in the comparison.
struct PropertyMatchOptions {
  bool compare_kind = true;      // element vs attribute
  bool compare_type = true;
  bool compare_order = true;     // sibling position, when order is semantic
  bool compare_occurs = true;    // minOccurs / maxOccurs
  bool compare_nillable = false; // off by default: rarely set in practice
  double relaxed_credit = 0.5;   // score contribution of a relaxed property
};

/// Compares the property sets of two schema nodes per the paper's rules
/// (and the fuller property list of [Hegde'04]):
///  - type: equal -> exact; generalization/specialization or same numeric
///    family on the XSD type lattice -> relaxed; unrelated -> none.
///  - order: only significant when both parents are <sequence>; equal
///    positions -> exact, different -> relaxed (never a hard conflict).
///  - minOccurs/maxOccurs: equal -> exact; otherwise relaxed (e.g.
///    minOccurs=0 generalizes minOccurs=1, unbounded generalizes bounded).
///  - kind: element vs attribute mismatch -> relaxed.
/// The axis is exact iff all compared properties are exact; none only when
/// a majority-weighted score falls below the relaxed consensus.
PropertyMatch MatchProperties(const xsd::SchemaNode& source,
                              const xsd::SchemaNode& target,
                              const PropertyMatchOptions& options = {});

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_PROPERTY_MATCHER_H_
