#ifndef QMATCH_MATCH_CUPID_MATCHER_H_
#define QMATCH_MATCH_CUPID_MATCHER_H_

#include "lingua/thesaurus.h"
#include "match/matcher.h"

namespace qmatch::match {

/// CUPID (Madhavan, Bernstein, Rahm — VLDB'01), the hybrid matcher the
/// paper names as its primary comparison target ("our current ongoing work
/// is focused on evaluating ... QMatch with other hybrid and composite
/// algorithms such as CUPID and COMA").
///
/// Two phases over the schema trees:
///  1. *linguistic*: name similarity `lsim` for every node pair (the same
///     thesaurus-backed CUPID-style name matcher QMatch uses);
///  2. *structural*: bottom-up weighted similarity
///        wsim = wstruct · ssim + (1 − wstruct) · lsim
///     where leaf `ssim` is datatype compatibility and inner `ssim` is the
///     fraction of leaves in the two subtrees that are *strongly linked*
///     (leaf pairs whose wsim ≥ th_accept), followed by CUPID's mutual
///     reinforcement: leaves under inner pairs with wsim ≥ th_high have
///     their wsim incremented by c_inc (one adjustment pass, then a
///     recompute — the original iterates to fixpoint).
///
/// Mappings are the best target per source with wsim ≥ th_accept.
class CupidMatcher : public Matcher {
 public:
  struct Options {
    /// Weight of the structural component in wsim.
    double wstruct = 0.5;
    /// Strong-link / mapping-acceptance threshold.
    double th_accept = 0.6;
    /// Inner-pair wsim above which descendant leaves are reinforced.
    double th_high = 0.75;
    /// Reinforcement increment.
    double c_inc = 0.1;
    /// Suppress near-tie mappings (see the other matchers).
    double ambiguity_margin = 0.02;
  };

  CupidMatcher() : CupidMatcher(nullptr, Options()) {}
  explicit CupidMatcher(const lingua::Thesaurus* thesaurus)
      : CupidMatcher(thesaurus, Options()) {}
  /// `thesaurus` is borrowed (may be null) and must outlive the matcher.
  CupidMatcher(const lingua::Thesaurus* thesaurus, Options options)
      : thesaurus_(thesaurus), options_(options) {}

  std::string_view name() const override { return "cupid"; }

  MatchResult Match(const xsd::Schema& source,
                    const xsd::Schema& target) const override;

  /// The wsim matrix (after the reinforcement pass).
  SimilarityMatrix Similarity(const xsd::Schema& source,
                              const xsd::Schema& target) const override;

 private:
  const lingua::Thesaurus* thesaurus_;
  Options options_;
};

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_CUPID_MATCHER_H_
