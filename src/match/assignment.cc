#include "match/assignment.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace qmatch::match {

std::string_view AssignmentStrategyName(AssignmentStrategy s) {
  switch (s) {
    case AssignmentStrategy::kBestPerSource:
      return "best-per-source";
    case AssignmentStrategy::kGreedyGlobal:
      return "greedy-global";
    case AssignmentStrategy::kStableMarriage:
      return "stable-marriage";
  }
  return "?";
}

namespace {

bool Eligible(const AssignmentInput& input, size_t i, size_t j) {
  return !input.eligible || input.eligible(i, j);
}

std::vector<Correspondence> BestPerSource(const AssignmentInput& input) {
  std::vector<Correspondence> out;
  const size_t n = input.sources->size();
  const size_t m = input.targets->size();
  for (size_t i = 0; i < n; ++i) {
    double best = 0.0;
    double runner_up = 0.0;
    size_t best_j = m;
    for (size_t j = 0; j < m; ++j) {
      if (!Eligible(input, i, j)) continue;
      double score = input.score(i, j);
      if (score > best) {
        runner_up = best;
        best = score;
        best_j = j;
      } else if (score > runner_up) {
        runner_up = score;
      }
    }
    if (best_j < m && best >= input.threshold &&
        best - runner_up > input.ambiguity_margin) {
      out.push_back({(*input.sources)[i], (*input.targets)[best_j], best});
    }
  }
  return out;
}

struct ScoredPair {
  double score;
  size_t i;
  size_t j;
};

std::vector<ScoredPair> EligiblePairsAboveThreshold(
    const AssignmentInput& input) {
  std::vector<ScoredPair> pairs;
  for (size_t i = 0; i < input.sources->size(); ++i) {
    for (size_t j = 0; j < input.targets->size(); ++j) {
      if (!Eligible(input, i, j)) continue;
      double score = input.score(i, j);
      if (score >= input.threshold) pairs.push_back({score, i, j});
    }
  }
  return pairs;
}

std::vector<Correspondence> GreedyGlobal(const AssignmentInput& input) {
  std::vector<ScoredPair> pairs = EligiblePairsAboveThreshold(input);
  std::sort(pairs.begin(), pairs.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.i != b.i) return a.i < b.i;  // deterministic tie-break
              return a.j < b.j;
            });
  std::vector<bool> source_used(input.sources->size(), false);
  std::vector<bool> target_used(input.targets->size(), false);
  std::vector<Correspondence> out;
  for (const ScoredPair& pair : pairs) {
    if (source_used[pair.i] || target_used[pair.j]) continue;
    source_used[pair.i] = true;
    target_used[pair.j] = true;
    out.push_back({(*input.sources)[pair.i], (*input.targets)[pair.j],
                   pair.score});
  }
  return out;
}

std::vector<Correspondence> StableMarriage(const AssignmentInput& input) {
  const size_t n = input.sources->size();
  const size_t m = input.targets->size();
  // Preference lists: eligible targets above threshold, best first.
  std::vector<std::vector<ScoredPair>> preferences(n);
  for (const ScoredPair& pair : EligiblePairsAboveThreshold(input)) {
    preferences[pair.i].push_back(pair);
  }
  for (auto& row : preferences) {
    std::sort(row.begin(), row.end(),
              [](const ScoredPair& a, const ScoredPair& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.j < b.j;
              });
  }

  std::vector<size_t> next_proposal(n, 0);
  std::vector<size_t> engaged_to(m, n);  // n = free
  std::vector<double> engaged_score(m, -1.0);
  std::queue<size_t> free_sources;
  for (size_t i = 0; i < n; ++i) free_sources.push(i);

  while (!free_sources.empty()) {
    size_t i = free_sources.front();
    free_sources.pop();
    if (next_proposal[i] >= preferences[i].size()) continue;  // exhausted
    const ScoredPair& proposal = preferences[i][next_proposal[i]++];
    size_t j = proposal.j;
    if (engaged_to[j] == n) {
      engaged_to[j] = i;
      engaged_score[j] = proposal.score;
    } else if (proposal.score > engaged_score[j]) {
      free_sources.push(engaged_to[j]);
      engaged_to[j] = i;
      engaged_score[j] = proposal.score;
    } else {
      free_sources.push(i);
    }
  }

  std::vector<Correspondence> out;
  for (size_t j = 0; j < m; ++j) {
    if (engaged_to[j] == n) continue;
    out.push_back({(*input.sources)[engaged_to[j]], (*input.targets)[j],
                   engaged_score[j]});
  }
  // Stable output order: by source preorder position.
  std::sort(out.begin(), out.end(),
            [&](const Correspondence& a, const Correspondence& b) {
              return a.source->Path() < b.source->Path();
            });
  return out;
}

}  // namespace

std::vector<Correspondence> SelectCorrespondences(const AssignmentInput& input,
                                                  AssignmentStrategy strategy) {
  QMATCH_CHECK(input.sources != nullptr && input.targets != nullptr &&
               input.score != nullptr);
  switch (strategy) {
    case AssignmentStrategy::kBestPerSource:
      return BestPerSource(input);
    case AssignmentStrategy::kGreedyGlobal:
      return GreedyGlobal(input);
    case AssignmentStrategy::kStableMarriage:
      return StableMarriage(input);
  }
  return {};
}

std::vector<Correspondence> SelectFromMatrix(
    const SimilarityMatrix& matrix, double threshold, double ambiguity_margin,
    AssignmentStrategy strategy,
    std::function<bool(size_t, size_t)> eligible) {
  AssignmentInput input;
  input.sources = &matrix.sources();
  input.targets = &matrix.targets();
  input.score = [&matrix](size_t i, size_t j) { return matrix.at(i, j); };
  input.eligible = std::move(eligible);
  input.threshold = threshold;
  input.ambiguity_margin = ambiguity_margin;
  return SelectCorrespondences(input, strategy);
}

}  // namespace qmatch::match
