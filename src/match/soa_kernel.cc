#include "match/soa_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "fault/failpoint.h"
#include "obs/obs.h"
#include "qom/taxonomy.h"

namespace qmatch::match {

std::string_view KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kTree:
      return "tree";
    case KernelKind::kSoa:
      return "soa";
  }
  return "?";
}

KernelKind DefaultKernel() {
  const char* env = std::getenv("QMATCH_KERNEL");
  if (env != nullptr) {
    const std::string_view value(env);
    if (value == "tree") return KernelKind::kTree;
    if (value == "soa") return KernelKind::kSoa;
  }
  return KernelKind::kSoa;
}

namespace {

// The same class mappings the tree walk applies (core/qmatch.cc); the
// numeric encoding in the uint8 matrices is the qom::AxisMatch enum value.
uint8_t ToAxisByte(lingua::LabelMatchClass cls) {
  switch (cls) {
    case lingua::LabelMatchClass::kExact:
      return static_cast<uint8_t>(qom::AxisMatch::kExact);
    case lingua::LabelMatchClass::kRelaxed:
      return static_cast<uint8_t>(qom::AxisMatch::kRelaxed);
    case lingua::LabelMatchClass::kNone:
      return static_cast<uint8_t>(qom::AxisMatch::kNone);
  }
  return static_cast<uint8_t>(qom::AxisMatch::kNone);
}

uint8_t ToAxisByte(PropertyMatchClass cls) {
  switch (cls) {
    case PropertyMatchClass::kExact:
      return static_cast<uint8_t>(qom::AxisMatch::kExact);
    case PropertyMatchClass::kRelaxed:
      return static_cast<uint8_t>(qom::AxisMatch::kRelaxed);
    case PropertyMatchClass::kNone:
      return static_cast<uint8_t>(qom::AxisMatch::kNone);
  }
  return static_cast<uint8_t>(qom::AxisMatch::kNone);
}

constexpr uint8_t kTotalExactByte =
    static_cast<uint8_t>(qom::MatchCategory::kTotalExact);

}  // namespace

SoaKernelResult SoaFillTable(const xsd::FlatSchema& source,
                             const xsd::FlatSchema& target,
                             const SoaKernelConfig& config,
                             qom::PairQoM* table, std::vector<char>& row_done,
                             ThreadPool* pool, const ExecControl* control,
                             Arena* arena) {
  SoaKernelResult out;
  const size_t n = source.size();
  const size_t m = target.size();
  if (n == 0 || m == 0) return out;

  // ---- precompute stage -------------------------------------------------
  // Everything below runs on the coordinating thread: the arena is not
  // thread-safe, so all scratch is carved out before rows fan out.

  // Label-axis matrix over *distinct* labels. The stored score is already
  // gated the way the tree walk gates it (0.0 when the class is kNone).
  const size_t nl = source.labels.size();
  const size_t ml = target.labels.size();
  double* label_score = arena->MakeArray<double>(nl * ml);
  uint8_t* label_cls = arena->MakeArray<uint8_t>(nl * ml);
  lingua::PairwiseLabelScorer scorer(*config.name_matcher, source.labels,
                                     target.labels);
  auto fill_label_row = [&](size_t a) {
    double* score_row = label_score + a * ml;
    uint8_t* cls_row = label_cls + a * ml;
    for (size_t b = 0; b < ml; ++b) {
      const lingua::LabelMatch lm = scorer.Match(a, b);
      score_row[b] = lm.cls == lingua::LabelMatchClass::kNone ? 0.0 : lm.score;
      cls_row[b] = ToAxisByte(lm.cls);
    }
  };
  if (pool != nullptr && pool->worker_count() > 0 && nl * ml >= 4096) {
    // Each cell is a pure function of its label pair, so a parallel fill
    // is bit-identical to the sequential one for any worker count.
    scorer.Precompute();
    pool->ParallelFor(nl, fill_label_row);
  } else {
    for (size_t a = 0; a < nl; ++a) fill_label_row(a);
  }

  // Property-axis matrix over distinct packed descriptors, evaluated on
  // representative nodes (the descriptor captures every field the matcher
  // reads, so any representative gives the pair's exact value).
  const size_t np = source.prop_keys.size();
  const size_t mp = target.prop_keys.size();
  double* prop_score = arena->MakeArray<double>(np * mp);
  uint8_t* prop_cls = arena->MakeArray<uint8_t>(np * mp);
  for (size_t p = 0; p < np; ++p) {
    const xsd::SchemaNode& rep = *source.nodes[source.prop_rep[p]];
    for (size_t q = 0; q < mp; ++q) {
      const PropertyMatch pm = MatchProperties(
          rep, *target.nodes[target.prop_rep[q]], config.property_options);
      prop_score[p * mp + q] = pm.score;
      prop_cls[p * mp + q] = ToAxisByte(pm.cls);
    }
  }

  // Level-axis matrix over distinct (source level, target level) pairs —
  // identical arithmetic to the tree walk's per-pair branch.
  const size_t nlev = static_cast<size_t>(source.max_level) + 1;
  const size_t mlev = static_cast<size_t>(target.max_level) + 1;
  double* level_score = arena->MakeArray<double>(nlev * mlev);
  uint8_t* level_cls = arena->MakeArray<uint8_t>(nlev * mlev);
  for (size_t a = 0; a < nlev; ++a) {
    for (size_t b = 0; b < mlev; ++b) {
      double score = 0.0;
      uint8_t cls = static_cast<uint8_t>(qom::AxisMatch::kNone);
      if (a == b) {
        score = 1.0;
        cls = static_cast<uint8_t>(qom::AxisMatch::kExact);
      } else if (config.level_graded) {
        const double gap = static_cast<double>(a > b ? a - b : b - a);
        score = 1.0 / (1.0 + gap);
      }
      level_score[a * mlev + b] = score;
      level_cls[a * mlev + b] = cls;
    }
  }

  // Effective-leaf flags (IsLeaf, or at/below the capped-depth rung's cap).
  auto leaf_flags = [&](const xsd::FlatSchema& flat) {
    uint8_t* flags = arena->MakeArray<uint8_t>(flat.size());
    for (size_t i = 0; i < flat.size(); ++i) {
      const bool leaf = flat.child_begin[i] == flat.child_begin[i + 1];
      const bool capped =
          config.capped &&
          static_cast<size_t>(flat.level[i]) >= config.children_depth_cap;
      flags[i] = (leaf || capped) ? 1 : 0;
    }
    return flags;
  };
  const uint8_t* source_leaf = leaf_flags(source);
  const uint8_t* target_leaf = leaf_flags(target);

  // SoA copies of the two table fields the children axis reads back, so
  // the child loops stream 8+1 bytes per cell instead of striding through
  // sizeof(PairQoM) AoS cells.
  double* qom_col = arena->MakeArray<double>(n * m);
  uint8_t* cat_col = arena->MakeArray<uint8_t>(n * m);

  // ---- cooperative stop (same latch protocol as the tree walk) ----------
  const bool controlled = control != nullptr && control->active();
  std::atomic<int> stop{0};  // 0 = running, else static_cast<int>(StopReason)
  auto should_stop = [&]() -> bool {
    if (!controlled) return false;
    if (stop.load(std::memory_order_relaxed) != 0) return true;
    const StopReason reason = control->Check();
    if (reason == StopReason::kNone) return false;
    int expected = 0;
    stop.compare_exchange_strong(expected, static_cast<int>(reason),
                                 std::memory_order_relaxed);
    return true;
  };

  // ---- row fill ----------------------------------------------------------
  // One source row, as columnar passes: children, label, properties,
  // level, then a combine pass that commits qom/category, polls the stop
  // latch and hits the `treematch.pair` failpoint once per pair. Returns
  // false when the fill stopped before the row completed.
  const qom::Weights w = config.weights;
  auto fill_row = [&](size_t i) -> bool {
    qom::PairQoM* row = table + i * m;
#if QMATCH_OBS_ENABLED
    uint64_t memo_lookups = 0;
    uint64_t contributing = 0;
    uint64_t mark = obs::MonotonicNowNs();
    auto lap = [&mark]() {
      const uint64_t now = obs::MonotonicNowNs();
      const uint64_t spent = now - mark;
      mark = now;
      return spent;
    };
#endif

    // --- Children axis (Eq. 3-5) ---------------------------------------
    if (config.label_only) {
      for (size_t j = 0; j < m; ++j) {
        row[j].children = 0.0;
        row[j].coverage = qom::Coverage::kNone;
        row[j].children_all_exact = false;
      }
    } else if (source_leaf[i] != 0) {
      for (size_t j = 0; j < m; ++j) {
        if (target_leaf[j] != 0) {
          row[j].children = 1.0;
          row[j].coverage = qom::Coverage::kTotal;
          row[j].children_all_exact = true;
        } else {
          row[j].children = config.leaf_to_inner_children_credit;
          row[j].coverage = qom::Coverage::kTotal;
          row[j].children_all_exact = false;
        }
      }
    } else {
      const size_t cb = source.child_begin[i];
      const size_t ce = source.child_begin[i + 1];
      const double child_total = static_cast<double>(ce - cb);
      for (size_t j = 0; j < m; ++j) {
        if (target_leaf[j] != 0) {
          row[j].children = 0.0;
          row[j].coverage = qom::Coverage::kNone;
          row[j].children_all_exact = false;
          continue;
        }
        const size_t tb = target.child_begin[j];
        const size_t te = target.child_begin[j + 1];
        double qom_sum = 0.0;
        double matched = 0.0;
        bool all_exact = true;
        QMATCH_OBS_ONLY(memo_lookups += uint64_t{ce - cb} * (te - tb);)
        if (config.best_match_accumulation) {
          for (size_t sc = cb; sc < ce; ++sc) {
            const double* child_row =
                qom_col + static_cast<size_t>(source.child_index[sc]) * m;
            const uint8_t* child_cats =
                cat_col + static_cast<size_t>(source.child_index[sc]) * m;
            double best = 0.0;
            uint8_t best_cat = 0;
            bool has_best = false;
            for (size_t tc = tb; tc < te; ++tc) {
              const size_t cj = target.child_index[tc];
              if (child_row[cj] > best) {
                best = child_row[cj];
                best_cat = child_cats[cj];
                has_best = true;
              }
            }
            if (has_best && best >= config.threshold) {
              qom_sum += best;
              matched += 1.0;
              if (best_cat != kTotalExactByte) all_exact = false;
            }
          }
        } else {
          // Paper-literal accumulation (Fig. 3 pseudo-code).
          for (size_t sc = cb; sc < ce; ++sc) {
            const double* child_row =
                qom_col + static_cast<size_t>(source.child_index[sc]) * m;
            const uint8_t* child_cats =
                cat_col + static_cast<size_t>(source.child_index[sc]) * m;
            for (size_t tc = tb; tc < te; ++tc) {
              const size_t cj = target.child_index[tc];
              if (child_row[cj] >= config.threshold) {
                qom_sum += child_row[cj];
                matched += 1.0;
                if (child_cats[cj] != kTotalExactByte) all_exact = false;
              }
            }
          }
        }
        QMATCH_OBS_ONLY(contributing += static_cast<uint64_t>(matched);)
        const double rw = qom_sum / child_total;  // Eq. 3
        const double rs = matched / child_total;  // Eq. 4
        row[j].children = std::min(1.0, (rw + rs) / 2.0);  // Eq. 5
        if (matched <= 0.0) {
          row[j].coverage = qom::Coverage::kNone;
          all_exact = false;
        } else if (matched >= child_total) {
          row[j].coverage = qom::Coverage::kTotal;
        } else {
          row[j].coverage = qom::Coverage::kPartial;
          all_exact = false;
        }
        row[j].children_all_exact = all_exact;
      }
    }
#if QMATCH_OBS_ENABLED
    const uint64_t children_ns = lap();
#endif

    // --- Label axis (broadcast from the distinct-label matrix) ----------
    {
      const double* score_row =
          label_score + static_cast<size_t>(source.label_id[i]) * ml;
      const uint8_t* cls_row =
          label_cls + static_cast<size_t>(source.label_id[i]) * ml;
      for (size_t j = 0; j < m; ++j) {
        const size_t b = target.label_id[j];
        row[j].label = score_row[b];
        row[j].label_cls = static_cast<qom::AxisMatch>(cls_row[b]);
      }
    }
#if QMATCH_OBS_ENABLED
    const uint64_t label_ns = lap();
#endif

    // --- Properties axis (broadcast from the descriptor matrix) ---------
    {
      const double* score_row =
          prop_score + static_cast<size_t>(source.prop_id[i]) * mp;
      const uint8_t* cls_row =
          prop_cls + static_cast<size_t>(source.prop_id[i]) * mp;
      for (size_t j = 0; j < m; ++j) {
        const size_t q = target.prop_id[j];
        row[j].properties = score_row[q];
        row[j].properties_cls = static_cast<qom::AxisMatch>(cls_row[q]);
      }
    }
#if QMATCH_OBS_ENABLED
    const uint64_t properties_ns = lap();
#endif

    // --- Level axis ------------------------------------------------------
    {
      const double* score_row =
          level_score + static_cast<size_t>(source.level[i]) * mlev;
      const uint8_t* cls_row =
          level_cls + static_cast<size_t>(source.level[i]) * mlev;
      for (size_t j = 0; j < m; ++j) {
        const size_t b = target.level[j];
        row[j].level = score_row[b];
        row[j].level_cls = static_cast<qom::AxisMatch>(cls_row[b]);
      }
    }
#if QMATCH_OBS_ENABLED
    const uint64_t level_ns = lap();
#endif

    // --- Combine pass: weighted total (Eq. 1/6), taxonomy category, stop
    // poll and per-pair failpoint ----------------------------------------
    double* qom_row = qom_col + i * m;
    uint8_t* cat_row = cat_col + i * m;
    bool completed = true;
    for (size_t j = 0; j < m; ++j) {
      if (should_stop()) {
        completed = false;
        break;
      }
      qom::PairQoM& pair = row[j];
      pair.qom = w.label * pair.label + w.properties * pair.properties +
                 w.level * pair.level + w.children * pair.children;
      pair.category =
          qom::Categorize(pair.label_cls, pair.properties_cls, pair.level_cls,
                          pair.coverage, pair.children_all_exact);
      qom_row[j] = pair.qom;
      cat_row[j] = static_cast<uint8_t>(pair.category);
      QMATCH_FAILPOINT("treematch.pair");
    }

#if QMATCH_OBS_ENABLED
    // Per-row flush (the tree walk flushes a sampled TLS accumulator per
    // row; the kernel's pass structure makes exact per-axis timing cheap —
    // a handful of clock reads per row).
    QMATCH_COUNTER_ADD("qmatch.treematch.axis_children_ns", children_ns);
    QMATCH_COUNTER_ADD("qmatch.treematch.axis_label_ns", label_ns);
    QMATCH_COUNTER_ADD("qmatch.treematch.axis_properties_ns", properties_ns);
    QMATCH_COUNTER_ADD("qmatch.treematch.axis_level_ns", level_ns);
    QMATCH_COUNTER_ADD("qmatch.treematch.sampled_pairs", m);
    QMATCH_COUNTER_ADD("qmatch.treematch.memo_lookups", memo_lookups);
    QMATCH_COUNTER_ADD("qmatch.treematch.contributing_children", contributing);
    if (completed) {
      static obs::Histogram& depth_hist = obs::Registry::Global().GetHistogram(
          "qmatch.treematch.recursion_depth",
          obs::Histogram::ExponentialBounds(1.0, 2.0, 8),
          "TreeMatch recursion depth (source node level) per table row");
      depth_hist.Observe(static_cast<double>(source.level[i]));
    }
#endif
    return completed;
  };

  auto run_row = [&](size_t i) {
    if (fill_row(i)) row_done[i] = 1;
  };

  // ---- drivers (same schedules as the tree walk) -------------------------
  if (pool == nullptr || pool->worker_count() == 0) {
    // Reverse preorder = bottom-up: every child row is complete before any
    // row that reads it.
    for (size_t i = n; i-- > 0;) {
      if (stop.load(std::memory_order_relaxed) != 0) break;
      run_row(i);
    }
  } else {
    // Level-sharded: deepest level first with a barrier between levels;
    // rows within a level never read each other.
    std::vector<std::vector<size_t>> rows_by_level(
        static_cast<size_t>(source.max_level) + 1);
    for (size_t i = 0; i < n; ++i) {
      rows_by_level[source.level[i]].push_back(i);
    }
    for (size_t level = rows_by_level.size(); level-- > 0;) {
      if (stop.load(std::memory_order_relaxed) != 0) break;
      const std::vector<size_t>& rows = rows_by_level[level];
      pool->ParallelFor(rows.size(), [&](size_t r) {
        if (stop.load(std::memory_order_relaxed) != 0) return;
        run_row(rows[r]);
      });
    }
  }

  out.stop = static_cast<StopReason>(stop.load(std::memory_order_relaxed));
  for (size_t i = 0; i < n; ++i) {
    out.completed_rows += row_done[i] != 0 ? 1u : 0u;
  }
  return out;
}

}  // namespace qmatch::match
