#include "match/matcher.h"

#include <algorithm>

#include "common/string_util.h"

namespace qmatch {

std::string_view MatchModeName(MatchMode mode) {
  switch (mode) {
    case MatchMode::kFull:
      return "full";
    case MatchMode::kCappedDepth:
      return "capped-depth";
    case MatchMode::kLabelOnly:
      return "label-only";
  }
  return "unknown";
}

bool MatchResult::Contains(std::string_view source_path,
                           std::string_view target_path) const {
  for (const Correspondence& c : correspondences) {
    if (c.source->Path() == source_path && c.target->Path() == target_path) {
      return true;
    }
  }
  return false;
}

double MatchResult::ScoreFor(std::string_view source_path) const {
  for (const Correspondence& c : correspondences) {
    if (c.source->Path() == source_path) return c.score;
  }
  return 0.0;
}

std::string MatchResult::ToString() const {
  std::vector<const Correspondence*> sorted;
  sorted.reserve(correspondences.size());
  for (const Correspondence& c : correspondences) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(),
            [](const Correspondence* a, const Correspondence* b) {
              return a->score > b->score;
            });
  std::string out = StrFormat("%s: schema QoM = %.4f, %zu correspondences\n",
                              algorithm.c_str(), schema_qom,
                              correspondences.size());
  for (const Correspondence* c : sorted) {
    out += StrFormat("  %-40s -> %-40s  %.4f\n", c->source->Path().c_str(),
                     c->target->Path().c_str(), c->score);
  }
  return out;
}

}  // namespace qmatch
