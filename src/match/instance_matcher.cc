#include "match/instance_matcher.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "common/string_util.h"
#include "match/assignment.h"

namespace qmatch::match {

namespace {

/// Observed values per schema leaf node.
using ValueTable = std::map<const xsd::SchemaNode*, std::vector<std::string>>;

void CollectValues(const xml::XmlElement& element, const xsd::SchemaNode& decl,
                   size_t cap, ValueTable& out) {
  // Attribute children.
  for (const auto& child : decl.children()) {
    if (child->kind() != xsd::NodeKind::kAttribute) continue;
    if (const std::string* value = element.FindAttribute(child->label())) {
      std::vector<std::string>& values = out[child.get()];
      if (values.size() < cap) values.push_back(std::string(Trim(*value)));
    }
  }
  if (decl.IsLeaf()) {
    std::vector<std::string>& values = out[&decl];
    if (values.size() < cap) {
      values.push_back(std::string(Trim(element.InnerText())));
    }
    return;
  }
  // Element children, matched by name.
  for (const xml::XmlElement* child_el : element.ChildElements()) {
    for (const auto& child_decl : decl.children()) {
      if (child_decl->kind() == xsd::NodeKind::kElement &&
          child_decl->label() == child_el->LocalName()) {
        CollectValues(*child_el, *child_decl, cap, out);
        break;
      }
    }
  }
}

ValueTable CollectFromDocuments(
    const std::vector<const xml::XmlDocument*>& docs,
    const xsd::Schema& schema, size_t cap) {
  ValueTable table;
  if (schema.root() == nullptr) return table;
  for (const xml::XmlDocument* doc : docs) {
    if (doc == nullptr || doc->root() == nullptr) continue;
    if (doc->root()->LocalName() != schema.root()->label()) continue;
    CollectValues(*doc->root(), *schema.root(), cap, table);
  }
  return table;
}

bool ParseNumeric(std::string_view text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  std::string buffer(text);
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

}  // namespace

double InstanceMatcher::ValueSetSimilarity(const std::vector<std::string>& a,
                                           const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;

  // Normalised-string Jaccard.
  std::set<std::string> sa;
  std::set<std::string> sb;
  for (const std::string& v : a) sa.insert(ToLower(Trim(v)));
  for (const std::string& v : b) sb.insert(ToLower(Trim(v)));
  sa.erase("");
  sb.erase("");
  if (sa.empty() || sb.empty()) return 0.0;
  size_t common = 0;
  for (const std::string& v : sa) common += sb.count(v);
  // Overlap coefficient |A ∩ B| / min(|A|,|B|): the standard value-set
  // measure for instance matching (robust to differently sized samples,
  // where Jaccard systematically under-scores).
  double overlap = static_cast<double>(common) /
                   static_cast<double>(std::min(sa.size(), sb.size()));

  // Numeric range overlap when both sides are fully numeric.
  auto range_of = [](const std::set<std::string>& values, double* lo,
                     double* hi) {
    *lo = 0.0;
    *hi = 0.0;
    bool first = true;
    for (const std::string& v : values) {
      double parsed;
      if (!ParseNumeric(v, &parsed)) return false;
      if (first) {
        *lo = *hi = parsed;
        first = false;
      } else {
        *lo = std::min(*lo, parsed);
        *hi = std::max(*hi, parsed);
      }
    }
    return !first;
  };
  double alo;
  double ahi;
  double blo;
  double bhi;
  double range_similarity = 0.0;
  if (range_of(sa, &alo, &ahi) && range_of(sb, &blo, &bhi)) {
    double inner = std::min(ahi, bhi) - std::max(alo, blo);
    double outer = std::max(ahi, bhi) - std::min(alo, blo);
    if (outer <= 0.0) {
      // Both ranges are single identical points (outer == 0, inner == 0)
      // or disjoint constants.
      range_similarity = (ahi == bhi && alo == blo) ? 1.0 : 0.0;
    } else {
      range_similarity = std::max(0.0, inner / outer);
    }
  }
  return std::max(overlap, range_similarity);
}

SimilarityMatrix InstanceMatcher::Similarity(const xsd::Schema& source,
                                             const xsd::Schema& target) const {
  SimilarityMatrix matrix(source, target);
  if (matrix.empty()) return matrix;

  ValueTable source_values = CollectFromDocuments(
      source_docs_, source, options_.max_values_per_leaf);
  ValueTable target_values = CollectFromDocuments(
      target_docs_, target, options_.max_values_per_leaf);

  const auto& src = matrix.sources();
  const auto& tgt = matrix.targets();
  const size_t n = src.size();
  const size_t m = tgt.size();
  std::map<const xsd::SchemaNode*, size_t> src_index;
  std::map<const xsd::SchemaNode*, size_t> tgt_index;
  std::vector<int64_t> src_leaves(n, 0);
  std::vector<int64_t> tgt_leaves(m, 0);
  for (size_t i = 0; i < n; ++i) src_index[src[i]] = i;
  for (size_t j = 0; j < m; ++j) tgt_index[tgt[j]] = j;
  for (size_t i = n; i-- > 0;) {
    if (src[i]->IsLeaf()) {
      src_leaves[i] = 1;
    } else {
      for (const auto& child : src[i]->children()) {
        src_leaves[i] += src_leaves[src_index.at(child.get())];
      }
    }
  }
  for (size_t j = m; j-- > 0;) {
    if (tgt[j]->IsLeaf()) {
      tgt_leaves[j] = 1;
    } else {
      for (const auto& child : tgt[j]->children()) {
        tgt_leaves[j] += tgt_leaves[tgt_index.at(child.get())];
      }
    }
  }

  // Leaf similarities + linked-leaf recurrence for inner pairs (same shape
  // as StructuralMatcher's, with instance links).
  std::vector<int64_t> linked_src(n * m, 0);
  std::vector<int64_t> linked_tgt(n * m, 0);
  auto at = [m](size_t i, size_t j) { return i * m + j; };
  static const std::vector<std::string> kNoValues;
  auto values_for = [](const ValueTable& table, const xsd::SchemaNode* node)
      -> const std::vector<std::string>& {
    auto it = table.find(node);
    return it == table.end() ? kNoValues : it->second;
  };

  for (size_t i = n; i-- > 0;) {
    const xsd::SchemaNode* s = src[i];
    for (size_t j = m; j-- > 0;) {
      const xsd::SchemaNode* t = tgt[j];
      if (s->IsLeaf() && t->IsLeaf()) {
        double sim = ValueSetSimilarity(values_for(source_values, s),
                                        values_for(target_values, t));
        matrix.set(i, j, sim);
        int64_t linked = sim >= options_.leaf_link_threshold ? 1 : 0;
        linked_src[at(i, j)] = linked;
        linked_tgt[at(i, j)] = linked;
        continue;
      }
      if (s->IsLeaf()) {
        int64_t any = 0;
        int64_t sum = 0;
        for (const auto& tc : t->children()) {
          size_t cj = tgt_index.at(tc.get());
          any |= linked_src[at(i, cj)] > 0 ? 1 : 0;
          sum += linked_tgt[at(i, cj)];
        }
        linked_src[at(i, j)] = any;
        linked_tgt[at(i, j)] = sum;
      } else if (t->IsLeaf()) {
        int64_t any = 0;
        int64_t sum = 0;
        for (const auto& sc : s->children()) {
          size_t ci = src_index.at(sc.get());
          any |= linked_tgt[at(ci, j)] > 0 ? 1 : 0;
          sum += linked_src[at(ci, j)];
        }
        linked_tgt[at(i, j)] = any;
        linked_src[at(i, j)] = sum;
      } else {
        int64_t src_sum = 0;
        for (const auto& sc : s->children()) {
          src_sum += linked_src[at(src_index.at(sc.get()), j)];
        }
        linked_src[at(i, j)] = src_sum;
        int64_t tgt_sum = 0;
        for (const auto& tc : t->children()) {
          tgt_sum += linked_tgt[at(i, tgt_index.at(tc.get()))];
        }
        linked_tgt[at(i, j)] = tgt_sum;
      }
      double denominator =
          static_cast<double>(src_leaves[i] + tgt_leaves[j]);
      if (denominator > 0.0 && !(s->IsLeaf() && t->IsLeaf())) {
        double sim = static_cast<double>(linked_src[at(i, j)] +
                                         linked_tgt[at(i, j)]) /
                     denominator;
        // A leaf compared against a whole subtree must not outrank the
        // direct leaf-to-leaf pair inside that subtree.
        if (s->IsLeaf() != t->IsLeaf()) sim *= 0.5;
        matrix.set(i, j, sim);
      }
    }
  }
  return matrix;
}

MatchResult InstanceMatcher::Match(const xsd::Schema& source,
                                   const xsd::Schema& target) const {
  MatchResult result;
  result.algorithm = std::string(name());
  if (source.root() == nullptr || target.root() == nullptr) return result;
  SimilarityMatrix matrix = Similarity(source, target);
  result.correspondences = SelectFromMatrix(matrix, options_.threshold,
                                            options_.ambiguity_margin);
  result.schema_qom = matrix.MeanBestPerSource();
  return result;
}

}  // namespace qmatch::match
