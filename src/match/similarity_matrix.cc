#include "match/similarity_matrix.h"

#include <algorithm>

#include "common/string_util.h"

namespace qmatch::match {

double SimilarityMatrix::MaxValue() const {
  double best = 0.0;
  for (double v : values_) best = std::max(best, v);
  return best;
}

double SimilarityMatrix::MeanBestPerSource() const {
  if (sources_.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < sources_.size(); ++i) {
    double best = 0.0;
    for (size_t j = 0; j < targets_.size(); ++j) {
      best = std::max(best, at(i, j));
    }
    sum += best;
  }
  return sum / static_cast<double>(sources_.size());
}

std::string SimilarityMatrix::ToString() const {
  std::string out;
  for (size_t i = 0; i < sources_.size(); ++i) {
    out += StrFormat("%-40s", sources_[i]->Path().c_str());
    for (size_t j = 0; j < targets_.size(); ++j) {
      out += StrFormat(" %.2f", at(i, j));
    }
    out += '\n';
  }
  return out;
}

}  // namespace qmatch::match
