#ifndef QMATCH_MATCH_SIMILARITY_MATRIX_H_
#define QMATCH_MATCH_SIMILARITY_MATRIX_H_

#include <string>
#include <vector>

#include "xsd/schema.h"

namespace qmatch::match {

/// A dense |source nodes| x |target nodes| similarity matrix — the
/// intermediate representation composite matchers (COMA-style) aggregate
/// before mapping selection. Row/column order is schema preorder.
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;

  /// Borrows both node lists' pointees; the schemas must outlive the matrix.
  SimilarityMatrix(std::vector<const xsd::SchemaNode*> sources,
                   std::vector<const xsd::SchemaNode*> targets)
      : sources_(std::move(sources)),
        targets_(std::move(targets)),
        values_(sources_.size() * targets_.size(), 0.0) {}

  /// Convenience: builds the node lists from the schemas.
  SimilarityMatrix(const xsd::Schema& source, const xsd::Schema& target)
      : SimilarityMatrix(source.AllNodes(), target.AllNodes()) {}

  size_t source_count() const { return sources_.size(); }
  size_t target_count() const { return targets_.size(); }
  bool empty() const { return values_.empty(); }

  const std::vector<const xsd::SchemaNode*>& sources() const {
    return sources_;
  }
  const std::vector<const xsd::SchemaNode*>& targets() const {
    return targets_;
  }

  double at(size_t i, size_t j) const { return values_[i * targets_.size() + j]; }
  void set(size_t i, size_t j, double value) {
    values_[i * targets_.size() + j] = value;
  }

  /// Direct access to source row `i` (`target_count()` doubles). Rows are
  /// disjoint slices of one allocation, so concurrent fills of *different*
  /// rows need no synchronisation — the thread-safe fill path the parallel
  /// match engine uses.
  double* row(size_t i) { return values_.data() + i * targets_.size(); }
  const double* row(size_t i) const {
    return values_.data() + i * targets_.size();
  }

  /// True when both matrices cover the same node lists (same order).
  bool SameShape(const SimilarityMatrix& other) const {
    return sources_ == other.sources_ && targets_ == other.targets_;
  }

  /// Largest entry (0 for an empty matrix).
  double MaxValue() const;

  /// Mean of each source row's best score — the schema-level similarity
  /// several matchers report.
  double MeanBestPerSource() const;

  /// Compact textual dump (scores with 2 decimals), for debugging small
  /// matrices.
  std::string ToString() const;

 private:
  std::vector<const xsd::SchemaNode*> sources_;
  std::vector<const xsd::SchemaNode*> targets_;
  std::vector<double> values_;
};

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_SIMILARITY_MATRIX_H_
