#ifndef QMATCH_MATCH_MATCHER_H_
#define QMATCH_MATCH_MATCHER_H_

#include <string>
#include <string_view>
#include <vector>

#include "match/similarity_matrix.h"
#include "xsd/schema.h"

namespace qmatch {

/// Degradation level a match result was computed at. Under overload the
/// engine walks a ladder from the full hybrid QoM down to the cheap axes
/// only; results carry their mode so callers (and goldens) can tell a
/// degraded answer from a full one.
enum class MatchMode {
  /// Full QoM per Eq. 1: label + properties + level + recursive children.
  kFull = 0,
  /// Children axis evaluated only above a depth cap; deeper subtrees score
  /// as leaves. Cheaper than full, structurally aware near the root.
  kCappedDepth = 1,
  /// Children axis skipped entirely; the remaining label/property/level
  /// weights are renormalized per Eq. 6/7 (CUPID-style structural-free
  /// matching as the last rung before shedding).
  kLabelOnly = 2,
};

/// Canonical lower-case name of a match mode ("full", "capped-depth",
/// "label-only").
std::string_view MatchModeName(MatchMode mode);

/// One discovered node-to-node match: a source node, the target node it was
/// mapped to, and the algorithm's confidence/QoM score in [0, 1].
struct Correspondence {
  const xsd::SchemaNode* source = nullptr;
  const xsd::SchemaNode* target = nullptr;
  double score = 0.0;
};

/// The output of a match algorithm over two schemas: the schema-level QoM
/// (the paper's "total match value ... presented to the user") plus the set
/// of node correspondences above the algorithm's threshold — the set `P`
/// scored against the manually determined real matches `R` in Section 5.
struct MatchResult {
  std::string algorithm;
  double schema_qom = 0.0;
  std::vector<Correspondence> correspondences;

  /// Degradation level this result was computed at. kFull unless the
  /// producer explicitly degraded (overload ladder or forced mode).
  MatchMode mode = MatchMode::kFull;

  /// True if a correspondence with these endpoint paths was returned.
  bool Contains(std::string_view source_path,
                std::string_view target_path) const;

  /// The score of the correspondence for `source_path`, or 0 when unmapped.
  double ScoreFor(std::string_view source_path) const;

  /// Human-readable listing, sorted by descending score.
  std::string ToString() const;
};

/// Abstract schema match algorithm. Implementations: LinguisticMatcher,
/// StructuralMatcher, CupidMatcher, CompositeMatcher and core::QMatch (the
/// paper's hybrid).
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Algorithm display name ("linguistic", "structural", "hybrid", ...).
  virtual std::string_view name() const = 0;

  /// Matches `source` against `target`. Both schemas must outlive the
  /// returned result (correspondences point into their trees).
  virtual MatchResult Match(const xsd::Schema& source,
                            const xsd::Schema& target) const = 0;

  /// The full pairwise similarity matrix this algorithm scores from,
  /// *before* mapping selection (thresholds, ambiguity suppression,
  /// evidence gates). This is the representation COMA-style composition
  /// aggregates. Both schemas must outlive the returned matrix.
  virtual match::SimilarityMatrix Similarity(
      const xsd::Schema& source, const xsd::Schema& target) const = 0;
};

}  // namespace qmatch

#endif  // QMATCH_MATCH_MATCHER_H_
