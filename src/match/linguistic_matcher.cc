#include "match/linguistic_matcher.h"

#include "match/assignment.h"

namespace qmatch::match {

SimilarityMatrix LinguisticMatcher::Similarity(const xsd::Schema& source,
                                               const xsd::Schema& target) const {
  SimilarityMatrix matrix(source, target);
  if (matrix.empty()) return matrix;

  // Tokenise every label once and memoise token-pair similarities.
  std::vector<std::string> source_labels;
  source_labels.reserve(matrix.source_count());
  for (const xsd::SchemaNode* s : matrix.sources()) {
    source_labels.push_back(s->label());
  }
  std::vector<std::string> target_labels;
  target_labels.reserve(matrix.target_count());
  for (const xsd::SchemaNode* t : matrix.targets()) {
    target_labels.push_back(t->label());
  }
  const lingua::PairwiseLabelScorer scorer(name_matcher_, source_labels,
                                           target_labels);
  for (size_t i = 0; i < matrix.source_count(); ++i) {
    for (size_t j = 0; j < matrix.target_count(); ++j) {
      lingua::LabelMatch lm = scorer.Match(i, j);
      if (lm.cls != lingua::LabelMatchClass::kNone) {
        matrix.set(i, j, lm.score);
      }
    }
  }
  return matrix;
}

MatchResult LinguisticMatcher::Match(const xsd::Schema& source,
                                     const xsd::Schema& target) const {
  MatchResult result;
  result.algorithm = std::string(name());
  if (source.root() == nullptr || target.root() == nullptr) return result;

  SimilarityMatrix matrix = Similarity(source, target);
  result.correspondences = SelectFromMatrix(matrix, options_.threshold,
                                            options_.ambiguity_margin);
  result.schema_qom = matrix.MeanBestPerSource();
  return result;
}

}  // namespace qmatch::match
