#ifndef QMATCH_MATCH_TREE_EDIT_DISTANCE_H_
#define QMATCH_MATCH_TREE_EDIT_DISTANCE_H_

#include <cstddef>

#include "xsd/schema.h"

namespace qmatch::match {

/// Cost model for tree edit operations.
struct TedOptions {
  enum class RenameCost {
    /// Rename is free iff the canonicalised labels are equal (the
    /// Nierman-Jagadish style structural+label distance).
    kLabel,
    /// Rename is free iff kind and datatype agree — a label-blind,
    /// purely structural distance.
    kStructural,
  };
  RenameCost rename = RenameCost::kLabel;
  double insert_cost = 1.0;
  double delete_cost = 1.0;
  double rename_cost = 1.0;
};

/// Ordered tree edit distance between two schema subtrees via the
/// Zhang-Shasha algorithm (insert / delete / rename, configurable costs).
///
/// Complexity is O(|a|·|b|·min(depth,leaves)²) time and O(|a|·|b|) space —
/// fine for the paper's hand-built schemas, not intended for the
/// thousands-of-nodes protein schemas (use StructuralMatcher there).
double TreeEditDistance(const xsd::SchemaNode& a, const xsd::SchemaNode& b,
                        const TedOptions& options = {});

/// Normalised similarity: 1 - distance / (|a| + |b|), clamped to [0, 1].
double TedSimilarity(const xsd::SchemaNode& a, const xsd::SchemaNode& b,
                     const TedOptions& options = {});

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_TREE_EDIT_DISTANCE_H_
