#ifndef QMATCH_MATCH_INSTANCE_MATCHER_H_
#define QMATCH_MATCH_INSTANCE_MATCHER_H_

#include <vector>

#include "match/matcher.h"
#include "xml/dom.h"

namespace qmatch::match {

/// Instance-level matcher: matches leaves by the *data values* observed in
/// sample documents, ignoring labels and structure.
///
/// This is the matcher family of LSD and SemInt, which the paper's related
/// work section contrasts QMatch against ("SemInt provides a match
/// procedure using a classifier to categorize attributes according to
/// their field specifications and data values"). Two leaves are similar
/// when their observed value sets overlap (Jaccard over normalised string
/// values) or, for numeric leaves, when their value ranges overlap. Inner
/// node similarity is the linked-leaf fraction over the subtrees (the same
/// bounded recurrence the structural matcher uses).
///
/// Sample documents are bound at construction and must conform to the
/// schemas later passed to Match()/Similarity() (element names are matched
/// by path). Leaves never observed in any sample score 0 against
/// everything.
class InstanceMatcher : public Matcher {
 public:
  struct Options {
    /// Correspondence cut-off. Value-overlap evidence from finite samples
    /// is inherently partial, so the default sits below the
    /// schema-matchers' 0.5.
    double threshold = 0.35;
    double ambiguity_margin = 0.02;
    /// Leaf-pair similarity required to create a strong link for the
    /// inner-node recurrence.
    double leaf_link_threshold = 0.35;
    /// Cap on values collected per leaf (guards against huge documents).
    size_t max_values_per_leaf = 1024;
  };

  /// Documents are borrowed and must outlive the matcher.
  InstanceMatcher(std::vector<const xml::XmlDocument*> source_docs,
                  std::vector<const xml::XmlDocument*> target_docs)
      : InstanceMatcher(std::move(source_docs), std::move(target_docs),
                        Options()) {}
  InstanceMatcher(std::vector<const xml::XmlDocument*> source_docs,
                  std::vector<const xml::XmlDocument*> target_docs,
                  Options options)
      : source_docs_(std::move(source_docs)),
        target_docs_(std::move(target_docs)),
        options_(options) {}

  std::string_view name() const override { return "instance"; }

  MatchResult Match(const xsd::Schema& source,
                    const xsd::Schema& target) const override;

  SimilarityMatrix Similarity(const xsd::Schema& source,
                              const xsd::Schema& target) const override;

  /// Similarity of two observed value sets in [0,1] (exposed for tests):
  /// max of the normalised-string overlap coefficient and the numeric
  /// range overlap.
  static double ValueSetSimilarity(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b);

 private:
  std::vector<const xml::XmlDocument*> source_docs_;
  std::vector<const xml::XmlDocument*> target_docs_;
  Options options_;
};

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_INSTANCE_MATCHER_H_
