#include "match/property_matcher.h"

namespace qmatch::match {

std::string_view PropertyMatchClassName(PropertyMatchClass c) {
  switch (c) {
    case PropertyMatchClass::kNone:
      return "none";
    case PropertyMatchClass::kRelaxed:
      return "relaxed";
    case PropertyMatchClass::kExact:
      return "exact";
  }
  return "?";
}

namespace {

PropertyMatchClass CompareTypeProperty(const xsd::SchemaNode& s,
                                       const xsd::SchemaNode& t) {
  using xsd::TypeRelation;
  using xsd::XsdType;
  // Unknown user-defined types compare by their written names.
  if (s.type() == XsdType::kUnknown || t.type() == XsdType::kUnknown) {
    if (s.type() == t.type() && !s.type_name().empty() &&
        s.type_name() == t.type_name()) {
      return PropertyMatchClass::kExact;
    }
    return PropertyMatchClass::kNone;
  }
  switch (xsd::CompareTypes(s.type(), t.type())) {
    case TypeRelation::kEqual:
      return PropertyMatchClass::kExact;
    case TypeRelation::kGeneralizes:
    case TypeRelation::kSpecializes:
    case TypeRelation::kSameFamily:
      return PropertyMatchClass::kRelaxed;
    case TypeRelation::kUnrelated:
      return PropertyMatchClass::kNone;
  }
  return PropertyMatchClass::kNone;
}

PropertyMatchClass CompareOrderProperty(const xsd::SchemaNode& s,
                                        const xsd::SchemaNode& t) {
  // Order is only a semantic property under <sequence>; when either side
  // is unordered the property is vacuously exact.
  if (!s.ordered() || !t.ordered()) return PropertyMatchClass::kExact;
  return s.order() == t.order() ? PropertyMatchClass::kExact
                                : PropertyMatchClass::kRelaxed;
}

PropertyMatchClass CompareScalar(bool equal) {
  return equal ? PropertyMatchClass::kExact : PropertyMatchClass::kRelaxed;
}

}  // namespace

PropertyMatch MatchProperties(const xsd::SchemaNode& source,
                              const xsd::SchemaNode& target,
                              const PropertyMatchOptions& options) {
  PropertyMatch result;
  auto add = [&](std::string_view name, PropertyMatchClass cls) {
    result.verdicts.push_back({std::string(name), cls});
  };

  if (options.compare_kind) {
    add("kind", CompareScalar(source.kind() == target.kind()));
  }
  if (options.compare_type) {
    add("type", CompareTypeProperty(source, target));
  }
  if (options.compare_order) {
    add("order", CompareOrderProperty(source, target));
  }
  if (options.compare_occurs) {
    add("minOccurs", CompareScalar(source.occurs().min == target.occurs().min));
    add("maxOccurs", CompareScalar(source.occurs().max == target.occurs().max));
  }
  if (options.compare_nillable) {
    add("nillable", CompareScalar(source.nillable() == target.nillable()));
  }

  if (result.verdicts.empty()) {
    result.cls = PropertyMatchClass::kExact;
    result.score = 1.0;
    return result;
  }

  size_t exact = 0;
  size_t relaxed = 0;
  size_t none = 0;
  for (const PropertyVerdict& v : result.verdicts) {
    switch (v.cls) {
      case PropertyMatchClass::kExact:
        ++exact;
        break;
      case PropertyMatchClass::kRelaxed:
        ++relaxed;
        break;
      case PropertyMatchClass::kNone:
        ++none;
        break;
    }
  }
  const double total = static_cast<double>(result.verdicts.size());
  result.score = (static_cast<double>(exact) +
                  options.relaxed_credit * static_cast<double>(relaxed)) /
                 total;
  if (none == 0 && relaxed == 0) {
    result.cls = PropertyMatchClass::kExact;
  } else if (result.score >= options.relaxed_credit) {
    result.cls = PropertyMatchClass::kRelaxed;
  } else {
    result.cls = PropertyMatchClass::kNone;
  }
  return result;
}

}  // namespace qmatch::match
