#ifndef QMATCH_MATCH_SOA_KERNEL_H_
#define QMATCH_MATCH_SOA_KERNEL_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/cancel.h"
#include "common/thread_pool.h"
#include "lingua/name_match.h"
#include "match/property_matcher.h"
#include "qom/pair_qom.h"
#include "qom/weights.h"
#include "xsd/flatten.h"

namespace qmatch::match {

/// Which pairwise table-fill implementation TreeMatch runs (DESIGN.md §13).
/// Both produce bit-identical tables — the equivalence the kernel diff
/// suite and the (kernel-parameterized) golden suite enforce.
enum class KernelKind {
  /// The node-at-a-time tree walk in core/qmatch.cc (the reference).
  kTree,
  /// The structure-of-arrays batch kernel in this header (the default).
  kSoa,
};

std::string_view KernelKindName(KernelKind kind);

/// Kernel selected by the QMATCH_KERNEL environment variable ("tree" or
/// "soa"); unset or unrecognised values select kSoa. Read per call so
/// tests can flip it between matches.
KernelKind DefaultKernel();

/// Everything the SoA fill needs from QMatchConfig, flattened so the match
/// layer does not depend on core. `weights` must already carry any
/// label-only renormalisation (Eq. 6/7); `label_only`/`capped` mirror the
/// MatchMode rungs.
struct SoaKernelConfig {
  qom::Weights weights;
  double threshold = 0.5;
  /// True = best-target-per-child accumulation; false = paper-literal
  /// (every child pair above threshold contributes).
  bool best_match_accumulation = true;
  /// True = graded level axis (1/(1+gap)); false = binary.
  bool level_graded = false;
  double leaf_to_inner_children_credit = 0.5;
  bool label_only = false;
  bool capped = false;
  size_t children_depth_cap = 0;
  /// Borrowed; must outlive the call.
  const lingua::NameMatcher* name_matcher = nullptr;
  PropertyMatchOptions property_options;
};

struct SoaKernelResult {
  StopReason stop = StopReason::kNone;
  size_t completed_rows = 0;
};

/// Fills `table` (source-major, size source.size()*target.size()) with the
/// per-pair QoM decomposition — bit-identical to the tree walk, cell for
/// cell, because every axis value is the same pure function evaluated on
/// the same inputs in the same order; the kernel only *deduplicates*:
/// label matches are computed once per distinct (source label, target
/// label), property matches once per distinct packed-descriptor pair, and
/// level matches once per distinct (source level, target level), then
/// broadcast through the interned id columns.
///
/// All scratch (similarity matrices, SoA score columns) comes from
/// `arena`, allocated on the calling thread before any fan-out to `pool`.
/// `control` (nullable) is polled per pair during the final combine pass;
/// on a trip the fill stops cooperatively and `row_done` marks exactly the
/// source rows whose every cell is complete (the monotone-partial contract
/// of DESIGN.md §10). The `treematch.pair` failpoint fires once per
/// computed pair, as in the tree walk, so the chaos suite's slow-pair and
/// deadline scenarios exercise both kernels identically.
SoaKernelResult SoaFillTable(const xsd::FlatSchema& source,
                             const xsd::FlatSchema& target,
                             const SoaKernelConfig& config,
                             qom::PairQoM* table, std::vector<char>& row_done,
                             ThreadPool* pool, const ExecControl* control,
                             Arena* arena);

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_SOA_KERNEL_H_
