#include "match/composite_matcher.h"

#include <algorithm>

#include "common/logging.h"
#include "match/assignment.h"

namespace qmatch::match {

SimilarityMatrix CompositeMatcher::Similarity(const xsd::Schema& source,
                                              const xsd::Schema& target) const {
  SimilarityMatrix aggregate(source, target);
  if (components_.empty() || aggregate.empty()) return aggregate;
  if (options_.aggregation == Aggregation::kWeighted) {
    QMATCH_CHECK(options_.weights.size() == components_.size())
        << "kWeighted needs one weight per component";
  }

  // Collect every component's matrix. All components see the same schemas,
  // so the shapes agree (preorder node lists are deterministic).
  std::vector<SimilarityMatrix> matrices;
  matrices.reserve(components_.size());
  for (const Matcher* component : components_) {
    matrices.push_back(component->Similarity(source, target));
    QMATCH_CHECK(matrices.back().SameShape(aggregate))
        << "component produced a differently shaped matrix";
  }

  const double weight_sum = [&] {
    if (options_.aggregation != Aggregation::kWeighted) return 0.0;
    double sum = 0.0;
    for (double w : options_.weights) sum += w;
    return sum;
  }();

  for (size_t i = 0; i < aggregate.source_count(); ++i) {
    for (size_t j = 0; j < aggregate.target_count(); ++j) {
      double value = 0.0;
      switch (options_.aggregation) {
        case Aggregation::kMax: {
          for (const SimilarityMatrix& m : matrices) {
            value = std::max(value, m.at(i, j));
          }
          break;
        }
        case Aggregation::kMin: {
          value = matrices.front().at(i, j);
          for (const SimilarityMatrix& m : matrices) {
            value = std::min(value, m.at(i, j));
          }
          break;
        }
        case Aggregation::kAverage: {
          for (const SimilarityMatrix& m : matrices) {
            value += m.at(i, j);
          }
          value /= static_cast<double>(matrices.size());
          break;
        }
        case Aggregation::kWeighted: {
          for (size_t c = 0; c < matrices.size(); ++c) {
            value += options_.weights[c] * matrices[c].at(i, j);
          }
          if (weight_sum > 0.0) value /= weight_sum;
          break;
        }
      }
      aggregate.set(i, j, value);
    }
  }
  return aggregate;
}

MatchResult CompositeMatcher::Match(const xsd::Schema& source,
                                    const xsd::Schema& target) const {
  MatchResult result;
  result.algorithm = std::string(name());
  if (components_.empty() || source.root() == nullptr ||
      target.root() == nullptr) {
    return result;
  }
  SimilarityMatrix aggregate = Similarity(source, target);
  result.correspondences = SelectFromMatrix(aggregate, options_.threshold,
                                            options_.ambiguity_margin);
  result.schema_qom = aggregate.MeanBestPerSource();
  return result;
}

}  // namespace qmatch::match
