#ifndef QMATCH_MATCH_LINGUISTIC_MATCHER_H_
#define QMATCH_MATCH_LINGUISTIC_MATCHER_H_

#include "lingua/name_match.h"
#include "lingua/thesaurus.h"
#include "match/matcher.h"

namespace qmatch::match {

/// The pure linguistic baseline of Section 5: a CUPID-style label matcher
/// applied to every (source node, target node) pair, ignoring structure,
/// properties and levels entirely.
///
/// Each source node maps to the target node with the highest label score;
/// pairs below `threshold` are dropped. The schema-level QoM is the mean of
/// the per-source-node best label scores — high when the vocabularies of
/// the two schemas overlap, regardless of structure.
class LinguisticMatcher : public Matcher {
 public:
  struct Options {
    double threshold = 0.5;
    /// Suppress a mapping when the runner-up target's label score is
    /// within this margin of the best (ambiguous vocabulary).
    double ambiguity_margin = 0.02;
    lingua::NameMatchOptions name_options;
  };

  /// `thesaurus` is borrowed (may be null for pure string matching) and
  /// must outlive the matcher.
  LinguisticMatcher() : LinguisticMatcher(nullptr) {}
  explicit LinguisticMatcher(const lingua::Thesaurus* thesaurus)
      : LinguisticMatcher(thesaurus, Options()) {}
  LinguisticMatcher(const lingua::Thesaurus* thesaurus, Options options)
      : name_matcher_(thesaurus, options.name_options), options_(options) {}

  std::string_view name() const override { return "linguistic"; }

  MatchResult Match(const xsd::Schema& source,
                    const xsd::Schema& target) const override;

  /// Label-axis similarity per pair; pairs with no label evidence score 0.
  SimilarityMatrix Similarity(const xsd::Schema& source,
                              const xsd::Schema& target) const override;

  const lingua::NameMatcher& name_matcher() const { return name_matcher_; }

 private:
  lingua::NameMatcher name_matcher_;
  Options options_;
};

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_LINGUISTIC_MATCHER_H_
