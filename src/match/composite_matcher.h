#ifndef QMATCH_MATCH_COMPOSITE_MATCHER_H_
#define QMATCH_MATCH_COMPOSITE_MATCHER_H_

#include <vector>

#include "match/matcher.h"

namespace qmatch::match {

/// COMA-style composite matcher (Do & Rahm, VLDB'02) — the second system
/// the paper's conclusion targets for comparison. Runs a set of component
/// matchers, aggregates their per-pair scores, and selects mappings from
/// the combined similarity.
///
/// Aggregation operates on the components' full similarity *matrices*
/// (COMA's representation), entry-wise:
///   kMax      — optimistic union (any component can establish a match);
///   kAverage  — COMA's default combination;
///   kMin      — pessimistic intersection (consensus required);
///   kWeighted — per-component weights (must match the component count).
/// Mapping selection then runs on the aggregated matrix.
class CompositeMatcher : public Matcher {
 public:
  enum class Aggregation { kMax, kMin, kAverage, kWeighted };

  struct Options {
    Aggregation aggregation = Aggregation::kAverage;
    /// Weights for kWeighted, one per component matcher.
    std::vector<double> weights;
    /// Mapping-selection threshold on the aggregated score.
    double threshold = 0.5;
    double ambiguity_margin = 0.02;
  };

  /// `components` are borrowed and must outlive the composite.
  explicit CompositeMatcher(std::vector<const Matcher*> components)
      : CompositeMatcher(std::move(components), Options()) {}
  CompositeMatcher(std::vector<const Matcher*> components, Options options)
      : components_(std::move(components)), options_(options) {}

  std::string_view name() const override { return "composite"; }

  MatchResult Match(const xsd::Schema& source,
                    const xsd::Schema& target) const override;

  /// The aggregated matrix (entry-wise combination of the components').
  SimilarityMatrix Similarity(const xsd::Schema& source,
                              const xsd::Schema& target) const override;

 private:
  std::vector<const Matcher*> components_;
  Options options_;
};

}  // namespace qmatch::match

#endif  // QMATCH_MATCH_COMPOSITE_MATCHER_H_
