#include "match/structural_matcher.h"

#include "match/assignment.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace qmatch::match {

namespace {

double TypeSimilarity(const xsd::SchemaNode& s, const xsd::SchemaNode& t) {
  using xsd::TypeRelation;
  using xsd::XsdType;
  if (s.type() == XsdType::kUnknown || t.type() == XsdType::kUnknown) {
    return (s.type() == t.type() && s.type_name() == t.type_name()) ? 1.0
                                                                    : 0.4;
  }
  switch (xsd::CompareTypes(s.type(), t.type())) {
    case TypeRelation::kEqual:
      return 1.0;
    case TypeRelation::kGeneralizes:
    case TypeRelation::kSpecializes:
      return 0.85;
    case TypeRelation::kSameFamily:
      return 0.7;
    case TypeRelation::kUnrelated:
      return 0.4;
  }
  return 0.4;
}

double OccursSimilarity(const xsd::SchemaNode& s, const xsd::SchemaNode& t) {
  double sim = 1.0;
  if (s.occurs().min != t.occurs().min) sim *= 0.8;
  if (s.occurs().max != t.occurs().max) sim *= 0.8;
  return sim;
}

/// Precomputed per-schema node data: preorder index and subtree leaf count.
struct NodeIndex {
  std::vector<const xsd::SchemaNode*> nodes;
  std::map<const xsd::SchemaNode*, size_t> index_of;
  std::vector<int64_t> leaf_count;
  std::vector<size_t> height;

  explicit NodeIndex(const xsd::Schema& schema) {
    nodes = schema.AllNodes();
    leaf_count.resize(nodes.size(), 0);
    height.resize(nodes.size(), 0);
    for (size_t i = 0; i < nodes.size(); ++i) index_of[nodes[i]] = i;
    // Preorder guarantees children appear after parents; accumulate leaf
    // counts and heights in reverse.
    for (size_t i = nodes.size(); i-- > 0;) {
      const xsd::SchemaNode* node = nodes[i];
      if (node->IsLeaf()) {
        leaf_count[i] = 1;
        height[i] = 0;
      } else {
        int64_t sum = 0;
        size_t tallest = 0;
        for (const auto& child : node->children()) {
          size_t ci = index_of.at(child.get());
          sum += leaf_count[ci];
          tallest = std::max(tallest, height[ci] + 1);
        }
        leaf_count[i] = sum;
        height[i] = tallest;
      }
    }
  }
};

}  // namespace

double StructuralMatcher::LeafSimilarity(const xsd::SchemaNode& s,
                                         const xsd::SchemaNode& t) {
  double kind = s.kind() == t.kind() ? 1.0 : 0.7;
  return 0.5 * TypeSimilarity(s, t) + 0.25 * kind +
         0.25 * OccursSimilarity(s, t);
}

SimilarityMatrix StructuralMatcher::Similarity(const xsd::Schema& source,
                                               const xsd::Schema& target) const {
  if (source.root() == nullptr || target.root() == nullptr) {
    return SimilarityMatrix(source, target);
  }

  NodeIndex src(source);
  NodeIndex tgt(target);
  SimilarityMatrix matrix(src.nodes, tgt.nodes);
  const size_t n = src.nodes.size();
  const size_t m = tgt.nodes.size();

  // CUPID-style structural similarity: the fraction of leaves, on both
  // sides, that are strongly linked to at least one leaf of the other
  // subtree. Two bounded recurrences, computed bottom-up (reverse preorder
  // ensures children come first):
  //   linked_src[i][j] = |{source leaves in subtree(i) linked into subtree(j)}|
  //   linked_tgt[i][j] = |{target leaves in subtree(j) linked into subtree(i)}|
  std::vector<int64_t> linked_src(n * m, 0);
  std::vector<int64_t> linked_tgt(n * m, 0);
  auto src_at = [&](size_t i, size_t j) -> int64_t& {
    return linked_src[i * m + j];
  };
  auto tgt_at = [&](size_t i, size_t j) -> int64_t& {
    return linked_tgt[i * m + j];
  };

  for (size_t i = n; i-- > 0;) {
    const xsd::SchemaNode* s = src.nodes[i];
    for (size_t j = m; j-- > 0;) {
      const xsd::SchemaNode* t = tgt.nodes[j];
      if (s->IsLeaf() && t->IsLeaf()) {
        int64_t linked =
            LeafSimilarity(*s, *t) >= options_.leaf_link_threshold ? 1 : 0;
        src_at(i, j) = linked;
        tgt_at(i, j) = linked;
      } else if (s->IsLeaf()) {
        // One source leaf vs a target subtree: linked iff linked to any
        // target child subtree; target-side count sums over children.
        int64_t any = 0;
        int64_t sum = 0;
        for (const auto& tc : t->children()) {
          size_t cj = tgt.index_of.at(tc.get());
          any |= src_at(i, cj) > 0 ? 1 : 0;
          sum += tgt_at(i, cj);
        }
        src_at(i, j) = any;
        tgt_at(i, j) = sum;
      } else if (t->IsLeaf()) {
        int64_t any = 0;
        int64_t sum = 0;
        for (const auto& sc : s->children()) {
          size_t ci = src.index_of.at(sc.get());
          any |= tgt_at(ci, j) > 0 ? 1 : 0;
          sum += src_at(ci, j);
        }
        tgt_at(i, j) = any;
        src_at(i, j) = sum;
      } else {
        int64_t src_sum = 0;
        for (const auto& sc : s->children()) {
          src_sum += src_at(src.index_of.at(sc.get()), j);
        }
        src_at(i, j) = src_sum;
        int64_t tgt_sum = 0;
        for (const auto& tc : t->children()) {
          tgt_sum += tgt_at(i, tgt.index_of.at(tc.get()));
        }
        tgt_at(i, j) = tgt_sum;
      }
    }
  }

  // Pair similarity: linked-leaf fraction + local shape blend.
  auto pair_similarity = [&](size_t i, size_t j) {
    const xsd::SchemaNode* s = src.nodes[i];
    const xsd::SchemaNode* t = tgt.nodes[j];
    if (s->IsLeaf() && t->IsLeaf()) return LeafSimilarity(*s, *t);
    double denominator =
        static_cast<double>(src.leaf_count[i] + tgt.leaf_count[j]);
    double ssim =
        denominator > 0.0
            ? static_cast<double>(src_at(i, j) + tgt_at(i, j)) / denominator
            : 0.0;
    double count_s = static_cast<double>(s->child_count());
    double count_t = static_cast<double>(t->child_count());
    double child_sim = (count_s == 0.0 && count_t == 0.0)
                           ? 1.0
                           : std::min(count_s, count_t) /
                                 std::max({count_s, count_t, 1.0});
    size_t hs = src.height[i];
    size_t ht = tgt.height[j];
    double height_gap = static_cast<double>(hs > ht ? hs - ht : ht - hs);
    double height_sim = 1.0 / (1.0 + height_gap);
    double local = 0.5 * child_sim + 0.5 * height_sim;
    return options_.subtree_weight * ssim +
           (1.0 - options_.subtree_weight) * local;
  };

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      matrix.set(i, j, pair_similarity(i, j));
    }
  }
  return matrix;
}

MatchResult StructuralMatcher::Match(const xsd::Schema& source,
                                     const xsd::Schema& target) const {
  MatchResult result;
  result.algorithm = std::string(name());
  if (source.root() == nullptr || target.root() == nullptr) return result;

  SimilarityMatrix matrix = Similarity(source, target);
  result.correspondences = SelectFromMatrix(matrix, options_.threshold,
                                            options_.ambiguity_margin);
  result.schema_qom = matrix.MeanBestPerSource();
  return result;
}

}  // namespace qmatch::match
