#include "match/tree_edit_distance.h"

#include <algorithm>
#include <string>
#include <vector>

#include "lingua/tokenize.h"

namespace qmatch::match {

namespace {

/// Post-order flattening of a schema subtree with the leftmost-leaf and
/// keyroot tables required by Zhang-Shasha.
struct FlatTree {
  std::vector<const xsd::SchemaNode*> postorder;
  std::vector<size_t> leftmost;   // index of leftmost leaf of subtree(i)
  std::vector<size_t> keyroots;   // ascending

  explicit FlatTree(const xsd::SchemaNode& root) {
    Walk(root);
    // A keyroot is a node with no parent, or which is not the leftmost
    // child of its parent: nodes whose leftmost differs from all larger
    // nodes' leftmost.
    std::vector<bool> seen(postorder.size(), false);
    for (size_t i = postorder.size(); i-- > 0;) {
      if (!seen[leftmost[i]]) {
        keyroots.push_back(i);
        seen[leftmost[i]] = true;
      }
    }
    std::sort(keyroots.begin(), keyroots.end());
  }

 private:
  size_t Walk(const xsd::SchemaNode& node) {
    size_t first_leaf = postorder.size();  // placeholder
    bool first = true;
    for (const auto& child : node.children()) {
      size_t child_leftmost = Walk(*child);
      if (first) {
        first_leaf = child_leftmost;
        first = false;
      }
    }
    size_t index = postorder.size();
    postorder.push_back(&node);
    leftmost.push_back(first ? index : first_leaf);
    return leftmost[index];
  }
};

double RenameCostOf(const xsd::SchemaNode& a, const xsd::SchemaNode& b,
                    const TedOptions& options) {
  switch (options.rename) {
    case TedOptions::RenameCost::kLabel: {
      return lingua::CanonicalizeLabel(a.label()) ==
                     lingua::CanonicalizeLabel(b.label())
                 ? 0.0
                 : options.rename_cost;
    }
    case TedOptions::RenameCost::kStructural: {
      bool same = a.kind() == b.kind() && a.type() == b.type();
      return same ? 0.0 : options.rename_cost;
    }
  }
  return options.rename_cost;
}

}  // namespace

double TreeEditDistance(const xsd::SchemaNode& a, const xsd::SchemaNode& b,
                        const TedOptions& options) {
  FlatTree ta(a);
  FlatTree tb(b);
  const size_t n = ta.postorder.size();
  const size_t m = tb.postorder.size();

  std::vector<std::vector<double>> treedist(n,
                                            std::vector<double>(m, 0.0));

  // Forest distance scratch, sized (n+1) x (m+1).
  std::vector<std::vector<double>> fd(n + 1, std::vector<double>(m + 1, 0.0));

  for (size_t ki : ta.keyroots) {
    for (size_t kj : tb.keyroots) {
      const size_t li = ta.leftmost[ki];
      const size_t lj = tb.leftmost[kj];

      fd[li][lj] = 0.0;
      for (size_t di = li; di <= ki; ++di) {
        fd[di + 1][lj] = fd[di][lj] + options.delete_cost;
      }
      for (size_t dj = lj; dj <= kj; ++dj) {
        fd[li][dj + 1] = fd[li][dj] + options.insert_cost;
      }
      for (size_t di = li; di <= ki; ++di) {
        for (size_t dj = lj; dj <= kj; ++dj) {
          const size_t ai = di;  // postorder index in a
          const size_t bj = dj;
          if (ta.leftmost[ai] == li && tb.leftmost[bj] == lj) {
            // Both forests are whole trees: full tree comparison.
            double rename =
                RenameCostOf(*ta.postorder[ai], *tb.postorder[bj], options);
            fd[di + 1][dj + 1] =
                std::min({fd[di][dj + 1] + options.delete_cost,
                          fd[di + 1][dj] + options.insert_cost,
                          fd[di][dj] + rename});
            treedist[ai][bj] = fd[di + 1][dj + 1];
          } else {
            const size_t pi = ta.leftmost[ai];  // forest cut points
            const size_t pj = tb.leftmost[bj];
            fd[di + 1][dj + 1] =
                std::min({fd[di][dj + 1] + options.delete_cost,
                          fd[di + 1][dj] + options.insert_cost,
                          fd[pi][pj] + treedist[ai][bj]});
          }
        }
      }
    }
  }
  return treedist[n - 1][m - 1];
}

double TedSimilarity(const xsd::SchemaNode& a, const xsd::SchemaNode& b,
                     const TedOptions& options) {
  double distance = TreeEditDistance(a, b, options);
  double denominator =
      static_cast<double>(a.SubtreeSize() + b.SubtreeSize());
  if (denominator <= 0.0) return 1.0;
  double sim = 1.0 - distance / denominator;
  return std::clamp(sim, 0.0, 1.0);
}

}  // namespace qmatch::match
