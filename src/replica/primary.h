#ifndef QMATCH_REPLICA_PRIMARY_H_
#define QMATCH_REPLICA_PRIMARY_H_

#include "core/engine.h"
#include "net/server.h"
#include "replica/log.h"

namespace qmatch::replica {

/// Wires a primary's mutation sources into a replication log, BEFORE the
/// server is constructed from `options`:
///   - the engine's ReplicationObserver appends cache/corpus journal
///     payloads (the exact bytes the local journal gets);
///   - the server's schema_observer appends schema registrations;
///   - options->replication_log points the server at the log so
///     kReplicaSubscribe connections can stream it.
///
/// The log must outlive both the engine and the server built from
/// `options`. Detach order on shutdown: server Stop() first (it clears the
/// log's listener), then the engine may be destroyed; the observers only
/// touch the log, which is still alive.
void AttachPrimary(core::MatchEngine* engine, net::ServerOptions* options,
                   ReplicationLog* log);

}  // namespace qmatch::replica

#endif  // QMATCH_REPLICA_PRIMARY_H_
