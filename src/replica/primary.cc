#include "replica/primary.h"

#include "persist/snapshot.h"
#include "replica/wire.h"

namespace qmatch::replica {

void AttachPrimary(core::MatchEngine* engine, net::ServerOptions* options,
                   ReplicationLog* log) {
  core::MatchEngine::ReplicationObserver observer;
  observer.cache = [log](const persist::CacheEntryRec& rec) {
    log->Append(static_cast<uint32_t>(RecordType::kCacheEntry),
                persist::EncodeCacheRecordPayload(rec));
  };
  observer.corpus = [log](const persist::CorpusEntryRec& rec) {
    log->Append(static_cast<uint32_t>(RecordType::kCorpusEntry),
                persist::EncodeCorpusRecordPayload(rec));
  };
  engine->SetReplicationObserver(std::move(observer));
  options->schema_observer = [log](const std::string& name,
                                   const std::string& xsd_text) {
    SchemaRec rec;
    rec.name = name;
    rec.xsd_text = xsd_text;
    log->Append(static_cast<uint32_t>(RecordType::kSchema),
                EncodeSchemaRecPayload(rec));
  };
  options->replication_log = log;
  options->role = net::Role::kPrimary;
}

}  // namespace qmatch::replica
