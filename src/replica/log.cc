#include "replica/log.h"

#include <utility>

#include "obs/obs.h"

namespace qmatch::replica {

ReplicationLog::ReplicationLog(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

uint64_t ReplicationLog::Append(uint32_t type, std::string payload) {
  std::function<void(uint64_t)> listener;
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = next_seq_++;
    records_.push_back(LogRecord{seq, type, std::move(payload)});
    while (records_.size() > capacity_) {
      records_.pop_front();
      QMATCH_COUNTER_ADD("replica.log_evicted", 1);
    }
    listener = listener_;
    // Invoked under the mutex by design (see header): SetListener(nullptr)
    // is then a barrier against in-flight notifications.
    if (listener) listener(seq);
  }
  QMATCH_COUNTER_ADD("replica.log_appends", 1);
  return seq;
}

uint64_t ReplicationLog::head_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - 1;
}

uint64_t ReplicationLog::base_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.empty() ? 0 : records_.front().seq;
}

bool ReplicationLog::Fetch(uint64_t from_seq, size_t max_records,
                           std::vector<LogRecord>* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // An empty log can serve any subscriber at or past the next sequence;
  // an earlier ask hits evicted (or never-written) territory only when
  // records have actually been dropped.
  const uint64_t base = records_.empty() ? next_seq_ : records_.front().seq;
  if (from_seq < base && from_seq < next_seq_) return false;
  for (const LogRecord& rec : records_) {
    if (rec.seq < from_seq) continue;
    if (out->size() >= max_records) break;
    out->push_back(rec);
  }
  return true;
}

void ReplicationLog::SetListener(std::function<void(uint64_t)> listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  listener_ = std::move(listener);
}

size_t ReplicationLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

}  // namespace qmatch::replica
