#include "replica/standby.h"

#include <algorithm>
#include <utility>

#include "fault/failpoint.h"
#include "net/client.h"
#include "net/resilient_client.h"
#include "obs/obs.h"
#include "persist/snapshot.h"

namespace qmatch::replica {

namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

/// Sleeps `pause` in small slices so a Stop() lands within ~20ms instead
/// of a full backoff period.
void InterruptibleSleep(nanoseconds pause, const std::atomic<bool>& stop) {
  const nanoseconds slice = milliseconds(20);
  while (pause.count() > 0 && !stop.load(std::memory_order_acquire)) {
    const nanoseconds chunk = std::min(pause, slice);
    std::this_thread::sleep_for(chunk);
    pause -= chunk;
  }
}

}  // namespace

Standby::Standby(core::MatchEngine* engine, net::Server* server,
                 StandbyOptions options)
    : engine_(engine), server_(server), options_(std::move(options)) {}

Standby::~Standby() { Stop(); }

Status Standby::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("standby already started");
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Standby::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  connected_.store(false, std::memory_order_release);
}

void Standby::Promote() {
  Stop();
  if (server_->role() != net::Role::kStandby) return;
  // Claim the next fencing epoch ON DISK before the role flips
  // (DESIGN.md §16): by the time this server can acknowledge a single
  // write as primary, a crash-restart of either node must already find
  // the bumped epoch. epoch_seen covers the case where this standby heard
  // of a newer epoch than it adopted — the claim is always strictly above
  // everything it has ever seen. A failed persist is counted inside
  // AdoptEpoch but does not veto the promotion: refusing to fail over
  // because the disk is full would trade availability for nothing (the
  // old primary is fenced by the wire protocol either way).
  const uint64_t next =
      std::max(server_->epoch(), server_->epoch_seen()) + 1;
  server_->AdoptEpoch(next);
  QMATCH_COUNTER_ADD("replica.promotions", 1);
  server_->SetRole(net::Role::kPrimary);
}

StandbyStats Standby::stats() const {
  StandbyStats s;
  s.applied_seq = applied_.load(std::memory_order_relaxed);
  s.head_seq = head_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.snapshots = snapshots_.load(std::memory_order_relaxed);
  s.records_applied = records_applied_.load(std::memory_order_relaxed);
  s.connected = connected_.load(std::memory_order_relaxed);
  return s;
}

void Standby::Run() {
  uint64_t failures = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    const bool progressed = StreamOnce();
    connected_.store(false, std::memory_order_release);
    server_->SetReplicaStatus(applied_.load(), head_.load(), false);
    if (stop_.load(std::memory_order_acquire)) break;
    failures = progressed ? 0 : failures + 1;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    QMATCH_COUNTER_ADD("replica.reconnects", 1);
    InterruptibleSleep(
        net::RetryBackoff(options_.backoff_base, options_.backoff_cap,
                          failures, options_.backoff_seed),
        stop_);
  }
}

bool Standby::StreamOnce() {
  Result<net::Client> client = net::Client::Connect(
      options_.primary_host, options_.primary_port, options_.read_timeout);
  if (!client.ok()) return false;
  SubscribeReq req;
  req.from_seq = applied_.load(std::memory_order_relaxed) + 1;
  req.epoch = server_->epoch();
  if (!client
           ->SendBytes(net::EncodeFrame(net::MsgType::kReplicaSubscribe,
                                        EncodeSubscribeReq(req)))
           .ok()) {
    return false;
  }
  bool progressed = false;
  // Epoch gate on every stream message: a mismatched sender is a dead
  // link. A HIGHER epoch is adopted first (with positions reset — the new
  // epoch's sequence space is a different history, so the resubscribe
  // re-anchors from a snapshot); a LOWER epoch is a stale primary whose
  // frames must never be applied.
  const auto epoch_ok = [this](uint64_t msg_epoch) {
    const uint64_t own = server_->epoch();
    if (msg_epoch == 0 || msg_epoch == own) return true;
    QMATCH_COUNTER_ADD("replica.stale_epoch_msgs", 1);
    if (msg_epoch > own) {
      applied_.store(0, std::memory_order_relaxed);
      head_.store(0, std::memory_order_relaxed);
      server_->AdoptEpoch(msg_epoch);
    }
    return false;
  };
  while (!stop_.load(std::memory_order_acquire)) {
    // Chaos handle: a fired replica.stream is a dead link at a seeded
    // point — the reconnect/resume path must make it invisible.
    if (QMATCH_FAILPOINT_FIRED("replica.stream")) {
      QMATCH_COUNTER_ADD("replica.stream_faults", 1);
      break;
    }
    Result<net::Frame> frame = client->ReadFrame();
    if (!frame.ok()) break;  // timeout past heartbeat cadence = dead link
    if (frame->type == static_cast<uint32_t>(net::MsgType::kReplicaRecords)) {
      RecordsMsg msg;
      if (!DecodeRecordsMsg(frame->payload, &msg)) {
        QMATCH_COUNTER_ADD("replica.undecodable_msgs", 1);
        break;
      }
      if (!epoch_ok(msg.epoch)) break;
      if (!ApplyRecords(msg)) break;
    } else if (frame->type ==
               static_cast<uint32_t>(net::MsgType::kReplicaSnapshot)) {
      SnapshotMsg msg;
      if (!DecodeSnapshotMsg(frame->payload, &msg)) {
        QMATCH_COUNTER_ADD("replica.undecodable_msgs", 1);
        break;
      }
      if (!epoch_ok(msg.epoch)) break;
      if (!ApplySnapshot(msg)) break;
    } else if (frame->type ==
               static_cast<uint32_t>(net::MsgType::kErrorResp)) {
      // Subscribe rejected. A head carrying a higher epoch is the
      // rejected-stream demotion trigger: a promoted primary turned us
      // away — adopt its epoch (lifting any fence on our server) and let
      // the resubscribe re-anchor in the new epoch's sequence space.
      net::ResponseHead head;
      if (net::DecodeResponseHead(frame->payload, &head) &&
          head.epoch > server_->epoch()) {
        QMATCH_COUNTER_ADD("replica.stream_epoch_adoptions", 1);
        applied_.store(0, std::memory_order_relaxed);
        head_.store(0, std::memory_order_relaxed);
        server_->AdoptEpoch(head.epoch);
      }
      break;
    } else {
      // An unexpected frame: treat as a dead link and let the backoff
      // loop decide how soon to try again.
      break;
    }
    progressed = true;
    // Connected is reported only after a message applied: before that the
    // standby cannot know its lag, so /readyz must not say ready.
    connected_.store(true, std::memory_order_release);
    server_->SetReplicaStatus(applied_.load(), head_.load(), true);
  }
  return progressed;
}

bool Standby::ApplyRecords(const RecordsMsg& msg) {
  const uint64_t applied_before = applied_.load(std::memory_order_relaxed);
  if (msg.head_seq < applied_before) {
    // Epoch change: the primary's sequence space is YOUNGER than what this
    // standby already applied — it restarted (or we failed back to a
    // different node). Reset and re-anchor from a snapshot rather than
    // serve a divergent history.
    QMATCH_COUNTER_ADD("replica.epoch_resets", 1);
    applied_.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
    return false;
  }
  uint64_t applied = applied_before;
  for (const LogRecord& rec : msg.records) {
    if (rec.seq <= applied) continue;  // overlap with a snapshot: idempotent
    if (rec.seq != applied + 1) {
      // A hole in the stream (missed wakeup, primary-side eviction race):
      // never apply out of order — resubscribe from applied + 1 instead.
      QMATCH_COUNTER_ADD("replica.gaps", 1);
      applied_.store(applied, std::memory_order_relaxed);
      return false;
    }
    if (!ApplyOne(rec.type, rec.payload)) {
      QMATCH_COUNTER_ADD("replica.undecodable_records", 1);
      applied_.store(applied, std::memory_order_relaxed);
      return false;
    }
    applied = rec.seq;
    records_applied_.fetch_add(1, std::memory_order_relaxed);
    QMATCH_COUNTER_ADD("replica.records_applied", 1);
  }
  applied_.store(applied, std::memory_order_relaxed);
  head_.store(std::max(msg.head_seq, applied), std::memory_order_relaxed);
  return true;
}

bool Standby::ApplySnapshot(const SnapshotMsg& msg) {
  // Wholesale last-wins apply: the anchor is the primary's full state at
  // next_seq - 1, so the position is taken from the message even when it
  // moves backwards (epoch change after a primary restart).
  for (const SchemaRec& rec : msg.schemas) {
    const Status registered =
        server_->RegisterSchema(rec.name, rec.xsd_text, /*replicated=*/true);
    if (!registered.ok()) {
      // The primary parsed this text; a standby that cannot is running a
      // divergent build. Count loudly and keep the stream alive.
      QMATCH_COUNTER_ADD("replica.schema_apply_errors", 1);
    }
  }
  for (const std::string& payload : msg.cache_payloads) {
    persist::CacheEntryRec rec;
    if (!persist::DecodeCacheRecordPayload(payload, &rec)) {
      QMATCH_COUNTER_ADD("replica.undecodable_records", 1);
      return false;
    }
    engine_->ApplyReplicatedCacheEntry(rec);
  }
  for (const std::string& payload : msg.corpus_payloads) {
    persist::CorpusEntryRec rec;
    if (!persist::DecodeCorpusRecordPayload(payload, &rec)) {
      QMATCH_COUNTER_ADD("replica.undecodable_records", 1);
      return false;
    }
    engine_->ApplyReplicatedCorpusEntry(rec);
  }
  applied_.store(msg.next_seq > 0 ? msg.next_seq - 1 : 0,
                 std::memory_order_relaxed);
  head_.store(std::max(head_.load(std::memory_order_relaxed),
                       applied_.load(std::memory_order_relaxed)),
              std::memory_order_relaxed);
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  QMATCH_COUNTER_ADD("replica.snapshots", 1);
  return true;
}

bool Standby::ApplyOne(uint32_t type, const std::string& payload) {
  switch (static_cast<RecordType>(type)) {
    case RecordType::kCacheEntry: {
      persist::CacheEntryRec rec;
      if (!persist::DecodeCacheRecordPayload(payload, &rec)) return false;
      engine_->ApplyReplicatedCacheEntry(rec);
      return true;
    }
    case RecordType::kCorpusEntry: {
      persist::CorpusEntryRec rec;
      if (!persist::DecodeCorpusRecordPayload(payload, &rec)) return false;
      engine_->ApplyReplicatedCorpusEntry(rec);
      return true;
    }
    case RecordType::kSchema: {
      SchemaRec rec;
      if (!DecodeSchemaRecPayload(payload, &rec)) return false;
      const Status registered =
          server_->RegisterSchema(rec.name, rec.xsd_text, /*replicated=*/true);
      if (!registered.ok()) {
        QMATCH_COUNTER_ADD("replica.schema_apply_errors", 1);
      }
      return true;  // a bad schema is counted, not fatal to the stream
    }
  }
  // Unknown record types are skipped, not fatal: a newer primary may ship
  // types this build does not know, and last-wins replay tolerates holes
  // in UNDERSTANDING as long as sequence order is kept.
  QMATCH_COUNTER_ADD("replica.unknown_record_types", 1);
  return true;
}

}  // namespace qmatch::replica
