#ifndef QMATCH_REPLICA_LOG_H_
#define QMATCH_REPLICA_LOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace qmatch::replica {

/// One replicated state mutation: a persist-layer record payload (or a
/// schema registration) stamped with a monotone sequence number. `payload`
/// is exactly the bytes the primary's journal holds for the same mutation
/// (persist::Encode*RecordPayload), so a standby that applies the stream is
/// bit-identical to one that replayed the journal.
struct LogRecord {
  uint64_t seq = 0;
  uint32_t type = 0;  ///< replica::RecordType (wire.h)
  std::string payload;
};

/// Bounded in-memory ring of the primary's recent durable mutations — the
/// replication stream's source of truth (DESIGN.md §15).
///
/// Sequence 1 is the reserved genesis position and is never stored; the
/// first Append is assigned 2. A brand-new subscriber asking from 1
/// therefore ALWAYS gets `Fetch() == false` and takes a snapshot anchor
/// first — which is what makes state the primary held before this log
/// existed (a warm-started cache, a recovered corpus, preloaded schemas)
/// reach the standby at all. From there the ring retains the most recent
/// `capacity` records; a subscriber asking for an evicted sequence is
/// anchored the same way, then resumes from the log — the classic
/// snapshot-plus-log catch-up.
///
/// Thread-safe. The listener (the server's "new records available" wakeup)
/// is invoked UNDER the log mutex, so `SetListener(nullptr)` doubles as a
/// barrier: once it returns, no further listener call is in flight — the
/// server uses that to tear down safely.
class ReplicationLog {
 public:
  explicit ReplicationLog(size_t capacity = 8192);

  ReplicationLog(const ReplicationLog&) = delete;
  ReplicationLog& operator=(const ReplicationLog&) = delete;

  /// Appends one record, assigns its sequence number and wakes the
  /// listener. Returns the assigned sequence.
  uint64_t Append(uint32_t type, std::string payload);

  /// Highest sequence ever assigned (the genesis 1 when nothing has been
  /// appended yet).
  uint64_t head_seq() const;

  /// Oldest sequence still retained (0 when the log is empty). A
  /// subscriber whose `from_seq` is below this cannot catch up from the
  /// log alone.
  uint64_t base_seq() const;

  /// Copies records with seq >= from_seq (at most max_records) into *out.
  /// Returns false when from_seq predates base_seq() — the gap was
  /// evicted; the caller must ship a snapshot anchor. from_seq past the
  /// head returns true with an empty batch (caught up).
  bool Fetch(uint64_t from_seq, size_t max_records,
             std::vector<LogRecord>* out) const;

  /// Replaces the append wakeup (nullptr detaches). Called under the log
  /// mutex with the new head sequence; must not call back into the log.
  void SetListener(std::function<void(uint64_t head_seq)> listener);

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<LogRecord> records_;  // guarded by mutex_, seq-ordered
  uint64_t next_seq_ = 2;          // guarded by mutex_; 1 is the genesis
  std::function<void(uint64_t)> listener_;  // guarded by mutex_
};

}  // namespace qmatch::replica

#endif  // QMATCH_REPLICA_LOG_H_
