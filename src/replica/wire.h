#ifndef QMATCH_REPLICA_WIRE_H_
#define QMATCH_REPLICA_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "replica/log.h"

namespace qmatch::replica {

/// Replicated record types. Values 1 and 2 are persist::RecordType's
/// kCacheEntry/kCorpusEntry on purpose: their payloads ARE the journal
/// record payloads (persist::Encode*RecordPayload), shipped unmodified.
/// kSchema is replication-only — schemas live in the server's in-memory
/// registry, not the persist store, but a warm standby needs them to
/// answer its first request without re-submission.
enum class RecordType : uint32_t {
  kCacheEntry = 1,
  kCorpusEntry = 2,
  kSchema = 3,
};

/// One replicated schema registration: the name plus the exact XSD text it
/// was parsed from (the standby re-parses, so fingerprints agree).
struct SchemaRec {
  std::string name;
  std::string xsd_text;

  friend bool operator==(const SchemaRec&, const SchemaRec&) = default;
};

std::string EncodeSchemaRecPayload(const SchemaRec& rec);
bool DecodeSchemaRecPayload(std::string_view payload, SchemaRec* out);

// ---------------------------------------------------------------------------
// Frame payloads of the replication stream (net::MsgType kReplicaSubscribe /
// kReplicaRecords / kReplicaSnapshot). Same codec discipline as the rest of
// the protocol: persist::Encoder wire format, hostile counts rejected
// before any reserve.
// ---------------------------------------------------------------------------

/// Standby -> primary: stream me everything from `from_seq` on. Sent once
/// per connection; the primary answers with either a kReplicaSnapshot
/// anchor (from_seq predates its log) or directly with kReplicaRecords
/// batches, then keeps pushing as new records land.
struct SubscribeReq {
  uint64_t from_seq = 1;
  /// The subscriber's fencing epoch (DESIGN.md §16). A primary rejects
  /// subscriptions from a HIGHER epoch (and fences itself — the handshake
  /// is one of the three demotion triggers) and from a LOWER epoch (the
  /// subscriber must adopt the new epoch and resubscribe).
  uint64_t epoch = 0;
};

/// Primary -> standby: a batch of consecutive log records plus the
/// primary's current head (the standby's lag gauge = head_seq - applied).
/// An empty batch is a heartbeat — it carries the head so lag stays
/// truthful while the stream idles, and it proves liveness.
struct RecordsMsg {
  uint64_t head_seq = 0;
  /// The sender's fencing epoch; a standby drops batches from a stale
  /// epoch instead of applying them.
  uint64_t epoch = 0;
  std::vector<LogRecord> records;
};

/// Primary -> standby: a full-state anchor. Everything the primary knows,
/// captured at `next_seq` (records with seq >= next_seq may overlap the
/// state — replay is idempotent last-wins, same as journal-over-snapshot).
/// The standby applies it wholesale, sets applied = next_seq - 1 and keeps
/// reading records.
struct SnapshotMsg {
  uint64_t next_seq = 1;
  /// The sender's fencing epoch; a standby refuses to anchor on a stale
  /// epoch's snapshot.
  uint64_t epoch = 0;
  std::vector<SchemaRec> schemas;
  /// Encoded persist record payloads (cache then corpus), exactly what the
  /// primary's snapshot file would hold.
  std::vector<std::string> cache_payloads;
  std::vector<std::string> corpus_payloads;
};

std::string EncodeSubscribeReq(const SubscribeReq& req);
std::string EncodeRecordsMsg(const RecordsMsg& msg);
std::string EncodeSnapshotMsg(const SnapshotMsg& msg);
bool DecodeSubscribeReq(std::string_view payload, SubscribeReq* out);
bool DecodeRecordsMsg(std::string_view payload, RecordsMsg* out);
bool DecodeSnapshotMsg(std::string_view payload, SnapshotMsg* out);

}  // namespace qmatch::replica

#endif  // QMATCH_REPLICA_WIRE_H_
