#include "replica/wire.h"

#include <utility>

#include "persist/wire.h"

namespace qmatch::replica {

using persist::Decoder;
using persist::Encoder;

std::string EncodeSchemaRecPayload(const SchemaRec& rec) {
  Encoder enc;
  enc.PutString(rec.name);
  enc.PutString(rec.xsd_text);
  return enc.Take();
}

bool DecodeSchemaRecPayload(std::string_view payload, SchemaRec* out) {
  Decoder dec(payload);
  return dec.GetString(&out->name) && dec.GetString(&out->xsd_text) &&
         dec.remaining() == 0;
}

std::string EncodeSubscribeReq(const SubscribeReq& req) {
  Encoder enc;
  enc.PutU64(req.from_seq);
  enc.PutU64(req.epoch);
  return enc.Take();
}

bool DecodeSubscribeReq(std::string_view payload, SubscribeReq* out) {
  Decoder dec(payload);
  return dec.GetU64(&out->from_seq) && dec.GetU64(&out->epoch) &&
         dec.remaining() == 0;
}

std::string EncodeRecordsMsg(const RecordsMsg& msg) {
  Encoder enc;
  enc.PutU64(msg.head_seq);
  enc.PutU64(msg.epoch);
  enc.PutU32(static_cast<uint32_t>(msg.records.size()));
  for (const LogRecord& rec : msg.records) {
    enc.PutU64(rec.seq);
    enc.PutU32(rec.type);
    enc.PutString(rec.payload);
  }
  return enc.Take();
}

bool DecodeRecordsMsg(std::string_view payload, RecordsMsg* out) {
  Decoder dec(payload);
  uint32_t count = 0;
  if (!dec.GetU64(&out->head_seq) || !dec.GetU64(&out->epoch) ||
      !dec.GetU32(&count)) {
    return false;
  }
  // Each record costs at least seq + type + an empty payload's length
  // field — a hostile count cannot buy a giant reserve.
  if (static_cast<size_t>(count) * (8 + 4 + 4) > dec.remaining()) return false;
  out->records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LogRecord rec;
    std::string body;
    if (!dec.GetU64(&rec.seq) || !dec.GetU32(&rec.type) ||
        !dec.GetString(&body)) {
      return false;
    }
    rec.payload = std::move(body);
    out->records.push_back(std::move(rec));
  }
  return dec.remaining() == 0;
}

std::string EncodeSnapshotMsg(const SnapshotMsg& msg) {
  Encoder enc;
  enc.PutU64(msg.next_seq);
  enc.PutU64(msg.epoch);
  enc.PutU32(static_cast<uint32_t>(msg.schemas.size()));
  for (const SchemaRec& rec : msg.schemas) {
    enc.PutString(rec.name);
    enc.PutString(rec.xsd_text);
  }
  enc.PutU32(static_cast<uint32_t>(msg.cache_payloads.size()));
  for (const std::string& payload : msg.cache_payloads) {
    enc.PutString(payload);
  }
  enc.PutU32(static_cast<uint32_t>(msg.corpus_payloads.size()));
  for (const std::string& payload : msg.corpus_payloads) {
    enc.PutString(payload);
  }
  return enc.Take();
}

bool DecodeSnapshotMsg(std::string_view payload, SnapshotMsg* out) {
  Decoder dec(payload);
  uint32_t count = 0;
  if (!dec.GetU64(&out->next_seq) || !dec.GetU64(&out->epoch) ||
      !dec.GetU32(&count)) {
    return false;
  }
  if (static_cast<size_t>(count) * (4 + 4) > dec.remaining()) return false;
  out->schemas.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SchemaRec rec;
    if (!dec.GetString(&rec.name) || !dec.GetString(&rec.xsd_text)) {
      return false;
    }
    out->schemas.push_back(std::move(rec));
  }
  if (!dec.GetU32(&count)) return false;
  if (static_cast<size_t>(count) * 4 > dec.remaining()) return false;
  out->cache_payloads.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string body;
    if (!dec.GetString(&body)) return false;
    out->cache_payloads.push_back(std::move(body));
  }
  if (!dec.GetU32(&count)) return false;
  if (static_cast<size_t>(count) * 4 > dec.remaining()) return false;
  out->corpus_payloads.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string body;
    if (!dec.GetString(&body)) return false;
    out->corpus_payloads.push_back(std::move(body));
  }
  return dec.remaining() == 0;
}

}  // namespace qmatch::replica
