#ifndef QMATCH_REPLICA_STANDBY_H_
#define QMATCH_REPLICA_STANDBY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "core/engine.h"
#include "net/server.h"
#include "replica/wire.h"

namespace qmatch::replica {

struct StandbyOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;

  /// Per-frame read timeout. MUST exceed the primary's heartbeat cadence
  /// (ServerOptions::replica_heartbeat, default 200ms), or a healthy idle
  /// stream reads as dead; it also bounds how long Stop() waits for the
  /// replication thread to notice the flag.
  std::chrono::milliseconds read_timeout{1000};

  /// Reconnect backoff (same jittered exponential schedule as the
  /// resilient client, deterministic under the seed).
  std::chrono::milliseconds backoff_base{50};
  std::chrono::milliseconds backoff_cap{1000};
  uint64_t backoff_seed = 0;
};

struct StandbyStats {
  uint64_t applied_seq = 0;
  uint64_t head_seq = 0;
  uint64_t reconnects = 0;
  uint64_t snapshots = 0;
  uint64_t records_applied = 0;
  bool connected = false;
};

/// The warm-standby side of replication (DESIGN.md §15): a thread that
/// subscribes to the primary's stream and continuously applies it — cache
/// records and corpus/breaker records into the local engine (which also
/// journals them, so the standby's own persist store stays promotable),
/// schema registrations into the local server.
///
/// Correctness rules, in order of appearance:
///   - resume: each (re)subscription asks from applied_seq + 1, so nothing
///     is skipped and nothing needs the primary to track subscriber state;
///   - gaps: a record batch that does not continue applied_seq + 1 exactly
///     forces a reconnect (the resubscribe then either replays from the
///     log or gets a snapshot anchor) — records are never applied out of
///     order;
///   - snapshots: applied wholesale; overlap with subsequent records is
///     harmless because every record type is an idempotent last-wins
///     upsert, the same contract journal-over-snapshot replay relies on;
///   - epoch change: a primary whose head is BEHIND what this standby
///     already applied is a younger primary (restart, failback). The
///     standby resets to 0 and re-anchors rather than serve a divergent
///     sequence space.
///
/// After every applied message the standby reports its position to the
/// server (SetReplicaStatus), which is what makes /readyz truthful.
///
/// Promote() stops replication and flips the server to primary — the
/// engine already holds the replicated state, so the first request after
/// promotion is warm.
class Standby {
 public:
  /// `engine` and `server` are borrowed and must outlive the standby.
  Standby(core::MatchEngine* engine, net::Server* server,
          StandbyOptions options);
  ~Standby();

  Standby(const Standby&) = delete;
  Standby& operator=(const Standby&) = delete;

  /// Starts the replication thread. Call once.
  Status Start();

  /// Stops and joins the replication thread. Idempotent.
  void Stop();

  /// Stops replication, claims the next fencing epoch (persisted to disk
  /// BEFORE the role flips — DESIGN.md §16) and promotes the server to
  /// primary. Idempotent. The caller decides WHEN (health checks, an
  /// operator, SIGUSR1); this only makes the flip safe and orderly.
  void Promote();

  StandbyStats stats() const;

 private:
  void Run();
  /// One connect + subscribe + read-until-error session. Returns true if
  /// at least one message was applied (resets the backoff).
  bool StreamOnce();
  bool ApplyRecords(const RecordsMsg& msg);
  bool ApplySnapshot(const SnapshotMsg& msg);
  bool ApplyOne(uint32_t type, const std::string& payload);

  core::MatchEngine* const engine_;
  net::Server* const server_;
  const StandbyOptions options_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<uint64_t> records_applied_{0};
  std::atomic<bool> connected_{false};
};

}  // namespace qmatch::replica

#endif  // QMATCH_REPLICA_STANDBY_H_
