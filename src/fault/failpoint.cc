#include "fault/failpoint.h"

#include <thread>
#include <utility>

#include "obs/obs.h"

namespace qmatch::fault {

std::string_view FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kError:
      return "error";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kThrow:
      return "throw";
  }
  return "unknown";
}

Status Failpoint::Evaluate() {
  FaultSpec fired_spec;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // armed_ may have flipped between the call site's fast-path check and
    // acquiring the lock; a disarmed failpoint must not count hits.
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    ++hits_;
    bool eligible =
        spec_.fire_on_nth_hit == 0 || hits_ == spec_.fire_on_nth_hit;
    if (eligible && fires_ >= spec_.max_fires) eligible = false;
    if (eligible && spec_.probability < 1.0) {
      eligible = rng_.Bernoulli(spec_.probability);
    }
    if (!eligible) return Status::OK();
    ++fires_;
    fired_spec = spec_;
  }
  QMATCH_COUNTER_ADD("fault.fires", 1);
  switch (fired_spec.action) {
    case FaultAction::kDelay:
      std::this_thread::sleep_for(fired_spec.delay);
      return Status::OK();
    case FaultAction::kThrow:
      throw FailpointException(fired_spec.message.empty()
                                   ? "failpoint '" + name_ + "' fired"
                                   : fired_spec.message);
    case FaultAction::kError:
      break;
  }
  return Status(fired_spec.code,
                fired_spec.message.empty()
                    ? "failpoint '" + name_ + "' fired"
                    : fired_spec.message);
}

FailpointStats Failpoint::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return FailpointStats{hits_, fires_};
}

void Failpoint::Arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_ = Random(spec.seed);
  hits_ = 0;
  fires_ = 0;
  spec_ = std::move(spec);
  armed_.store(true, std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

Failpoint& FaultRegistry::Get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_
             .emplace(std::string(name),
                      std::make_unique<Failpoint>(std::string(name)))
             .first;
  }
  return *it->second;
}

void FaultRegistry::Arm(std::string_view name, FaultSpec spec) {
  Get(name).Arm(std::move(spec));
}

void FaultRegistry::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(name);
  if (it != points_.end()) it->second->Disarm();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, point] : points_) point->Disarm();
}

FailpointStats FaultRegistry::Stats(std::string_view name) {
  return Get(name).stats();
}

std::vector<std::string> FaultRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

}  // namespace qmatch::fault
