#ifndef QMATCH_FAULT_FAILPOINT_H_
#define QMATCH_FAULT_FAILPOINT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"

/// Compile-time kill switch for the fault-injection framework, mirroring
/// QMATCH_OBS_ENABLED. The build defines QMATCH_FAULT_ENABLED=0
/// (cmake -DQMATCH_FAULT=OFF) to macro-noop every QMATCH_FAILPOINT site:
/// no registry lookups, no atomic loads — production builds carry zero
/// fault-injection code. The fault classes themselves always compile.
#ifndef QMATCH_FAULT_ENABLED
#define QMATCH_FAULT_ENABLED 1
#endif

namespace qmatch::fault {

/// What an armed failpoint does when it fires.
enum class FaultAction {
  /// Surface a non-OK Status at QMATCH_FAILPOINT_RETURN /
  /// QMATCH_FAILPOINT_FIRED sites (plain QMATCH_FAILPOINT sites ignore it).
  kError,
  /// Sleep for `FaultSpec::delay` — simulates a slow dependency; never
  /// produces an error.
  kDelay,
  /// Throw FailpointException — exercises the exception containment of the
  /// thread pool and the engine's typed-status contract.
  kThrow,
};

std::string_view FaultActionName(FaultAction action);

/// Arming parameters of one failpoint. Every random decision derives from
/// `seed` through a private PRNG stream, so a schedule replays exactly
/// given the same hit sequence.
struct FaultSpec {
  FaultAction action = FaultAction::kError;

  /// Chance that an eligible hit fires (evaluated on the seeded stream).
  double probability = 1.0;

  /// Seed of this failpoint's private PRNG stream.
  uint64_t seed = 0x5EEDF417ULL;

  /// 0 = every hit is eligible; N > 0 = only the Nth hit since arming
  /// (1-based) is eligible — "fail exactly the third lookup".
  uint64_t fire_on_nth_hit = 0;

  /// Firing stops (the failpoint stays armed but inert) after this many
  /// fires — "the first two loads fail, the retry succeeds".
  uint64_t max_fires = UINT64_MAX;

  /// Sleep duration of the kDelay action.
  std::chrono::milliseconds delay{0};

  /// Status code / message of the kError action (and the exception text of
  /// kThrow). Empty message = "failpoint '<name>' fired".
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

/// Hit/fire accounting of one failpoint since it was last armed. Hits are
/// only counted while armed — a disarmed failpoint is a single relaxed
/// atomic load at the call site.
struct FailpointStats {
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// Thrown by the kThrow action.
class FailpointException : public std::runtime_error {
 public:
  explicit FailpointException(std::string message)
      : std::runtime_error(std::move(message)) {}
};

/// One named injection site. Call sites hold a stable reference (via the
/// QMATCH_FAILPOINT macros' function-local static) and test the `armed()`
/// fast path before paying for Evaluate().
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  /// Fast-path test: false means the failpoint is inert and Evaluate()
  /// must be skipped (one relaxed load, the entire disarmed cost).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Full evaluation of an armed failpoint: counts the hit, rolls the
  /// seeded dice, and on fire performs the action — sleeps (kDelay),
  /// throws (kThrow), or returns the configured non-OK Status (kError).
  /// Returns OK when the failpoint did not fire or fired with kDelay.
  Status Evaluate();

  FailpointStats stats() const;

 private:
  friend class FaultRegistry;

  void Arm(FaultSpec spec);
  void Disarm();

  std::string name_;
  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  FaultSpec spec_;         // guarded by mutex_
  Random rng_{0};          // guarded by mutex_
  uint64_t hits_ = 0;      // guarded by mutex_
  uint64_t fires_ = 0;     // guarded by mutex_
};

/// Process-wide failpoint registry. `Get` returns a stable reference that
/// lives as long as the process (same contract as obs::Registry), so call
/// sites cache it in a function-local static and never touch the registry
/// lock again. Tests arm/disarm by name, typically via ScopedFailpoint.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Returns (creating on demand, disarmed) the named failpoint.
  Failpoint& Get(std::string_view name);

  /// Arms `name` with `spec`, resetting its hit/fire counters and seeding
  /// its PRNG stream from `spec.seed`.
  void Arm(std::string_view name, FaultSpec spec);

  /// Disarms `name` (a no-op for unknown names). Stats survive until the
  /// next Arm so tests can assert on them after the run.
  void Disarm(std::string_view name);

  /// Disarms every registered failpoint — chaos-test teardown.
  void DisarmAll();

  FailpointStats Stats(std::string_view name);

  /// Names of every failpoint that has ever been referenced (armed or
  /// not), sorted — the failpoint catalog.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> points_;
};

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor so a failing assertion cannot leak an armed failpoint into
/// the next test.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FaultSpec spec) : name_(std::move(name)) {
    FaultRegistry::Global().Arm(name_, std::move(spec));
  }
  ~ScopedFailpoint() { FaultRegistry::Global().Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& name() const { return name_; }
  FailpointStats stats() const { return FaultRegistry::Global().Stats(name_); }

 private:
  std::string name_;
};

}  // namespace qmatch::fault

#if QMATCH_FAULT_ENABLED

/// Marks an injection site. An armed failpoint may sleep or throw here; a
/// fired kError action is ignored (use the _RETURN/_FIRED forms where an
/// error can be surfaced). `name` must be a string literal.
#define QMATCH_FAILPOINT(name)                                   \
  do {                                                           \
    static ::qmatch::fault::Failpoint& _qm_failpoint =           \
        ::qmatch::fault::FaultRegistry::Global().Get(name);      \
    if (_qm_failpoint.armed()) (void)_qm_failpoint.Evaluate();   \
  } while (0)

/// Injection site in a function returning Status or Result<T>: a fired
/// kError action returns the configured Status from the enclosing function.
#define QMATCH_FAILPOINT_RETURN(name)                            \
  do {                                                           \
    static ::qmatch::fault::Failpoint& _qm_failpoint =           \
        ::qmatch::fault::FaultRegistry::Global().Get(name);      \
    if (_qm_failpoint.armed()) {                                 \
      ::qmatch::Status _qm_failpoint_status =                    \
          _qm_failpoint.Evaluate();                              \
      if (!_qm_failpoint_status.ok()) return _qm_failpoint_status; \
    }                                                            \
  } while (0)

/// Expression form: true when the failpoint fired with the kError action —
/// for sites that degrade gracefully instead of propagating a Status (the
/// engine result cache treats a fired lookup as a miss).
#define QMATCH_FAILPOINT_FIRED(name)                             \
  ([]() -> bool {                                                \
    static ::qmatch::fault::Failpoint& _qm_failpoint =           \
        ::qmatch::fault::FaultRegistry::Global().Get(name);      \
    return _qm_failpoint.armed() && !_qm_failpoint.Evaluate().ok(); \
  }())

#else  // !QMATCH_FAULT_ENABLED

#define QMATCH_FAILPOINT(name) \
  do {                         \
  } while (0)
#define QMATCH_FAILPOINT_RETURN(name) \
  do {                                \
  } while (0)
#define QMATCH_FAILPOINT_FIRED(name) (false)

#endif  // QMATCH_FAULT_ENABLED

#endif  // QMATCH_FAULT_FAILPOINT_H_
