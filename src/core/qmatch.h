#ifndef QMATCH_CORE_QMATCH_H_
#define QMATCH_CORE_QMATCH_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/memory_budget.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "lingua/thesaurus.h"
#include "match/matcher.h"
#include "match/soa_kernel.h"
#include "qom/pair_qom.h"
#include "qom/taxonomy.h"
#include "xsd/schema.h"

namespace qmatch::core {

/// The per-node-pair QoM decomposition now lives in the qom layer (both
/// table-fill kernels produce it); the alias keeps every existing
/// `core::PairQoM` reference working.
using PairQoM = qom::PairQoM;

/// Degradation controls for one TreeMatch evaluation (see MatchMode). The
/// default (kFull) is byte-for-byte the undegraded algorithm.
struct TreeMatchOptions {
  MatchMode mode = MatchMode::kFull;
  /// kCappedDepth only: nodes at this level or deeper are treated as
  /// leaves on the children axis (their subtrees are not recursed into).
  size_t children_depth_cap = 3;
  /// Which table-fill implementation runs (DESIGN.md §13). Both produce
  /// bit-identical tables; unset defers to the QMATCH_KERNEL environment
  /// variable (default: the SoA kernel). Tests pin it explicitly to gate
  /// both implementations against the same goldens.
  std::optional<match::KernelKind> kernel;
  /// Budget (borrowed, nullable) the SoA kernel's scratch arena charges
  /// block-by-block; exhaustion throws ArenaExhausted, which the engine
  /// maps to kResourceExhausted. The tree kernel allocates no scratch and
  /// ignores it.
  MemoryBudget* arena_budget = nullptr;
};

/// QMatch — the paper's hybrid match algorithm (Section 4, Fig. 3).
///
/// A recursive depth-first evaluation that combines the linguistic label
/// matcher, the property matcher (types on the XSD lattice, order,
/// occurrence constraints), the level axis and the recursively computed
/// children axis into one weighted QoM per node pair:
///
///   QoM(n1,n2) = WL·QoM_L + WP·QoM_P + WH·QoM_H + WC·QoM_C
///   QoM_C      = (Rw + Rs) / 2                              (Eq. 5)
///
/// where Rw is the normalised sum of child-pair QoMs above the threshold
/// (Eq. 3) and Rs the matched-children cardinality ratio (Eq. 4). The
/// implementation memoises the pairwise table bottom-up, giving the O(n·m)
/// evaluation count the paper claims for TreeMatch.
///
/// Children-axis edge cases (under-specified in the paper, see DESIGN.md):
///  - leaf vs leaf: exact children match by default (QoM_C = 1);
///  - leaf source vs non-leaf target: vacuously total coverage (the source
///    has no children to leave uncovered) but never exact;
///  - non-leaf source vs leaf target: no coverage (QoM_C = 0).
class QMatch : public Matcher {
 public:
  /// Uses the built-in default thesaurus and paper-default configuration.
  QMatch();
  explicit QMatch(QMatchConfig config);
  /// `thesaurus` is borrowed (may be null to disable the linguistic
  /// resource) and must outlive the matcher.
  QMatch(QMatchConfig config, const lingua::Thesaurus* thesaurus);

  std::string_view name() const override { return "hybrid"; }

  const QMatchConfig& config() const { return config_; }

  MatchResult Match(const xsd::Schema& source,
                    const xsd::Schema& target) const override;

  /// Same as Match, filling the pairwise QoM table across `pool` (nullptr
  /// or an empty pool = sequential). Bit-identical to the sequential path
  /// for every pool size: the table is sharded by source row within one
  /// source *level* at a time, which preserves the bottom-up memoisation
  /// (a pair only reads child pairs, and children live on deeper levels
  /// that are fully filled before the level starts), and each pair's
  /// arithmetic is untouched. See DESIGN.md "Parallel execution model".
  MatchResult Match(const xsd::Schema& source, const xsd::Schema& target,
                    ThreadPool* pool) const;

  /// The raw weighted QoM per pair (Eq. 1), before the label-evidence gate
  /// and mapping selection.
  match::SimilarityMatrix Similarity(const xsd::Schema& source,
                                     const xsd::Schema& target) const override;

  /// Pool-parallel variant of Similarity (same determinism contract as the
  /// three-argument Match).
  match::SimilarityMatrix Similarity(const xsd::Schema& source,
                                     const xsd::Schema& target,
                                     ThreadPool* pool) const;

  /// Full per-pair analysis of one match run. The returned object borrows
  /// nodes from both schemas, which must outlive it.
  class Analysis {
   public:
    /// The standard result (schema QoM + correspondences).
    const MatchResult& result() const { return result_; }

    /// Moves the result out, leaving the analysis without one — the
    /// engine's typed-request path uses this to avoid copying the
    /// correspondence vector.
    MatchResult TakeResult() { return std::move(result_); }

    /// The QoM decomposition of a specific node pair, or nullptr when
    /// either node is not part of the analysed schemas.
    const PairQoM* Pair(const xsd::SchemaNode* source,
                        const xsd::SchemaNode* target) const;

    /// Convenience path-based lookup ("/PO/PurchaseInfo", "/PurchaseOrder").
    const PairQoM* PairByPath(std::string_view source_path,
                              std::string_view target_path) const;

    /// The root-pair decomposition (the tree match of Section 3).
    const PairQoM& Root() const;

    /// Multi-line, human-readable explanation of every reported
    /// correspondence: the per-axis scores and classifications plus the
    /// taxonomy category, sorted by descending QoM.
    std::string ExplainCorrespondences() const;

    /// Count of reported correspondences per taxonomy category (the
    /// qualitative summary of Section 2.2). Keys with zero count are
    /// omitted.
    std::map<qom::MatchCategory, size_t> CategoryHistogram() const;

    /// Why the table fill stopped early (kNone = ran to completion). Only
    /// ever non-kNone when an ExecControl was passed to Analyze.
    StopReason stop_reason() const { return stop_reason_; }

    /// Source rows whose entire table row was computed. Equal to
    /// total_rows() on a completed run; on a stopped run, correspondences
    /// are extracted from these rows only (see DESIGN.md §10 for the
    /// partial-result contract).
    size_t completed_rows() const { return completed_rows_; }
    size_t total_rows() const { return source_nodes_.size(); }

   private:
    friend class QMatch;
    std::vector<const xsd::SchemaNode*> source_nodes_;
    std::vector<const xsd::SchemaNode*> target_nodes_;
    std::map<const xsd::SchemaNode*, size_t> source_index_;
    std::map<const xsd::SchemaNode*, size_t> target_index_;
    std::vector<PairQoM> table_;  // source-major, size n*m
    MatchResult result_;
    const xsd::Schema* source_schema_ = nullptr;
    const xsd::Schema* target_schema_ = nullptr;
    StopReason stop_reason_ = StopReason::kNone;
    size_t completed_rows_ = 0;
  };

  Analysis Analyze(const xsd::Schema& source, const xsd::Schema& target) const;

  /// Pool-parallel variant (nullptr = sequential; see the three-argument
  /// Match for the determinism contract).
  Analysis Analyze(const xsd::Schema& source, const xsd::Schema& target,
                   ThreadPool* pool) const;

  /// Deadline/cancellation-aware variant: `control` (nullable) is polled at
  /// node-pair granularity during the table fill. When it trips, the fill
  /// stops cooperatively and the returned Analysis carries stop_reason()
  /// plus a *monotone partial result*: correspondences are extracted only
  /// from fully completed source rows, whose cells are bit-identical to the
  /// uninterrupted run's, so every reported pair is one the fault-free run
  /// would also report (kBestPerSource only — the injective strategies need
  /// the whole table, so a stopped run reports no correspondences there).
  /// A null or inactive `control` is byte-for-byte the plain Analyze.
  Analysis Analyze(const xsd::Schema& source, const xsd::Schema& target,
                   ThreadPool* pool, const ExecControl* control) const;

  /// Degradation-aware variant: `tree.mode` selects the rung of the
  /// overload ladder. kLabelOnly skips the children axis entirely and
  /// renormalizes the remaining weights per Eq. 6/7 (the label, property
  /// and level axis values stay bit-identical to the full run — only the
  /// weighting and the dropped axis change). kCappedDepth treats nodes at
  /// `tree.children_depth_cap` or deeper as leaves on the children axis.
  /// The result records the active mode. kFull is byte-for-byte the
  /// four-argument Analyze.
  Analysis Analyze(const xsd::Schema& source, const xsd::Schema& target,
                   ThreadPool* pool, const ExecControl* control,
                   const TreeMatchOptions& tree) const;

 private:
  QMatchConfig config_;
  const lingua::Thesaurus* thesaurus_;
};

}  // namespace qmatch::core

#endif  // QMATCH_CORE_QMATCH_H_
