#ifndef QMATCH_CORE_CONFIG_H_
#define QMATCH_CORE_CONFIG_H_

#include "common/status.h"
#include "lingua/name_match.h"
#include "match/assignment.h"
#include "match/property_matcher.h"
#include "qom/weights.h"

namespace qmatch::core {

/// Tunable parameters of the QMatch hybrid algorithm.
struct QMatchConfig {
  /// Axis weights of the match model (Eq. 1); default = paper Table 2.
  qom::Weights weights = qom::kPaperWeights;

  /// The threshold of Fig. 3: child pairs whose QoM falls below it do not
  /// count as matching children, and node correspondences below it are not
  /// reported.
  double threshold = 0.5;

  /// How matching children accumulate into the subtree weight Rw (Eq. 3).
  enum class ChildAccumulation {
    /// Each source child contributes its best-matching target child once
    /// (greedy best match; keeps Rw and Rs in [0, 1]).
    kBestMatch,
    /// The literal reading of Fig. 3's pseudo-code: every (source child,
    /// target child) pair above threshold accumulates, which can exceed 1
    /// when a child matches several targets; QoM_C is clamped to 1.
    kPaperLiteral,
  };
  ChildAccumulation child_accumulation = ChildAccumulation::kBestMatch;

  /// How the level axis QoM_H is scored. The paper's model is binary
  /// (Section 3: "1 if there is a level match and 0 otherwise"), but our
  /// ablations show it penalises legitimate cross-depth matches (e.g. the
  /// paper's own Lines -> Items example); kGraded decays with the depth
  /// difference instead, and kIgnore removes the axis (weight should then
  /// be redistributed).
  enum class LevelMode {
    kBinary,  // paper: equal depth = 1, else 0
    kGraded,  // 1 / (1 + |level difference|)
  };
  LevelMode level_mode = LevelMode::kBinary;

  /// When true (default), a correspondence is only reported when the pair
  /// has label-axis evidence (exact or relaxed label match). Without this,
  /// two same-level leaves of the same type score ~0.7 from the property,
  /// level and children axes alone and flood the result with false
  /// positives. The schema-level QoM is unaffected (structure still counts
  /// there, as the Fig. 9 experiment requires).
  bool require_label_evidence = true;

  /// If the runner-up target for a source node scores within this margin
  /// of the best, the mapping is considered ambiguous and suppressed
  /// (kBestPerSource strategy only).
  double ambiguity_margin = 0.02;

  /// How node correspondences are extracted from the QoM table: the
  /// paper's per-source best match, or an injective global assignment
  /// (greedy / stable-marriage) for integration pipelines that need 1:1
  /// mappings.
  match::AssignmentStrategy assignment =
      match::AssignmentStrategy::kBestPerSource;

  /// Children-axis QoM granted when a leaf source node is compared with a
  /// non-leaf target: coverage is vacuously total (the source has no
  /// children to leave uncovered) but granting the full 1.0 makes inner
  /// nodes outcompete the correct leaf targets, so only partial credit is
  /// given by default.
  double leaf_to_inner_children_credit = 0.5;

  /// Linguistic (label axis) scoring parameters.
  lingua::NameMatchOptions name_options;

  /// Properties axis comparison parameters.
  match::PropertyMatchOptions property_options;

  /// Validates weights and threshold.
  Status Validate() const {
    QMATCH_RETURN_IF_ERROR(weights.Validate());
    if (threshold < 0.0 || threshold > 1.0) {
      return Status::InvalidArgument("threshold must lie in [0, 1]");
    }
    return Status::OK();
  }
};

}  // namespace qmatch::core

#endif  // QMATCH_CORE_CONFIG_H_
