#include "core/qmatch.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/arena.h"
#include "common/string_util.h"
#include "fault/failpoint.h"
#include "lingua/default_thesaurus.h"
#include "lingua/name_match.h"
#include "obs/obs.h"
#include "xsd/flatten.h"

namespace qmatch::core {

#if QMATCH_OBS_ENABLED
namespace {

/// Thread-local accumulator for the per-axis TreeMatch timings. Axis
/// timings are *sampled* (every kTreeMatchSampleEvery-th pair takes clock
/// readings around each axis block) so the instrumented table fill stays
/// within the < 2% overhead budget; memo-lookup counts are exact. Each
/// worker flushes its accumulator to the registry once per source row.
constexpr size_t kTreeMatchSampleEvery = 64;

struct TreeMatchAccum {
  uint64_t label_ns = 0;
  uint64_t properties_ns = 0;
  uint64_t level_ns = 0;
  uint64_t children_ns = 0;
  uint64_t sampled_pairs = 0;
  uint64_t memo_lookups = 0;          // child-pair table reads (memo hits)
  uint64_t contributing_children = 0; // lookups that cleared the threshold

  void Flush() {
    if (sampled_pairs == 0 && memo_lookups == 0) return;
    QMATCH_COUNTER_ADD("qmatch.treematch.axis_label_ns", label_ns);
    QMATCH_COUNTER_ADD("qmatch.treematch.axis_properties_ns", properties_ns);
    QMATCH_COUNTER_ADD("qmatch.treematch.axis_level_ns", level_ns);
    QMATCH_COUNTER_ADD("qmatch.treematch.axis_children_ns", children_ns);
    QMATCH_COUNTER_ADD("qmatch.treematch.sampled_pairs", sampled_pairs);
    QMATCH_COUNTER_ADD("qmatch.treematch.memo_lookups", memo_lookups);
    QMATCH_COUNTER_ADD("qmatch.treematch.contributing_children",
                       contributing_children);
    *this = TreeMatchAccum{};
  }
};

thread_local TreeMatchAccum t_treematch_accum;

}  // namespace
#endif  // QMATCH_OBS_ENABLED

QMatch::QMatch() : QMatch(QMatchConfig{}, &lingua::DefaultThesaurus()) {}

QMatch::QMatch(QMatchConfig config)
    : QMatch(std::move(config), &lingua::DefaultThesaurus()) {}

QMatch::QMatch(QMatchConfig config, const lingua::Thesaurus* thesaurus)
    : config_(std::move(config)), thesaurus_(thesaurus) {}

namespace {

qom::AxisMatch ToAxisMatch(lingua::LabelMatchClass cls) {
  switch (cls) {
    case lingua::LabelMatchClass::kExact:
      return qom::AxisMatch::kExact;
    case lingua::LabelMatchClass::kRelaxed:
      return qom::AxisMatch::kRelaxed;
    case lingua::LabelMatchClass::kNone:
      return qom::AxisMatch::kNone;
  }
  return qom::AxisMatch::kNone;
}

qom::AxisMatch ToAxisMatch(match::PropertyMatchClass cls) {
  switch (cls) {
    case match::PropertyMatchClass::kExact:
      return qom::AxisMatch::kExact;
    case match::PropertyMatchClass::kRelaxed:
      return qom::AxisMatch::kRelaxed;
    case match::PropertyMatchClass::kNone:
      return qom::AxisMatch::kNone;
  }
  return qom::AxisMatch::kNone;
}

}  // namespace

const PairQoM* QMatch::Analysis::Pair(const xsd::SchemaNode* source,
                                      const xsd::SchemaNode* target) const {
  auto is = source_index_.find(source);
  auto it = target_index_.find(target);
  if (is == source_index_.end() || it == target_index_.end()) return nullptr;
  return &table_[is->second * target_nodes_.size() + it->second];
}

const PairQoM* QMatch::Analysis::PairByPath(std::string_view source_path,
                                            std::string_view target_path) const {
  const xsd::SchemaNode* s = source_schema_->FindByPath(source_path);
  const xsd::SchemaNode* t = target_schema_->FindByPath(target_path);
  if (s == nullptr || t == nullptr) return nullptr;
  return Pair(s, t);
}

const PairQoM& QMatch::Analysis::Root() const {
  return table_[0];  // preorder puts both roots first
}

std::string QMatch::Analysis::ExplainCorrespondences() const {
  std::vector<const Correspondence*> sorted;
  sorted.reserve(result_.correspondences.size());
  for (const Correspondence& c : result_.correspondences) {
    sorted.push_back(&c);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Correspondence* a, const Correspondence* b) {
              return a->score > b->score;
            });
  std::string out = StrFormat("schema QoM %.4f — %zu correspondences\n",
                              result_.schema_qom, sorted.size());
  for (const Correspondence* c : sorted) {
    const PairQoM* pair = Pair(c->source, c->target);
    out += StrFormat("%s -> %s\n  %s\n", c->source->Path().c_str(),
                     c->target->Path().c_str(),
                     pair != nullptr ? pair->ToString().c_str() : "<?>");
  }
  return out;
}

std::map<qom::MatchCategory, size_t> QMatch::Analysis::CategoryHistogram()
    const {
  std::map<qom::MatchCategory, size_t> histogram;
  for (const Correspondence& c : result_.correspondences) {
    const PairQoM* pair = Pair(c.source, c.target);
    if (pair != nullptr) ++histogram[pair->category];
  }
  return histogram;
}

QMatch::Analysis QMatch::Analyze(const xsd::Schema& source,
                                 const xsd::Schema& target) const {
  return Analyze(source, target, nullptr, nullptr);
}

QMatch::Analysis QMatch::Analyze(const xsd::Schema& source,
                                 const xsd::Schema& target,
                                 ThreadPool* pool) const {
  return Analyze(source, target, pool, nullptr);
}

QMatch::Analysis QMatch::Analyze(const xsd::Schema& source,
                                 const xsd::Schema& target, ThreadPool* pool,
                                 const ExecControl* control) const {
  return Analyze(source, target, pool, control, TreeMatchOptions{});
}

QMatch::Analysis QMatch::Analyze(const xsd::Schema& source,
                                 const xsd::Schema& target, ThreadPool* pool,
                                 const ExecControl* control,
                                 const TreeMatchOptions& tree) const {
  Analysis analysis;
  analysis.source_schema_ = &source;
  analysis.target_schema_ = &target;
  analysis.result_.algorithm = std::string(name());
  analysis.result_.mode = tree.mode;
  if (source.root() == nullptr || target.root() == nullptr) return analysis;

  // Degradation ladder (see MatchMode). kLabelOnly drops the children axis
  // and renormalizes the remaining weight mass per Eq. 6/7, so the weighted
  // total still spans [0, 1]; the label/property/level axis *values* are
  // computed by exactly the code the full run uses, and stay bit-identical.
  // kCappedDepth treats nodes at the cap or deeper as leaves on the
  // children axis only. kFull leaves every branch byte-for-byte unchanged.
  const bool label_only = tree.mode == MatchMode::kLabelOnly;
  const bool capped = tree.mode == MatchMode::kCappedDepth;
  qom::Weights weights = config_.weights;
  if (label_only) {
    const double rest = weights.label + weights.properties + weights.level;
    if (rest > 0.0) {
      weights.label /= rest;
      weights.properties /= rest;
      weights.level /= rest;
    } else {
      weights.label = weights.properties = weights.level = 1.0 / 3.0;
    }
    weights.children = 0.0;
  }
  auto effective_leaf = [&](const xsd::SchemaNode* node) {
    return node->IsLeaf() ||
           (capped && node->level() >= tree.children_depth_cap);
  };

  analysis.source_nodes_ = source.AllNodes();
  analysis.target_nodes_ = target.AllNodes();
  const auto& src = analysis.source_nodes_;
  const auto& tgt = analysis.target_nodes_;
  const size_t n = src.size();
  const size_t m = tgt.size();
  QMATCH_SPAN(treematch_span, "qmatch.treematch");
  QMATCH_SPAN_ARG(treematch_span, "source_nodes", n);
  QMATCH_SPAN_ARG(treematch_span, "target_nodes", m);
  QMATCH_COUNTER_ADD("qmatch.treematch.tables", 1);
  QMATCH_COUNTER_ADD("qmatch.treematch.pairs", n * m);
  for (size_t i = 0; i < n; ++i) analysis.source_index_[src[i]] = i;
  for (size_t j = 0; j < m; ++j) analysis.target_index_[tgt[j]] = j;
  analysis.table_.assign(n * m, PairQoM{});
  auto& table = analysis.table_;
  auto at = [&](size_t i, size_t j) -> PairQoM& { return table[i * m + j]; };

  // Kernel routing (DESIGN.md §13): both implementations fill the same
  // source-major table bit-identically. The SoA kernel batches the work
  // over the schemas' flattened projections with arena scratch; the tree
  // walk below is the node-at-a-time reference it is diffed against.
  const match::KernelKind kernel =
      tree.kernel.has_value() ? *tree.kernel : match::DefaultKernel();
  const lingua::NameMatcher name_matcher(thesaurus_, config_.name_options);
  std::vector<char> row_done(n, 0);

  if (kernel == match::KernelKind::kSoa) {
    const xsd::FlatSchema& flat_source = source.Flat();
    const xsd::FlatSchema& flat_target = target.Flat();
    // Per-request scratch arena, charged against the request's memory
    // budget block-by-block; ArenaExhausted propagates to the engine,
    // which maps it to kResourceExhausted.
    Arena arena(Arena::kDefaultBlockBytes, tree.arena_budget);
    match::SoaKernelConfig kernel_config;
    kernel_config.weights = weights;
    kernel_config.threshold = config_.threshold;
    kernel_config.best_match_accumulation =
        config_.child_accumulation ==
        QMatchConfig::ChildAccumulation::kBestMatch;
    kernel_config.level_graded =
        config_.level_mode == QMatchConfig::LevelMode::kGraded;
    kernel_config.leaf_to_inner_children_credit =
        config_.leaf_to_inner_children_credit;
    kernel_config.label_only = label_only;
    kernel_config.capped = capped;
    kernel_config.children_depth_cap = tree.children_depth_cap;
    kernel_config.name_matcher = &name_matcher;
    kernel_config.property_options = config_.property_options;
    const match::SoaKernelResult run =
        match::SoaFillTable(flat_source, flat_target, kernel_config,
                            table.data(), row_done, pool, control, &arena);
    analysis.stop_reason_ = run.stop;
    analysis.completed_rows_ = run.completed_rows;
  } else {
    // Tokenise every label once and memoise token-pair similarities; the
    // O(n·m) pair loop then does array lookups.
    std::vector<std::string> source_labels;
    source_labels.reserve(n);
    for (const xsd::SchemaNode* s : src) source_labels.push_back(s->label());
    std::vector<std::string> target_labels;
    target_labels.reserve(m);
    for (const xsd::SchemaNode* t : tgt) target_labels.push_back(t->label());
    lingua::PairwiseLabelScorer label_scorer(name_matcher, source_labels,
                                             target_labels);
    auto label_match = [&](size_t i, size_t j) {
      return label_scorer.Match(i, j);
    };

    // One (source, target) pair of the QoM table. Reads only pairs of
    // strictly deeper source nodes (the children of `src[i]`), so any
    // schedule that fills deeper source levels first is valid.
    auto compute_pair = [&](size_t i, size_t j) {
      {
        const xsd::SchemaNode* s = src[i];
        const xsd::SchemaNode* t = tgt[j];
        PairQoM& pair = at(i, j);
#if QMATCH_OBS_ENABLED
        // Sampled per-axis timing: clock reads bracket each axis block on
        // every kTreeMatchSampleEvery-th pair only (deterministic choice,
        // so parallel runs sample the same pairs).
        TreeMatchAccum& obs_accum = t_treematch_accum;  // one TLS lookup
        const bool obs_sampled = ((i * m + j) % kTreeMatchSampleEvery) == 0;
        uint64_t obs_mark = obs_sampled ? obs::MonotonicNowNs() : 0;
        auto obs_lap = [&obs_mark, obs_sampled](uint64_t* into) {
          if (!obs_sampled) return;
          const uint64_t now = obs::MonotonicNowNs();
          *into += now - obs_mark;
          obs_mark = now;
        };
#endif

        // --- Children axis (Eq. 3-5) ---------------------------------
        if (label_only) {
          // Degraded mode: the axis is not evaluated at all — its weight
          // mass was renormalized away above.
          pair.children = 0.0;
          pair.coverage = qom::Coverage::kNone;
          pair.children_all_exact = false;
        } else if (effective_leaf(s) && effective_leaf(t)) {
          // Leaves match exactly by default along the children axis (the
          // constant C of Eq. 2).
          pair.children = 1.0;
          pair.coverage = qom::Coverage::kTotal;
          pair.children_all_exact = true;
        } else if (effective_leaf(s)) {
          // No source children to cover: vacuously total, never exact, and
          // only partial credit (see QMatchConfig).
          pair.children = config_.leaf_to_inner_children_credit;
          pair.coverage = qom::Coverage::kTotal;
          pair.children_all_exact = false;
        } else if (effective_leaf(t)) {
          pair.children = 0.0;
          pair.coverage = qom::Coverage::kNone;
          pair.children_all_exact = false;
        } else {
          const double child_total = static_cast<double>(s->child_count());
          double qom_sum = 0.0;
          double matched = 0.0;
          bool all_exact = true;
          // Both accumulation modes read every (source child, target child)
          // table cell, and `matched` counts exactly the children that
          // contribute — so the memoisation/contribution counters fall out
          // arithmetically, once per pair, off the inner loops.
          QMATCH_OBS_ONLY(obs_accum.memo_lookups +=
                          uint64_t{s->child_count()} * t->child_count();)
          if (config_.child_accumulation ==
              QMatchConfig::ChildAccumulation::kBestMatch) {
            for (const auto& sc : s->children()) {
              size_t ci = analysis.source_index_.at(sc.get());
              double best = 0.0;
              const PairQoM* best_pair = nullptr;
              for (const auto& tc : t->children()) {
                size_t cj = analysis.target_index_.at(tc.get());
                const PairQoM& child_pair = at(ci, cj);
                if (child_pair.qom > best) {
                  best = child_pair.qom;
                  best_pair = &child_pair;
                }
              }
              if (best_pair != nullptr && best >= config_.threshold) {
                qom_sum += best;
                matched += 1.0;
                if (best_pair->category != qom::MatchCategory::kTotalExact) {
                  all_exact = false;
                }
              }
            }
          } else {
            // Paper-literal accumulation: every child pair above threshold
            // contributes (Fig. 3 pseudo-code).
            for (const auto& sc : s->children()) {
              size_t ci = analysis.source_index_.at(sc.get());
              for (const auto& tc : t->children()) {
                size_t cj = analysis.target_index_.at(tc.get());
                const PairQoM& child_pair = at(ci, cj);
                if (child_pair.qom >= config_.threshold) {
                  qom_sum += child_pair.qom;
                  matched += 1.0;
                  if (child_pair.category !=
                      qom::MatchCategory::kTotalExact) {
                    all_exact = false;
                  }
                }
              }
            }
          }
          QMATCH_OBS_ONLY(obs_accum.contributing_children +=
                          static_cast<uint64_t>(matched);)
          double rw = qom_sum / child_total;   // Eq. 3
          double rs = matched / child_total;   // Eq. 4
          pair.children = std::min(1.0, (rw + rs) / 2.0);  // Eq. 5
          if (matched <= 0.0) {
            pair.coverage = qom::Coverage::kNone;
            all_exact = false;
          } else if (matched >= child_total) {
            pair.coverage = qom::Coverage::kTotal;
          } else {
            pair.coverage = qom::Coverage::kPartial;
            all_exact = false;
          }
          pair.children_all_exact = all_exact;
        }
#if QMATCH_OBS_ENABLED
        obs_lap(&obs_accum.children_ns);
#endif

        // --- Label axis -----------------------------------------------
        lingua::LabelMatch lm = label_match(i, j);
        pair.label = lm.cls == lingua::LabelMatchClass::kNone ? 0.0 : lm.score;
        pair.label_cls = ToAxisMatch(lm.cls);
#if QMATCH_OBS_ENABLED
        obs_lap(&obs_accum.label_ns);
#endif

        // --- Properties axis ------------------------------------------
        match::PropertyMatch pm =
            match::MatchProperties(*s, *t, config_.property_options);
        pair.properties = pm.score;
        pair.properties_cls = ToAxisMatch(pm.cls);
#if QMATCH_OBS_ENABLED
        obs_lap(&obs_accum.properties_ns);
#endif

        // --- Level axis -------------------------------------------------
        if (s->level() == t->level()) {
          pair.level = 1.0;
          pair.level_cls = qom::AxisMatch::kExact;
        } else {
          pair.level_cls = qom::AxisMatch::kNone;
          switch (config_.level_mode) {
            case QMatchConfig::LevelMode::kBinary:
              pair.level = 0.0;
              break;
            case QMatchConfig::LevelMode::kGraded: {
              double gap = static_cast<double>(
                  s->level() > t->level() ? s->level() - t->level()
                                          : t->level() - s->level());
              pair.level = 1.0 / (1.0 + gap);
              break;
            }
          }
        }

#if QMATCH_OBS_ENABLED
        obs_lap(&obs_accum.level_ns);
        if (obs_sampled) ++obs_accum.sampled_pairs;
#endif

        // --- Weighted total (Eq. 1/6) and taxonomy category -------------
        const qom::Weights& w = weights;
        pair.qom = w.label * pair.label + w.properties * pair.properties +
                   w.level * pair.level + w.children * pair.children;
        pair.category =
            qom::Categorize(pair.label_cls, pair.properties_cls,
                            pair.level_cls, pair.coverage,
                            pair.children_all_exact);
      }
    };

#if QMATCH_OBS_ENABLED
    // Once per completed source row: record the row's recursion depth (the
    // source node's level — the memo table stands in for the paper's
    // recursive TreeMatch, so level = recursion depth) and flush the
    // thread-local axis accumulator to the process registry.
    auto obs_row_done = [&src](size_t i) {
      static obs::Histogram& depth_hist = obs::Registry::Global().GetHistogram(
          "qmatch.treematch.recursion_depth",
          obs::Histogram::ExponentialBounds(1.0, 2.0, 8),
          "TreeMatch recursion depth (source node level) per table row");
      depth_hist.Observe(static_cast<double>(src[i]->level()));
      t_treematch_accum.Flush();
    };
#endif

    // Cooperative stop machinery. `stop` latches the first StopReason any
    // worker observes; every worker polls it (one relaxed load) per pair,
    // so a tripped deadline/cancellation drains the fill within one pair
    // per worker. With no active control the whole block is one branch per
    // pair and the fill is byte-for-byte the uncontrolled path.
    const bool controlled = control != nullptr && control->active();
    std::atomic<int> stop{0};  // 0 = running, else static_cast<int>(StopReason)
    auto should_stop = [&]() -> bool {
      if (!controlled) return false;
      if (stop.load(std::memory_order_relaxed) != 0) return true;
      const StopReason reason = control->Check();
      if (reason == StopReason::kNone) return false;
      int expected = 0;
      stop.compare_exchange_strong(expected, static_cast<int>(reason),
                                   std::memory_order_relaxed);
      return true;
    };
    // One full table row; marks the row complete only after every cell is
    // computed, so partial-result extraction below can trust row_done[i].
    // The `treematch.pair` failpoint is the chaos suite's hook for making a
    // single pair slow (kDelay) — which is exactly what the deadline check
    // must bound.
    auto fill_row = [&](size_t i) {
      for (size_t j = m; j-- > 0;) {
        if (should_stop()) return;
        compute_pair(i, j);
        QMATCH_FAILPOINT("treematch.pair");
      }
      row_done[i] = 1;
#if QMATCH_OBS_ENABLED
      obs_row_done(i);
#endif
    };

    if (pool == nullptr || pool->worker_count() == 0) {
      // Bottom-up over both trees: reverse preorder guarantees all child
      // pairs are evaluated before their parents (the recursive TreeMatch
      // of Fig. 3, memoised into an O(n·m) table).
      for (size_t i = n; i-- > 0;) {
        if (stop.load(std::memory_order_relaxed) != 0) break;
        fill_row(i);
      }
    } else {
      // Row-parallel fill, sharded by source *level*: rows within one level
      // never read each other (a pair depends only on child pairs, and
      // children live on strictly deeper levels), so levels run deepest
      // first with a barrier between them and rows fan out inside a level.
      // Each pair runs the identical arithmetic as the sequential branch,
      // so the table is bit-identical for any worker count.
      label_scorer.Precompute();  // freeze the shared token cache (see lingua)
      size_t max_level = 0;
      for (const xsd::SchemaNode* s : src) {
        max_level = std::max(max_level, s->level());
      }
      std::vector<std::vector<size_t>> rows_by_level(max_level + 1);
      for (size_t i = 0; i < n; ++i) {
        rows_by_level[src[i]->level()].push_back(i);
      }
      for (size_t level = max_level + 1; level-- > 0;) {
        if (stop.load(std::memory_order_relaxed) != 0) break;
        const std::vector<size_t>& rows = rows_by_level[level];
        pool->ParallelFor(rows.size(), [&](size_t r) {
          if (stop.load(std::memory_order_relaxed) != 0) return;
          fill_row(rows[r]);
        });
      }
    }

    analysis.stop_reason_ =
        static_cast<StopReason>(stop.load(std::memory_order_relaxed));
    size_t completed = 0;
    for (size_t i = 0; i < n; ++i) completed += row_done[i] != 0 ? 1u : 0u;
    analysis.completed_rows_ = completed;
  }

  if (analysis.stop_reason_ == StopReason::kNone) {
    // Correspondences: extracted from the QoM table per the configured
    // assignment strategy (default: best target per source node, the set P
    // evaluated in Section 5). Pairs without label evidence are never
    // reported (see QMatchConfig).
    match::AssignmentInput assignment_input;
    assignment_input.sources = &src;
    assignment_input.targets = &tgt;
    assignment_input.score = [&](size_t i, size_t j) { return at(i, j).qom; };
    if (config_.require_label_evidence) {
      assignment_input.eligible = [&](size_t i, size_t j) {
        return at(i, j).label_cls != qom::AxisMatch::kNone;
      };
    }
    assignment_input.threshold = config_.threshold;
    assignment_input.ambiguity_margin = config_.ambiguity_margin;
    analysis.result_.correspondences =
        match::SelectCorrespondences(assignment_input, config_.assignment);
    analysis.result_.schema_qom = at(0, 0).qom;
    return analysis;
  }

  // Stopped early: extract the monotone partial result. Completed rows are
  // bit-identical to the uninterrupted run (a row only reads strictly
  // deeper rows, which were complete before it started), and kBestPerSource
  // decides each source node from its own row alone — so restricting the
  // assignment to completed rows reproduces exactly the correspondences the
  // full run reports for those sources. The injective strategies compete
  // across rows and cannot be restricted soundly; they report nothing.
  QMATCH_COUNTER_ADD("qmatch.treematch.stopped_tables", 1);
  const size_t completed = analysis.completed_rows_;
  if (config_.assignment == match::AssignmentStrategy::kBestPerSource &&
      completed > 0) {
    std::vector<const xsd::SchemaNode*> done_sources;
    std::vector<size_t> done_rows;
    done_sources.reserve(completed);
    done_rows.reserve(completed);
    for (size_t i = 0; i < n; ++i) {
      if (row_done[i] != 0) {
        done_sources.push_back(src[i]);
        done_rows.push_back(i);
      }
    }
    match::AssignmentInput partial_input;
    partial_input.sources = &done_sources;
    partial_input.targets = &tgt;
    partial_input.score = [&](size_t i, size_t j) {
      return at(done_rows[i], j).qom;
    };
    if (config_.require_label_evidence) {
      partial_input.eligible = [&](size_t i, size_t j) {
        return at(done_rows[i], j).label_cls != qom::AxisMatch::kNone;
      };
    }
    partial_input.threshold = config_.threshold;
    partial_input.ambiguity_margin = config_.ambiguity_margin;
    analysis.result_.correspondences =
        match::SelectCorrespondences(partial_input, config_.assignment);
  }
  // The schema-level QoM lives in the root pair, which is computed last;
  // report it only when that row actually finished.
  if (row_done[0] != 0) analysis.result_.schema_qom = at(0, 0).qom;
  return analysis;
}

MatchResult QMatch::Match(const xsd::Schema& source,
                          const xsd::Schema& target) const {
  return Match(source, target, nullptr);
}

MatchResult QMatch::Match(const xsd::Schema& source, const xsd::Schema& target,
                          ThreadPool* pool) const {
  Analysis analysis = Analyze(source, target, pool);
  return std::move(analysis.result_);
}

match::SimilarityMatrix QMatch::Similarity(const xsd::Schema& source,
                                           const xsd::Schema& target) const {
  return Similarity(source, target, nullptr);
}

match::SimilarityMatrix QMatch::Similarity(const xsd::Schema& source,
                                           const xsd::Schema& target,
                                           ThreadPool* pool) const {
  Analysis analysis = Analyze(source, target, pool);
  match::SimilarityMatrix matrix(analysis.source_nodes_,
                                 analysis.target_nodes_);
  const size_t m = analysis.target_nodes_.size();
  for (size_t i = 0; i < analysis.source_nodes_.size(); ++i) {
    double* row = matrix.row(i);
    for (size_t j = 0; j < m; ++j) {
      row[j] = analysis.table_[i * m + j].qom;
    }
  }
  return matrix;
}

}  // namespace qmatch::core
