#ifndef QMATCH_CORE_TUNER_H_
#define QMATCH_CORE_TUNER_H_

#include <vector>

#include "core/config.h"
#include "eval/gold.h"
#include "lingua/thesaurus.h"
#include "xsd/schema.h"

namespace qmatch::core {

/// One tuning task: a schema pair plus its manually determined matches.
/// All pointers are borrowed and must outlive the tuning run.
struct TuneTask {
  const xsd::Schema* source = nullptr;
  const xsd::Schema* target = nullptr;
  const eval::GoldStandard* gold = nullptr;
};

/// Options for the automated weight tuner.
struct TuneOptions {
  /// Mass transferred between two axes per move.
  double step = 0.05;
  /// Upper bound on accepted moves (each round evaluates all 12 possible
  /// pairwise transfers).
  int max_rounds = 50;
  enum class Objective { kOverall, kF1 };
  Objective objective = Objective::kOverall;
  /// Everything but the weights (threshold, matchers' options, ...).
  QMatchConfig base_config;
};

/// Outcome of a tuning run.
struct TuneResult {
  qom::Weights weights;
  double score = 0.0;          // mean objective at `weights`
  double initial_score = 0.0;  // mean objective at the starting weights
  size_t evaluations = 0;      // QMatch runs performed
  int rounds = 0;              // accepted moves
};

/// Automates the paper's Section 5.1 methodology: starting from the
/// configured weights, hill-climbs by transferring `step` of weight mass
/// between axes while the mean objective over `tasks` improves. The search
/// is deterministic and stays on the weight simplex (non-negative, sum 1).
///
/// `thesaurus` may be null to tune without a linguistic resource.
TuneResult TuneWeights(const std::vector<TuneTask>& tasks,
                       const TuneOptions& options,
                       const lingua::Thesaurus* thesaurus);

/// Same, with the built-in default thesaurus.
TuneResult TuneWeights(const std::vector<TuneTask>& tasks,
                       const TuneOptions& options = {});

}  // namespace qmatch::core

#endif  // QMATCH_CORE_TUNER_H_
