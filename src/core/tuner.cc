#include "core/tuner.h"

#include <array>

#include "common/logging.h"
#include "core/qmatch.h"
#include "eval/metrics.h"
#include "lingua/default_thesaurus.h"

namespace qmatch::core {

namespace {

std::array<double, 4> ToArray(const qom::Weights& w) {
  return {w.label, w.properties, w.level, w.children};
}

qom::Weights FromArray(const std::array<double, 4>& a) {
  return qom::Weights{a[0], a[1], a[2], a[3]};
}

}  // namespace

TuneResult TuneWeights(const std::vector<TuneTask>& tasks,
                       const TuneOptions& options,
                       const lingua::Thesaurus* thesaurus) {
  QMATCH_CHECK(!tasks.empty()) << "tuning needs at least one task";
  for (const TuneTask& task : tasks) {
    QMATCH_CHECK(task.source != nullptr && task.target != nullptr &&
                 task.gold != nullptr);
  }

  TuneResult result;
  auto evaluate = [&](const qom::Weights& weights) {
    QMatchConfig config = options.base_config;
    config.weights = weights;
    QMatch matcher(config, thesaurus);
    double sum = 0.0;
    for (const TuneTask& task : tasks) {
      eval::QualityMetrics metrics =
          eval::Evaluate(matcher.Match(*task.source, *task.target),
                         *task.gold);
      sum += options.objective == TuneOptions::Objective::kOverall
                 ? metrics.overall
                 : metrics.f1;
    }
    ++result.evaluations;
    return sum / static_cast<double>(tasks.size());
  };

  std::array<double, 4> current = ToArray(options.base_config.weights);
  double current_score = evaluate(FromArray(current));
  result.initial_score = current_score;

  for (int round = 0; round < options.max_rounds; ++round) {
    double best_score = current_score;
    std::array<double, 4> best = current;
    // All pairwise transfers of `step` mass between distinct axes.
    for (size_t from = 0; from < 4; ++from) {
      if (current[from] < options.step - 1e-12) continue;
      for (size_t to = 0; to < 4; ++to) {
        if (to == from) continue;
        std::array<double, 4> candidate = current;
        candidate[from] -= options.step;
        candidate[to] += options.step;
        double score = evaluate(FromArray(candidate));
        if (score > best_score + 1e-12) {
          best_score = score;
          best = candidate;
        }
      }
    }
    if (best == current) break;  // local optimum
    current = best;
    current_score = best_score;
    ++result.rounds;
  }

  result.weights = FromArray(current);
  result.score = current_score;
  return result;
}

TuneResult TuneWeights(const std::vector<TuneTask>& tasks,
                       const TuneOptions& options) {
  return TuneWeights(tasks, options, &lingua::DefaultThesaurus());
}

}  // namespace qmatch::core
