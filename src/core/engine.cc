#include "core/engine.h"

#include <bit>
#include <utility>

#include "obs/obs.h"

namespace qmatch::core {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashInt(uint64_t value, uint64_t& h) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (byte * 8)) & 0xffu;
    h *= kFnvPrime;
  }
}

void HashDouble(double value, uint64_t& h) {
  HashInt(std::bit_cast<uint64_t>(value), h);
}

/// Hashes every field of the configuration that influences match output.
/// The thesaurus is deliberately absent: it is fixed per engine instance
/// and the cache never outlives the engine.
uint64_t HashConfig(const QMatchConfig& config) {
  uint64_t h = kFnvOffset;
  HashDouble(config.weights.label, h);
  HashDouble(config.weights.properties, h);
  HashDouble(config.weights.level, h);
  HashDouble(config.weights.children, h);
  HashDouble(config.threshold, h);
  HashInt(static_cast<uint64_t>(config.child_accumulation), h);
  HashInt(static_cast<uint64_t>(config.level_mode), h);
  HashInt(config.require_label_evidence ? 1u : 0u, h);
  HashDouble(config.ambiguity_margin, h);
  HashInt(static_cast<uint64_t>(config.assignment), h);
  HashDouble(config.leaf_to_inner_children_credit, h);
  const lingua::NameMatchOptions& name = config.name_options;
  HashDouble(name.synonym_score, h);
  HashDouble(name.hypernym_score, h);
  HashDouble(name.acronym_score, h);
  HashDouble(name.abbreviation_score, h);
  HashDouble(name.fuzzy_floor, h);
  HashDouble(name.exact_threshold, h);
  HashDouble(name.relaxed_threshold, h);
  const match::PropertyMatchOptions& prop = config.property_options;
  HashInt(prop.compare_kind ? 1u : 0u, h);
  HashInt(prop.compare_type ? 1u : 0u, h);
  HashInt(prop.compare_order ? 1u : 0u, h);
  HashInt(prop.compare_occurs ? 1u : 0u, h);
  HashInt(prop.compare_nillable ? 1u : 0u, h);
  HashDouble(prop.relaxed_credit, h);
  return h;
}

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

MatchEngine::MatchEngine(MatchEngineOptions options)
    : MatchEngine(QMatchConfig{}, std::move(options)) {}

MatchEngine::MatchEngine(QMatchConfig config, MatchEngineOptions options)
    : matcher_(std::move(config)),
      threads_(ResolveThreads(options.threads)),
      options_(options) {
  config_hash_ = HashConfig(matcher_.config());
  // The calling thread participates in every ParallelFor, so `threads`
  // total parallelism needs threads-1 pool workers.
  pool_ = std::make_unique<ThreadPool>(threads_ - 1);
}

MatchEngine::MatchEngine(QMatchConfig config, const lingua::Thesaurus* thesaurus,
                         MatchEngineOptions options)
    : matcher_(std::move(config), thesaurus),
      threads_(ResolveThreads(options.threads)),
      options_(options) {
  config_hash_ = HashConfig(matcher_.config());
  pool_ = std::make_unique<ThreadPool>(threads_ - 1);
}

MatchEngine::~MatchEngine() = default;

MatchEngine::CacheKey MatchEngine::MakeKey(const xsd::Schema& source,
                                           const xsd::Schema& target) const {
  return CacheKey{xsd::SchemaFingerprint(source), xsd::SchemaFingerprint(target),
                  config_hash_};
}

bool MatchEngine::CacheLookup(const CacheKey& key, const xsd::Schema& source,
                              const xsd::Schema& target,
                              MatchResult* out) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) {
    ++cache_stats_.misses;
    QMATCH_COUNTER_ADD("engine.cache.misses", 1);
    return false;
  }
  const CacheEntry& entry = *it->second;
  MatchResult result;
  result.algorithm = entry.algorithm;
  result.schema_qom = entry.schema_qom;
  result.correspondences.reserve(entry.correspondences.size());
  for (const CachedCorrespondence& c : entry.correspondences) {
    const xsd::SchemaNode* s = source.FindByPath(c.source_path);
    const xsd::SchemaNode* t = target.FindByPath(c.target_path);
    if (s == nullptr || t == nullptr) {
      // Fingerprint collision or a path the caller's schema cannot
      // resolve: treat as a miss and recompute rather than return a
      // result pointing into the wrong trees.
      ++cache_stats_.misses;
      QMATCH_COUNTER_ADD("engine.cache.misses", 1);
      QMATCH_COUNTER_ADD("engine.cache.rehydration_failures", 1);
      return false;
    }
    result.correspondences.push_back(Correspondence{s, t, c.score});
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  ++cache_stats_.hits;
  QMATCH_COUNTER_ADD("engine.cache.hits", 1);
  QMATCH_COUNTER_ADD("engine.cache.rehydrated_correspondences",
                     result.correspondences.size());
  *out = std::move(result);
  return true;
}

void MatchEngine::CacheStore(const CacheKey& key,
                             const MatchResult& result) const {
  CacheEntry entry;
  entry.key = key;
  entry.algorithm = result.algorithm;
  entry.schema_qom = result.schema_qom;
  entry.correspondences.reserve(result.correspondences.size());
  for (const Correspondence& c : result.correspondences) {
    entry.correspondences.push_back(
        CachedCorrespondence{c.source->Path(), c.target->Path(), c.score});
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    *it->second = std::move(entry);
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.push_front(std::move(entry));
  cache_index_[key] = cache_lru_.begin();
  while (cache_lru_.size() > options_.cache_capacity) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
    ++cache_stats_.evictions;
    QMATCH_COUNTER_ADD("engine.cache.evictions", 1);
  }
  cache_stats_.entries = cache_lru_.size();
  QMATCH_GAUGE_SET("engine.cache.entries", cache_lru_.size());
}

MatchResult MatchEngine::MatchUncached(const xsd::Schema& source,
                                       const xsd::Schema& target,
                                       ThreadPool* pool) const {
  return matcher_.Match(source, target, pool);
}

MatchResult MatchEngine::Match(const xsd::Schema& source,
                               const xsd::Schema& target) const {
  QMATCH_SPAN(span, "engine.match");
  QMATCH_SPAN_ARG(span, "source_nodes", source.NodeCount());
  QMATCH_SPAN_ARG(span, "target_nodes", target.NodeCount());
  const bool cached = options_.cache_capacity > 0;
  CacheKey key;
  if (cached) {
    key = MakeKey(source, target);
    MatchResult hit;
    if (CacheLookup(key, source, target, &hit)) return hit;
  }
  const size_t pairs = source.NodeCount() * target.NodeCount();
  ThreadPool* pool =
      (threads_ > 1 && pairs >= options_.min_parallel_pairs) ? pool_.get()
                                                             : nullptr;
  MatchResult result = MatchUncached(source, target, pool);
  if (cached) CacheStore(key, result);
  return result;
}

match::SimilarityMatrix MatchEngine::Similarity(
    const xsd::Schema& source, const xsd::Schema& target) const {
  const size_t pairs = source.NodeCount() * target.NodeCount();
  ThreadPool* pool =
      (threads_ > 1 && pairs >= options_.min_parallel_pairs) ? pool_.get()
                                                             : nullptr;
  return matcher_.Similarity(source, target, pool);
}

std::vector<MatchResult> MatchEngine::MatchAll(
    const std::vector<MatchJob>& jobs) const {
  std::vector<MatchResult> results(jobs.size());
  if (jobs.empty()) return results;
  if (jobs.size() == 1) {
    // A single job gets the row-parallel fill instead of job fan-out.
    results[0] = Match(*jobs[0].source, *jobs[0].target);
    return results;
  }
  // Fan jobs out across the pool; each job fills its own table
  // sequentially (the batch already saturates the workers, and one table
  // per thread keeps memory locality). Determinism: slot i is written by
  // exactly one task and holds the result of jobs[i] no matter which
  // worker ran it or in what order.
  QMATCH_SPAN(span, "engine.match_all");
  QMATCH_SPAN_ARG(span, "jobs", jobs.size());
  QMATCH_OBS_ONLY(const uint64_t fanout_start_ns = obs::MonotonicNowNs();)
  pool_->ParallelFor(jobs.size(), [&](size_t i) {
    const bool cached = options_.cache_capacity > 0;
    CacheKey key;
    if (cached) {
      key = MakeKey(*jobs[i].source, *jobs[i].target);
      if (CacheLookup(key, *jobs[i].source, *jobs[i].target, &results[i])) {
        return;
      }
    }
    results[i] = MatchUncached(*jobs[i].source, *jobs[i].target, nullptr);
    if (cached) CacheStore(key, results[i]);
  });
  QMATCH_HISTOGRAM_OBSERVE("engine.batch_fanout_ns",
                           obs::MonotonicNowNs() - fanout_start_ns);
  QMATCH_COUNTER_ADD("engine.batch_jobs", jobs.size());
  return results;
}

std::vector<MatchResult> MatchEngine::MatchOneToMany(
    const xsd::Schema& query,
    const std::vector<const xsd::Schema*>& candidates) const {
  std::vector<MatchJob> jobs;
  jobs.reserve(candidates.size());
  for (const xsd::Schema* candidate : candidates) {
    jobs.push_back(MatchJob{&query, candidate});
  }
  return MatchAll(jobs);
}

MatchEngineCacheStats MatchEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  MatchEngineCacheStats stats = cache_stats_;
  stats.entries = cache_lru_.size();
  return stats;
}

void MatchEngine::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_lru_.clear();
  cache_index_.clear();
  cache_stats_ = MatchEngineCacheStats{};
}

}  // namespace qmatch::core
