#include "core/engine.h"

#include <algorithm>
#include <bit>
#include <exception>
#include <thread>
#include <utility>

#include "common/arena.h"
#include "common/file_util.h"
#include "common/random.h"
#include "fault/failpoint.h"
#include "obs/obs.h"

namespace qmatch::core {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashInt(uint64_t value, uint64_t& h) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (byte * 8)) & 0xffu;
    h *= kFnvPrime;
  }
}

void HashDouble(double value, uint64_t& h) {
  HashInt(std::bit_cast<uint64_t>(value), h);
}

/// Hashes every field of the configuration that influences match output.
/// The thesaurus is deliberately absent: it is fixed per engine instance
/// and the cache never outlives the engine.
uint64_t HashConfig(const QMatchConfig& config) {
  uint64_t h = kFnvOffset;
  HashDouble(config.weights.label, h);
  HashDouble(config.weights.properties, h);
  HashDouble(config.weights.level, h);
  HashDouble(config.weights.children, h);
  HashDouble(config.threshold, h);
  HashInt(static_cast<uint64_t>(config.child_accumulation), h);
  HashInt(static_cast<uint64_t>(config.level_mode), h);
  HashInt(config.require_label_evidence ? 1u : 0u, h);
  HashDouble(config.ambiguity_margin, h);
  HashInt(static_cast<uint64_t>(config.assignment), h);
  HashDouble(config.leaf_to_inner_children_credit, h);
  const lingua::NameMatchOptions& name = config.name_options;
  HashDouble(name.synonym_score, h);
  HashDouble(name.hypernym_score, h);
  HashDouble(name.acronym_score, h);
  HashDouble(name.abbreviation_score, h);
  HashDouble(name.fuzzy_floor, h);
  HashDouble(name.exact_threshold, h);
  HashDouble(name.relaxed_threshold, h);
  const match::PropertyMatchOptions& prop = config.property_options;
  HashInt(prop.compare_kind ? 1u : 0u, h);
  HashInt(prop.compare_type ? 1u : 0u, h);
  HashInt(prop.compare_order ? 1u : 0u, h);
  HashInt(prop.compare_occurs ? 1u : 0u, h);
  HashInt(prop.compare_nillable ? 1u : 0u, h);
  HashDouble(prop.relaxed_credit, h);
  return h;
}

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

Status StopStatus(StopReason reason, const std::string& what) {
  return reason == StopReason::kCancelled
             ? Status::Cancelled(what + ": request cancelled")
             : Status::DeadlineExceeded(what + ": request deadline exceeded");
}

/// Every typed request (direct or per corpus entry) is tallied exactly once
/// here, so `engine.requests` always equals the sum of the four outcome
/// counters — the accounting invariant the chaos suite asserts.
void CountRequestOutcome(const Status& status) {
  (void)status;  // only read by the obs hooks, which compile away with them
  QMATCH_COUNTER_ADD("engine.requests", 1);
  switch (status.code()) {
    case StatusCode::kOk:
      QMATCH_COUNTER_ADD("engine.requests_ok", 1);
      break;
    case StatusCode::kDeadlineExceeded:
      QMATCH_COUNTER_ADD("engine.requests_deadline_exceeded", 1);
      break;
    case StatusCode::kCancelled:
      QMATCH_COUNTER_ADD("engine.requests_cancelled", 1);
      break;
    case StatusCode::kOverloaded:
      QMATCH_COUNTER_ADD("engine.requests_overloaded", 1);
      break;
    case StatusCode::kResourceExhausted:
      QMATCH_COUNTER_ADD("engine.requests_resource_exhausted", 1);
      break;
    default:
      QMATCH_COUNTER_ADD("engine.requests_error", 1);
      break;
  }
}

}  // namespace

MatchEngine::MatchEngine(MatchEngineOptions options)
    : MatchEngine(QMatchConfig{}, std::move(options)) {}

MatchEngine::MatchEngine(QMatchConfig config, MatchEngineOptions options)
    : matcher_(std::move(config)),
      threads_(ResolveThreads(options.threads)),
      options_(options),
      admission_(options.overload.admission),
      process_budget_(options.overload.process_budget_bytes) {
  config_hash_ = HashConfig(matcher_.config());
  // The calling thread participates in every ParallelFor, so `threads`
  // total parallelism needs threads-1 pool workers.
  pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  InitPersist();
}

MatchEngine::MatchEngine(QMatchConfig config, const lingua::Thesaurus* thesaurus,
                         MatchEngineOptions options)
    : matcher_(std::move(config), thesaurus),
      threads_(ResolveThreads(options.threads)),
      options_(options),
      admission_(options.overload.admission),
      process_budget_(options.overload.process_budget_bytes) {
  config_hash_ = HashConfig(matcher_.config());
  pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  InitPersist();
}

MatchEngine::~MatchEngine() {
  if (persist_ != nullptr) {
    // Final compaction is best effort: persistence failpoints throw to
    // simulate crashes, and a destructor must absorb that (or any real
    // I/O throw) — the on-disk state stays consistent either way.
    try {
      (void)CompactPersist();
    } catch (...) {
    }
  }
}

void MatchEngine::InitPersist() {
  if (options_.persist_dir.empty()) return;
  persist::StoreState state;
  persist::LoadStats stats;
  Result<std::unique_ptr<persist::PersistentStore>> store =
      persist::PersistentStore::Open(options_.persist_dir, config_hash_,
                                     &state, &stats);
  if (!store.ok()) {
    // Persistence is an accelerator, never a dependency: a store that
    // cannot open leaves the engine fully functional, just cold.
    QMATCH_COUNTER_ADD("persist.open_failures", 1);
    return;
  }
  persist_ = std::move(*store);
  persist_load_stats_ = stats;
  size_t recovered = 0;
  size_t dropped = 0;
  if (options_.cache_capacity > 0) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    // Decoded order is oldest-first (snapshot order, then journal replay),
    // so pushing each record to the LRU front reproduces the recency order
    // the previous process shut down with, and capacity eviction drops the
    // oldest entries first.
    for (const persist::CacheEntryRec& rec : state.cache_entries) {
      if (rec.config_hash != config_hash_) {
        // Written by a differently-configured engine: dropped, never
        // trusted — even though the file-level fingerprint matched.
        ++dropped;
        continue;
      }
      UpsertCacheRecLocked(rec);
      ++recovered;
    }
    cache_stats_.entries = cache_lru_.size();
    QMATCH_GAUGE_SET("engine.cache.entries", cache_lru_.size());
  }
  {
    std::lock_guard<std::mutex> lock(breaker_mutex_);
    for (const persist::CorpusEntryRec& rec : state.corpus_entries) {
      UpsertCorpusRecLocked(rec);
    }
  }
  QMATCH_COUNTER_ADD("persist.recovered_entries", recovered);
  QMATCH_COUNTER_ADD("persist.dropped_entries", dropped);
  QMATCH_COUNTER_ADD("persist.recovered_corpus_entries",
                     state.corpus_entries.size());
  (void)recovered;
  (void)dropped;
}

void MatchEngine::UpsertCacheRecLocked(const persist::CacheEntryRec& rec) const {
  CacheEntry entry;
  entry.key = CacheKey{rec.source_fp, rec.target_fp, rec.config_hash};
  entry.algorithm = rec.algorithm;
  entry.schema_qom = rec.schema_qom;
  entry.correspondences.reserve(rec.correspondences.size());
  for (const persist::CorrespondenceRec& c : rec.correspondences) {
    entry.correspondences.push_back(
        CachedCorrespondence{c.source_path, c.target_path, c.score});
  }
  const CacheKey key = entry.key;
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    *it->second = std::move(entry);
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  } else {
    cache_lru_.push_front(std::move(entry));
    cache_index_[key] = cache_lru_.begin();
  }
  while (cache_lru_.size() > options_.cache_capacity) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
  }
}

void MatchEngine::UpsertCorpusRecLocked(
    const persist::CorpusEntryRec& rec) const {
  corpus_index_[rec.path] = rec;
  CircuitBreaker& breaker =
      breakers_
          .try_emplace(rec.path,
                       CircuitBreakerOptions{
                           options_.overload.breaker_failure_threshold,
                           options_.overload.breaker_cooldown})
          .first->second;
  breaker.Restore(static_cast<int>(rec.breaker_failures));
}

void MatchEngine::SetReplicationObserver(ReplicationObserver observer) {
  std::lock_guard<std::mutex> lock(observer_mutex_);
  observer_ = std::move(observer);
}

bool MatchEngine::HasReplicationObserver() const {
  std::lock_guard<std::mutex> lock(observer_mutex_);
  return observer_.cache != nullptr || observer_.corpus != nullptr;
}

void MatchEngine::NotifyReplicated(const persist::CacheEntryRec& rec) const {
  std::function<void(const persist::CacheEntryRec&)> cb;
  {
    std::lock_guard<std::mutex> lock(observer_mutex_);
    cb = observer_.cache;
  }
  if (cb) cb(rec);
}

void MatchEngine::NotifyReplicated(const persist::CorpusEntryRec& rec) const {
  std::function<void(const persist::CorpusEntryRec&)> cb;
  {
    std::lock_guard<std::mutex> lock(observer_mutex_);
    cb = observer_.corpus;
  }
  if (cb) cb(rec);
}

void MatchEngine::ApplyReplicatedCacheEntry(const persist::CacheEntryRec& rec) {
  if (rec.config_hash != config_hash_) {
    // A primary running a different match config cannot feed this engine:
    // the same trust boundary warm-start replay enforces.
    QMATCH_COUNTER_ADD("replica.dropped_records", 1);
    return;
  }
  if (options_.cache_capacity > 0) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    UpsertCacheRecLocked(rec);
    cache_stats_.entries = cache_lru_.size();
    QMATCH_GAUGE_SET("engine.cache.entries", cache_lru_.size());
  }
  if (persist_ != nullptr) {
    const Status appended = persist_->AppendCache(rec);
    if (!appended.ok()) QMATCH_COUNTER_ADD("persist.append_dropped", 1);
    MaybeCompactPersist();
  }
}

void MatchEngine::ApplyReplicatedCorpusEntry(
    const persist::CorpusEntryRec& rec) {
  {
    std::lock_guard<std::mutex> lock(breaker_mutex_);
    UpsertCorpusRecLocked(rec);
  }
  if (persist_ != nullptr) {
    const Status appended = persist_->AppendCorpus(rec);
    if (!appended.ok()) QMATCH_COUNTER_ADD("persist.append_dropped", 1);
    MaybeCompactPersist();
  }
}

persist::StoreState MatchEngine::ExportState() const { return SnapshotState(); }

persist::StoreState MatchEngine::SnapshotState() const {
  persist::StoreState state;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    state.cache_entries.reserve(cache_lru_.size());
    // Oldest first (see InitPersist): reverse LRU order.
    for (auto it = cache_lru_.rbegin(); it != cache_lru_.rend(); ++it) {
      persist::CacheEntryRec rec;
      rec.source_fp = it->key.source_fp;
      rec.target_fp = it->key.target_fp;
      rec.config_hash = it->key.config_hash;
      rec.algorithm = it->algorithm;
      rec.schema_qom = it->schema_qom;
      rec.correspondences.reserve(it->correspondences.size());
      for (const CachedCorrespondence& c : it->correspondences) {
        rec.correspondences.push_back(
            persist::CorrespondenceRec{c.source_path, c.target_path, c.score});
      }
      state.cache_entries.push_back(std::move(rec));
    }
  }
  {
    std::lock_guard<std::mutex> lock(breaker_mutex_);
    state.corpus_entries.reserve(corpus_index_.size());
    for (const auto& [path, rec] : corpus_index_) {
      persist::CorpusEntryRec fresh = rec;
      // The live breaker count supersedes what the last journal append
      // recorded (failures may have accrued since).
      auto breaker = breakers_.find(path);
      if (breaker != breakers_.end()) {
        fresh.breaker_failures = static_cast<uint32_t>(
            std::max(0, breaker->second.consecutive_failures()));
      }
      state.corpus_entries.push_back(std::move(fresh));
    }
  }
  return state;
}

Status MatchEngine::CompactPersist() const {
  if (persist_ == nullptr) return Status::OK();
  return persist_->Compact(SnapshotState());
}

void MatchEngine::MaybeCompactPersist() const {
  if (persist_ == nullptr || options_.persist_compact_interval == 0) return;
  if (persist_->appends_since_compact() < options_.persist_compact_interval) {
    return;
  }
  // Periodic compaction is opportunistic; a failed one just leaves the
  // journal longer until the next interval (or shutdown) retries.
  (void)CompactPersist();
}

MatchEngine::CacheKey MatchEngine::MakeKey(const xsd::Schema& source,
                                           const xsd::Schema& target) const {
  return CacheKey{xsd::SchemaFingerprint(source), xsd::SchemaFingerprint(target),
                  config_hash_};
}

bool MatchEngine::CacheLookup(const CacheKey& key, const xsd::Schema& source,
                              const xsd::Schema& target,
                              MatchResult* out) const {
  // A poisoned lookup degrades to a miss: the caller recomputes and the
  // answer stays correct — the cache is an accelerator, never an oracle.
  if (QMATCH_FAILPOINT_FIRED("engine.cache.lookup")) {
    QMATCH_COUNTER_ADD("engine.cache.fault_misses", 1);
    return false;
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) {
    ++cache_stats_.misses;
    QMATCH_COUNTER_ADD("engine.cache.misses", 1);
    return false;
  }
  const CacheEntry& entry = *it->second;
  MatchResult result;
  result.algorithm = entry.algorithm;
  result.schema_qom = entry.schema_qom;
  result.correspondences.reserve(entry.correspondences.size());
  for (const CachedCorrespondence& c : entry.correspondences) {
    const xsd::SchemaNode* s = source.FindByPath(c.source_path);
    const xsd::SchemaNode* t = target.FindByPath(c.target_path);
    if (s == nullptr || t == nullptr) {
      // Fingerprint collision or a path the caller's schema cannot
      // resolve: treat as a miss and recompute rather than return a
      // result pointing into the wrong trees.
      ++cache_stats_.misses;
      QMATCH_COUNTER_ADD("engine.cache.misses", 1);
      QMATCH_COUNTER_ADD("engine.cache.rehydration_failures", 1);
      return false;
    }
    result.correspondences.push_back(Correspondence{s, t, c.score});
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  ++cache_stats_.hits;
  QMATCH_COUNTER_ADD("engine.cache.hits", 1);
  QMATCH_COUNTER_ADD("engine.cache.rehydrated_correspondences",
                     result.correspondences.size());
  *out = std::move(result);
  return true;
}

void MatchEngine::CacheStore(const CacheKey& key,
                             const MatchResult& result) const {
  // A failed store is dropped silently (the entry is recomputed next time);
  // correctness never depends on the store landing.
  if (QMATCH_FAILPOINT_FIRED("engine.cache.store")) {
    QMATCH_COUNTER_ADD("engine.cache.dropped_stores", 1);
    return;
  }
  CacheEntry entry;
  entry.key = key;
  entry.algorithm = result.algorithm;
  entry.schema_qom = result.schema_qom;
  entry.correspondences.reserve(result.correspondences.size());
  for (const Correspondence& c : result.correspondences) {
    entry.correspondences.push_back(
        CachedCorrespondence{c.source->Path(), c.target->Path(), c.score});
  }
  persist::CacheEntryRec rec;
  // The record feeds both the local journal and the replication stream —
  // built whenever either consumer is attached.
  const bool record_needed = persist_ != nullptr || HasReplicationObserver();
  if (record_needed) {
    rec.source_fp = key.source_fp;
    rec.target_fp = key.target_fp;
    rec.config_hash = key.config_hash;
    rec.algorithm = entry.algorithm;
    rec.schema_qom = entry.schema_qom;
    rec.correspondences.reserve(entry.correspondences.size());
    for (const CachedCorrespondence& c : entry.correspondences) {
      rec.correspondences.push_back(
          persist::CorrespondenceRec{c.source_path, c.target_path, c.score});
    }
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_index_.find(key);
    if (it != cache_index_.end()) {
      *it->second = std::move(entry);
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    } else {
      cache_lru_.push_front(std::move(entry));
      cache_index_[key] = cache_lru_.begin();
      while (cache_lru_.size() > options_.cache_capacity) {
        cache_index_.erase(cache_lru_.back().key);
        cache_lru_.pop_back();
        ++cache_stats_.evictions;
        QMATCH_COUNTER_ADD("engine.cache.evictions", 1);
      }
      cache_stats_.entries = cache_lru_.size();
      QMATCH_GAUGE_SET("engine.cache.entries", cache_lru_.size());
    }
  }
  if (persist_ != nullptr) {
    // Journal outside the cache lock (the store serializes on its own
    // mutex). CacheStore only ever sees full-fidelity results, so every
    // append is a trustworthy upsert; a failed append is dropped — the
    // entry is simply recomputed after the next restart.
    Status appended = persist_->AppendCache(rec);
    if (!appended.ok()) {
      QMATCH_COUNTER_ADD("persist.append_dropped", 1);
    }
    MaybeCompactPersist();
  }
  if (record_needed) NotifyReplicated(rec);
}

MatchResult MatchEngine::MatchUncached(const xsd::Schema& source,
                                       const xsd::Schema& target,
                                       ThreadPool* pool) const {
  return matcher_.Match(source, target, pool);
}

MatchResult MatchEngine::Match(const xsd::Schema& source,
                               const xsd::Schema& target) const {
  QMATCH_SPAN(span, "engine.match");
  QMATCH_SPAN_ARG(span, "source_nodes", source.NodeCount());
  QMATCH_SPAN_ARG(span, "target_nodes", target.NodeCount());
  const bool cached = options_.cache_capacity > 0;
  CacheKey key;
  if (cached) {
    key = MakeKey(source, target);
    MatchResult hit;
    if (CacheLookup(key, source, target, &hit)) return hit;
  }
  const size_t pairs = source.NodeCount() * target.NodeCount();
  // The untyped API has no deadline to bound a queue wait and no way to
  // return a typed shed, so it applies pure backpressure: block until
  // capacity frees up. Callers that want load shedding use the typed Match.
  AdmissionPermit permit;
  admission_.AdmitBlocking(std::max<uint64_t>(1, pairs), &permit);
  ThreadPool* pool =
      (threads_ > 1 && pairs >= options_.min_parallel_pairs) ? pool_.get()
                                                             : nullptr;
  MatchResult result = MatchUncached(source, target, pool);
  if (cached) CacheStore(key, result);
  return result;
}

match::SimilarityMatrix MatchEngine::Similarity(
    const xsd::Schema& source, const xsd::Schema& target) const {
  const size_t pairs = source.NodeCount() * target.NodeCount();
  ThreadPool* pool =
      (threads_ > 1 && pairs >= options_.min_parallel_pairs) ? pool_.get()
                                                             : nullptr;
  return matcher_.Similarity(source, target, pool);
}

std::vector<MatchResult> MatchEngine::MatchAll(
    const std::vector<MatchJob>& jobs) const {
  std::vector<MatchResult> results(jobs.size());
  if (jobs.empty()) return results;
  if (jobs.size() == 1) {
    // A single job gets the row-parallel fill instead of job fan-out.
    results[0] = Match(*jobs[0].source, *jobs[0].target);
    return results;
  }
  // Fan jobs out across the pool; each job fills its own table
  // sequentially (the batch already saturates the workers, and one table
  // per thread keeps memory locality). Determinism: slot i is written by
  // exactly one task and holds the result of jobs[i] no matter which
  // worker ran it or in what order.
  QMATCH_SPAN(span, "engine.match_all");
  QMATCH_SPAN_ARG(span, "jobs", jobs.size());
  QMATCH_OBS_ONLY(const uint64_t fanout_start_ns = obs::MonotonicNowNs();)
  pool_->ParallelFor(jobs.size(), [&](size_t i) {
    const bool cached = options_.cache_capacity > 0;
    CacheKey key;
    if (cached) {
      key = MakeKey(*jobs[i].source, *jobs[i].target);
      if (CacheLookup(key, *jobs[i].source, *jobs[i].target, &results[i])) {
        return;
      }
    }
    AdmissionPermit permit;
    admission_.AdmitBlocking(
        std::max<uint64_t>(1, jobs[i].source->NodeCount() *
                                  jobs[i].target->NodeCount()),
        &permit);
    results[i] = MatchUncached(*jobs[i].source, *jobs[i].target, nullptr);
    if (cached) CacheStore(key, results[i]);
  });
  QMATCH_HISTOGRAM_OBSERVE("engine.batch_fanout_ns",
                           obs::MonotonicNowNs() - fanout_start_ns);
  QMATCH_COUNTER_ADD("engine.batch_jobs", jobs.size());
  return results;
}

EngineMatchResult MatchEngine::Match(const xsd::Schema& source,
                                     const xsd::Schema& target,
                                     const EngineRequestOptions& options) const {
  QMATCH_SPAN(span, "engine.match_request");
  QMATCH_SPAN_ARG(span, "source_nodes", source.NodeCount());
  QMATCH_SPAN_ARG(span, "target_nodes", target.NodeCount());
  EngineMatchResult out;
  out.total_rows = source.NodeCount();
  const ExecControl control{options.deadline, options.cancel};
  const bool cached = options_.cache_capacity > 0;
  CacheKey key;
  if (cached) {
    key = MakeKey(source, target);
    MatchResult hit;
    if (CacheLookup(key, source, target, &hit)) {
      // A hit is instant and complete, so it is served even when the
      // envelope has already tripped — strictly better than a partial.
      out.result = std::move(hit);
      out.completed_rows = out.total_rows;
      CountRequestOutcome(out.status);
      return out;
    }
  }
  const size_t pairs = source.NodeCount() * target.NodeCount();
  const OverloadOptions& overload = options_.overload;

  // Admission: over-capacity requests queue (FIFO, up to the deadline) or
  // are shed with a typed kOverloaded before any matching work runs.
  AdmissionPermit permit;
  {
    Status admitted =
        admission_.Admit(std::max<uint64_t>(1, pairs), control, &permit);
    if (!admitted.ok()) {
      out.status = std::move(admitted);
      CountRequestOutcome(out.status);
      return out;
    }
  }

  // Degradation ladder: the pressure signal picks the rung, unless the
  // request pins one explicitly.
  const double pressure = Pressure();
  QMATCH_GAUGE_SET("engine.pressure_permille",
                   static_cast<uint64_t>(pressure * 1000.0));
  MatchMode mode = MatchMode::kFull;
  if (options.force_mode.has_value()) {
    mode = *options.force_mode;
  } else if (pressure >= overload.label_only_pressure) {
    mode = MatchMode::kLabelOnly;
  } else if (pressure >= overload.capped_depth_pressure) {
    mode = MatchMode::kCappedDepth;
  }
  if (mode == MatchMode::kCappedDepth) {
    QMATCH_COUNTER_ADD("engine.degraded.capped_depth", 1);
  } else if (mode == MatchMode::kLabelOnly) {
    QMATCH_COUNTER_ADD("engine.degraded.label_only", 1);
  }

  // Memory budget: the pairwise table is this request's dominant
  // allocation; charge it (request budget rolls up into the process one)
  // and reject with a typed kResourceExhausted instead of OOMing.
  MemoryBudget request_budget(overload.request_budget_bytes, &process_budget_);
  ScopedCharge table_charge(&request_budget);
  {
    Status charged = table_charge.Add(
        std::max<uint64_t>(1, pairs) * sizeof(PairQoM), "pairwise QoM table");
    if (!charged.ok()) {
      out.status = std::move(charged);
      CountRequestOutcome(out.status);
      return out;
    }
  }

  TreeMatchOptions tree;
  tree.mode = mode;
  tree.children_depth_cap = overload.children_depth_cap;
  // The SoA kernel's scratch arena charges the same request budget as the
  // table, block-by-block; exhaustion surfaces as ArenaExhausted below.
  tree.arena_budget = &request_budget;
  ThreadPool* pool =
      (threads_ > 1 && pairs >= options_.min_parallel_pairs) ? pool_.get()
                                                             : nullptr;
  try {
    QMatch::Analysis analysis =
        matcher_.Analyze(source, target, pool, &control, tree);
    out.completed_rows = analysis.completed_rows();
    out.total_rows = analysis.total_rows();
    switch (analysis.stop_reason()) {
      case StopReason::kNone:
        out.result = analysis.TakeResult();
        // Only full-fidelity answers enter the cache: a degraded result
        // must never be served later as if it were the real one.
        if (cached && mode == MatchMode::kFull) CacheStore(key, out.result);
        break;
      case StopReason::kCancelled:
      case StopReason::kDeadlineExceeded:
        out.status = StopStatus(analysis.stop_reason(), "match");
        out.result = analysis.TakeResult();
        QMATCH_COUNTER_ADD("engine.partial_correspondences",
                           out.result.correspondences.size());
        break;
    }
  } catch (const ArenaExhausted& e) {
    // The kernel's scratch arena hit the request/process memory budget (or
    // the arena.alloc failpoint): same typed rejection as the table charge.
    out.status =
        Status::ResourceExhausted(std::string("match arena: ") + e.what());
    out.result = MatchResult{};
    out.completed_rows = 0;
  } catch (const std::exception& e) {
    // A throwing failpoint (or any other internal throw) still produces a
    // typed response — no request escapes the status contract.
    out.status = Status::Internal(std::string("match failed: ") + e.what());
    out.result = MatchResult{};
    out.completed_rows = 0;
  }
  CountRequestOutcome(out.status);
  return out;
}

std::vector<EngineMatchResult> MatchEngine::MatchAll(
    const std::vector<MatchJob>& jobs,
    const EngineRequestOptions& options) const {
  std::vector<EngineMatchResult> results(jobs.size());
  if (jobs.empty()) return results;
  QMATCH_SPAN(span, "engine.match_all_request");
  QMATCH_SPAN_ARG(span, "jobs", jobs.size());
  // Same determinism contract as the untyped MatchAll: slot i holds the
  // result of jobs[i] regardless of scheduling. The typed Match never
  // throws, so the fan-out completes even when every job degrades.
  pool_->ParallelFor(jobs.size(), [&](size_t i) {
    results[i] = Match(*jobs[i].source, *jobs[i].target, options);
  });
  return results;
}

namespace {

/// Loads one corpus file, retrying transient (kIoError) failures with
/// seeded jittered exponential backoff. The `engine.corpus.load` failpoint
/// injects exactly such transient failures ahead of the real read.
Result<std::string> LoadCorpusFile(const std::string& path,
                                   const CorpusMatchOptions& options,
                                   const ExecControl& control,
                                   size_t* attempts_out) {
  const size_t max_attempts = std::max<size_t>(1, options.max_load_attempts);
  Status last = Status::IoError(path + ": no load attempt ran");
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    *attempts_out = attempt + 1;
    const StopReason stopped = control.Check();
    if (stopped != StopReason::kNone) return StopStatus(stopped, path);
    if (QMATCH_FAILPOINT_FIRED("engine.corpus.load")) {
      last = Status::IoError(path + ": injected transient load failure");
    } else {
      Result<std::string> text = ReadFile(path);
      if (text.ok()) return text;
      last = text.status();
    }
    QMATCH_COUNTER_ADD("engine.corpus.load_failures", 1);
    // Only I/O failures are presumed transient; anything else is final.
    if (last.code() != StatusCode::kIoError) return last;
    if (attempt + 1 >= max_attempts) break;
    QMATCH_COUNTER_ADD("engine.corpus.load_retries", 1);
    // Backoff for attempt k: base * 2^k jittered to [50%, 100%], capped,
    // and clamped so a sleep can never outlive the request deadline. The
    // jitter stream is seeded per (seed, path, attempt): deterministic to
    // replay, decorrelated across files so retries do not stampede.
    Random jitter(options.backoff_seed ^ HashBytes(path) ^
                  (0x9E3779B97F4A7C15ULL * (attempt + 1)));
    const auto shift = std::min<size_t>(attempt, 10);
    auto backoff = std::min<std::chrono::milliseconds>(
        options.backoff_base * (uint64_t{1} << shift), options.backoff_cap);
    auto backoff_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(backoff);
    if (backoff_ns.count() > 0) {
      const uint64_t span_ns = static_cast<uint64_t>(backoff_ns.count());
      auto sleep_ns = std::chrono::nanoseconds(
          static_cast<int64_t>(span_ns / 2 + jitter.Uniform(span_ns / 2 + 1)));
      const auto remaining = control.deadline.Remaining();
      if (remaining < sleep_ns) {
        sleep_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
            remaining);
      }
      if (sleep_ns.count() > 0) std::this_thread::sleep_for(sleep_ns);
    }
  }
  return last;
}

}  // namespace

CorpusMatchResult MatchEngine::MatchCorpus(
    const xsd::Schema& query, const std::vector<std::string>& paths,
    const CorpusMatchOptions& options) const {
  QMATCH_SPAN(span, "engine.match_corpus");
  QMATCH_SPAN_ARG(span, "paths", paths.size());
  QMATCH_COUNTER_ADD("engine.corpus.requests", 1);
  CorpusMatchResult out;
  out.entries.resize(paths.size());
  if (paths.empty()) return out;
  const ExecControl control{options.request.deadline, options.request.cancel};
  // One corpus entry, start to finish: load (with retry), parse, match.
  // Failures are contained per entry — a poisoned file degrades its own
  // slot and nothing else. Entries that fail before reaching the typed
  // Match are tallied here so the request accounting stays exact.
  auto process = [&](size_t i) {
    CorpusEntryResult& entry = out.entries[i];
    entry.path = paths[i];
    // Per-entry circuit breaker: an entry that repeatedly failed (load,
    // parse or internal) across requests is rejected up front instead of
    // burning retries on it again. Deadline/cancellation/shed outcomes are
    // the request's fault, not the entry's, and leave the breaker alone.
    CircuitBreaker* breaker;
    {
      std::lock_guard<std::mutex> lock(breaker_mutex_);
      breaker = &breakers_
                     .try_emplace(paths[i],
                                  CircuitBreakerOptions{
                                      options_.overload.breaker_failure_threshold,
                                      options_.overload.breaker_cooldown})
                     .first->second;
    }
    if (!breaker->Allow()) {
      entry.status = Status::Overloaded(paths[i] + ": circuit breaker open");
      CountRequestOutcome(entry.status);
      QMATCH_COUNTER_ADD("engine.corpus.breaker_rejections", 1);
      return;
    }
    // Reports the entry's final outcome to its breaker on every exit path.
    struct BreakerRecord {
      CircuitBreaker* breaker;
      const Status* status;
      ~BreakerRecord() {
        switch (status->code()) {
          case StatusCode::kOk:
            breaker->RecordSuccess();
            break;
          case StatusCode::kIoError:
          case StatusCode::kParseError:
          case StatusCode::kInternal:
          case StatusCode::kResourceExhausted:
            breaker->RecordFailure();
            break;
          default:
            breaker->RecordNeutral();
            break;
        }
      }
    } breaker_record{breaker, &entry.status};
    try {
      const StopReason stopped = control.Check();
      if (stopped != StopReason::kNone) {
        entry.status = StopStatus(stopped, paths[i]);
        CountRequestOutcome(entry.status);
        return;
      }
      Result<std::string> text =
          LoadCorpusFile(paths[i], options, control, &entry.load_attempts);
      if (!text.ok()) {
        entry.status = text.status();
        CountRequestOutcome(entry.status);
        return;
      }
      Result<xsd::Schema> schema =
          xsd::ParseSchema(*text, options.parse);
      if (!schema.ok()) {
        entry.status = schema.status().WithContext(paths[i]);
        CountRequestOutcome(entry.status);
        return;
      }
      // The entry owns the schema so the correspondences (which point into
      // its node tree) outlive this task.
      entry.schema = std::move(*schema);
      EngineMatchResult match = Match(query, entry.schema, options.request);
      entry.status = std::move(match.status);
      entry.result = std::move(match.result);
      entry.completed_rows = match.completed_rows;
      entry.total_rows = match.total_rows;
    } catch (const std::exception& e) {
      entry.status =
          Status::Internal(paths[i] + ": corpus entry failed: " + e.what());
      CountRequestOutcome(entry.status);
    }
  };
  pool_->ParallelFor(paths.size(), process);
  for (const CorpusEntryResult& entry : out.entries) {
    if (entry.ok()) {
      ++out.ok;
    } else {
      ++out.degraded;
      QMATCH_COUNTER_ADD("engine.corpus.degraded_entries", 1);
    }
  }
  QMATCH_COUNTER_ADD("engine.corpus.entries", out.entries.size());
  if (persist_ != nullptr || HasReplicationObserver()) {
    // Journal the corpus index: last-seen schema fingerprint and breaker
    // failure count per path, appended only when something changed so a
    // steady-state corpus query costs zero journal growth.
    std::vector<persist::CorpusEntryRec> changed;
    {
      std::lock_guard<std::mutex> lock(breaker_mutex_);
      for (const CorpusEntryResult& entry : out.entries) {
        persist::CorpusEntryRec rec;
        rec.path = entry.path;
        auto prev = corpus_index_.find(entry.path);
        if (prev != corpus_index_.end()) {
          // A failed load/parse keeps the last-known fingerprint.
          rec.schema_fp = prev->second.schema_fp;
        }
        if (entry.schema.root() != nullptr) {
          rec.schema_fp = xsd::SchemaFingerprint(entry.schema);
        }
        auto breaker = breakers_.find(entry.path);
        if (breaker != breakers_.end()) {
          rec.breaker_failures = static_cast<uint32_t>(
              std::max(0, breaker->second.consecutive_failures()));
        }
        if (prev == corpus_index_.end() || !(prev->second == rec)) {
          corpus_index_[entry.path] = rec;
          changed.push_back(std::move(rec));
        }
      }
    }
    if (persist_ != nullptr) {
      for (const persist::CorpusEntryRec& rec : changed) {
        Status appended = persist_->AppendCorpus(rec);
        if (!appended.ok()) {
          QMATCH_COUNTER_ADD("persist.append_dropped", 1);
          break;
        }
      }
      MaybeCompactPersist();
    }
    // Replicate every changed record even when a local append failed — the
    // in-memory state moved, and the stream mirrors state, not the disk.
    for (const persist::CorpusEntryRec& rec : changed) NotifyReplicated(rec);
  }
  return out;
}

std::vector<MatchResult> MatchEngine::MatchOneToMany(
    const xsd::Schema& query,
    const std::vector<const xsd::Schema*>& candidates) const {
  std::vector<MatchJob> jobs;
  jobs.reserve(candidates.size());
  for (const xsd::Schema* candidate : candidates) {
    jobs.push_back(MatchJob{&query, candidate});
  }
  return MatchAll(jobs);
}

double MatchEngine::Pressure() const {
  return std::max(admission_.Pressure(), process_budget_.Pressure());
}

MatchEngineCacheStats MatchEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  MatchEngineCacheStats stats = cache_stats_;
  stats.entries = cache_lru_.size();
  return stats;
}

void MatchEngine::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_lru_.clear();
  cache_index_.clear();
  cache_stats_ = MatchEngineCacheStats{};
}

}  // namespace qmatch::core
