#ifndef QMATCH_CORE_ENGINE_H_
#define QMATCH_CORE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/admission.h"
#include "common/cancel.h"
#include "common/memory_budget.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/qmatch.h"
#include "match/matcher.h"
#include "persist/store.h"
#include "xsd/parser.h"
#include "xsd/schema.h"

namespace qmatch::core {

/// Overload-protection knobs: admission control, memory budgets and the
/// pressure-driven degradation ladder. Every default leaves the mechanism
/// off, so an unconfigured engine behaves bit-identically to one built
/// before this layer existed.
struct OverloadOptions {
  /// Admission control over typed requests (cost = |Ns|·|Nt| node pairs).
  /// Disabled while `admission.max_inflight_cost` is 0.
  AdmissionOptions admission;

  /// Process-wide memory budget shared by every request (0 = unlimited).
  uint64_t process_budget_bytes = 0;

  /// Per-request memory budget, charged into the process budget
  /// (0 = unlimited). Bounds one request's pairwise table + parse arena.
  uint64_t request_budget_bytes = 0;

  /// Degradation ladder thresholds on the pressure signal
  /// (max of admission pressure and process-budget watermark, in [0, 1]):
  /// pressure >= capped_depth_pressure degrades to kCappedDepth,
  /// >= label_only_pressure to kLabelOnly. A threshold > 1 disables that
  /// rung.
  double capped_depth_pressure = 0.75;
  double label_only_pressure = 0.90;

  /// Subtree-depth cap of the kCappedDepth rung (see TreeMatchOptions).
  size_t children_depth_cap = 3;

  /// Per-corpus-entry circuit breaker (see CircuitBreaker): consecutive
  /// load/parse/internal failures before the entry stops being admitted,
  /// and how long it stays open.
  int breaker_failure_threshold = 3;
  std::chrono::milliseconds breaker_cooldown{250};
};

/// Tuning knobs for the parallel batch-match engine.
struct MatchEngineOptions {
  /// Total worker parallelism including the calling thread; 0 picks the
  /// hardware concurrency. threads=1 is the sequential reference path.
  size_t threads = 0;

  /// Capacity (entries) of the bounded LRU result cache; 0 disables
  /// caching. One entry stores the correspondences of one
  /// (source fingerprint, target fingerprint, config) triple by path, so
  /// repeated corpus queries — the schema_search workload — skip the
  /// O(n·m) table entirely and only rehydrate node pointers.
  size_t cache_capacity = 128;

  /// Pairwise tables with fewer than this many (source, target) pairs are
  /// filled sequentially even when workers are available: below this size
  /// the fan-out overhead dominates the table fill.
  size_t min_parallel_pairs = 2048;

  /// Overload protection (admission, budgets, degradation). All off by
  /// default.
  OverloadOptions overload;

  /// Directory of the crash-safe persistence layer (DESIGN.md §12). When
  /// set, the result cache and the corpus index are journaled there and
  /// reloaded on construction (warm start); recovered cache entries serve
  /// bit-identical QoM to a fresh compute. Entries whose config fingerprint
  /// does not match this engine's are dropped, never trusted. Empty (the
  /// default) = persistence off.
  std::string persist_dir;

  /// Journal appends between automatic compactions of the journal into the
  /// snapshot. 0 disables periodic compaction; shutdown still compacts.
  size_t persist_compact_interval = 256;
};

/// Observability counters of the result cache.
struct MatchEngineCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t entries = 0;
};

/// One unit of corpus work: match *source against *target. Both schemas
/// must outlive the returned results.
struct MatchJob {
  const xsd::Schema* source = nullptr;
  const xsd::Schema* target = nullptr;
};

/// Per-request robustness envelope: a deadline for the whole request and an
/// optional cancellation token, both polled cooperatively down to
/// node-pair granularity inside TreeMatch. Default = unbounded,
/// uncancellable (the classic run-to-completion behaviour).
struct EngineRequestOptions {
  Deadline deadline;
  const CancellationToken* cancel = nullptr;

  /// Pins the degradation mode instead of letting the pressure signal pick
  /// it — tests and quality experiments use this to get a deterministic
  /// degraded run; production callers normally leave it unset.
  std::optional<MatchMode> force_mode;
};

/// Typed outcome of one deadline/cancellation-aware match. `status` is the
/// request's type: OK, kDeadlineExceeded, kCancelled, or a load/parse/
/// internal error. A degraded request still carries whatever completed —
/// `result.correspondences` is always a subset of what the fault-free,
/// unbounded run would report (the monotone partial-result contract,
/// DESIGN.md §10).
struct EngineMatchResult {
  Status status;
  MatchResult result;
  /// Table-fill progress: completed_rows == total_rows iff the pairwise
  /// QoM table ran to completion (then status is OK or a load error).
  size_t completed_rows = 0;
  size_t total_rows = 0;

  bool ok() const { return status.ok(); }
};

/// Options of MatchCorpus — corpus loading plus the request envelope.
struct CorpusMatchOptions {
  /// Budget/cancellation shared by every schema in the corpus request.
  EngineRequestOptions request;

  /// XSD parse options applied to each loaded file.
  xsd::ParseOptions parse;

  /// Total load attempts per file (1 = no retry). Only kIoError failures
  /// are retried — transient by assumption (NFS blips, the
  /// `engine.corpus.load` failpoint); parse errors are deterministic and
  /// never retried.
  size_t max_load_attempts = 3;

  /// Exponential backoff between load attempts: attempt k sleeps
  /// base * 2^k, jittered to [50%, 100%] on a seeded stream and capped —
  /// deterministic for a given (seed, path, attempt), never past the
  /// request deadline.
  std::chrono::milliseconds backoff_base{1};
  std::chrono::milliseconds backoff_cap{50};
  uint64_t backoff_seed = 0x51D3CAFEULL;
};

/// Outcome of one corpus file inside a MatchCorpus request.
struct CorpusEntryResult {
  std::string path;
  Status status;  ///< OK | kIoError | kParseError | kDeadlineExceeded | kCancelled | kInternal
  /// The parsed candidate schema, owned here because `result`'s
  /// correspondences point into its node tree (moving a Schema keeps node
  /// addresses stable, so vector growth in `entries` is safe). Empty
  /// (null root) when loading or parsing failed.
  xsd::Schema schema;
  MatchResult result;
  size_t completed_rows = 0;
  size_t total_rows = 0;
  size_t load_attempts = 0;

  bool ok() const { return status.ok(); }
};

/// Aggregate result of MatchCorpus: entries[i] always corresponds to
/// paths[i], every entry carries a typed status, and the tallies account
/// for every request (ok + degraded == entries.size()).
struct CorpusMatchResult {
  std::vector<CorpusEntryResult> entries;
  size_t ok = 0;
  size_t degraded = 0;  ///< deadline + cancelled + load/parse errors
};

/// MatchEngine — the production front door to QMatch for corpus-scale
/// workloads. Wraps one QMatch configuration with
///
///  1. a fixed ThreadPool that fans a batch of (source, target) pairs out
///     across workers with deterministic, input-ordered results
///     (`MatchAll`, `MatchOneToMany`);
///  2. a row-parallel fill of the inner pairwise-QoM table for a single
///     large match (`Match`), sharded by source level so the bottom-up
///     memoisation is preserved — output is bit-identical to the
///     sequential path for every thread count (proven by
///     tests/core_engine_test.cpp, including under ThreadSanitizer);
///  3. a bounded LRU cache keyed on (schema fingerprint pair, config
///     hash), so repeated queries against a repository skip recomputation.
///
/// The engine is itself a `Matcher`, so it drops into every API that
/// consumes one (eval::RankSchemas, the composite matcher, the CLI).
/// All public methods are safe to call concurrently.
class MatchEngine : public Matcher {
 public:
  explicit MatchEngine(MatchEngineOptions options = {});
  explicit MatchEngine(QMatchConfig config, MatchEngineOptions options = {});
  /// `thesaurus` is borrowed (may be null) and must outlive the engine.
  MatchEngine(QMatchConfig config, const lingua::Thesaurus* thesaurus,
              MatchEngineOptions options);
  ~MatchEngine() override;

  std::string_view name() const override { return "hybrid"; }

  const QMatchConfig& config() const { return matcher_.config(); }

  /// Fingerprint of every config field that influences match output — the
  /// cache key component and the persistence-layer trust boundary (records
  /// from a differently-fingerprinted engine are dropped on load).
  uint64_t config_hash() const { return config_hash_; }

  /// Resolved total parallelism (>= 1).
  size_t threads() const { return threads_; }

  /// Matches one pair, using the row-parallel table fill for large tables
  /// and serving/filling the result cache.
  MatchResult Match(const xsd::Schema& source,
                    const xsd::Schema& target) const override;

  /// Raw pairwise QoM matrix, row-parallel for large tables (uncached —
  /// the matrix dominates the recomputation cost anyway).
  match::SimilarityMatrix Similarity(const xsd::Schema& source,
                                     const xsd::Schema& target) const override;

  /// Matches every job, fanning jobs out across the pool. results[i]
  /// always corresponds to jobs[i] and every result is bit-identical to a
  /// sequential `QMatch::Match` on the same pair, regardless of thread
  /// count or completion order.
  std::vector<MatchResult> MatchAll(const std::vector<MatchJob>& jobs) const;

  /// Convenience fan-out of one query against a candidate repository —
  /// the paper's Section 1 retrieval scenario.
  std::vector<MatchResult> MatchOneToMany(
      const xsd::Schema& query,
      const std::vector<const xsd::Schema*>& candidates) const;

  /// Deadline/cancellation-aware single match. Never blocks past the
  /// deadline (modulo one node-pair of slack): the TreeMatch table fill
  /// polls the envelope at node-pair granularity and returns a typed
  /// partial result instead of running to completion. A FailpointException
  /// or other internal throw is converted to a kInternal status — the
  /// request always returns, typed. Degraded results are never cached.
  EngineMatchResult Match(const xsd::Schema& source, const xsd::Schema& target,
                          const EngineRequestOptions& options) const;

  /// Batch fan-out with a shared request envelope: results[i] corresponds
  /// to jobs[i] and each carries its own typed status (a deadline trips
  /// jobs still running; completed jobs keep their full results).
  std::vector<EngineMatchResult> MatchAll(
      const std::vector<MatchJob>& jobs,
      const EngineRequestOptions& options) const;

  /// The production corpus entry point: loads, parses and matches `query`
  /// against every schema file in `paths`, fanning entries across the
  /// pool. Transient (kIoError) load failures are retried with seeded,
  /// jittered exponential backoff; parse failures, deadline expiry and
  /// cancellation degrade that entry to a typed status without disturbing
  /// the others. entries[i] always corresponds to paths[i].
  CorpusMatchResult MatchCorpus(const xsd::Schema& query,
                                const std::vector<std::string>& paths,
                                const CorpusMatchOptions& options = {}) const;

  MatchEngineCacheStats cache_stats() const;
  void ClearCache();

  /// True when `persist_dir` was set and the store opened successfully.
  bool persist_enabled() const { return persist_ != nullptr; }

  /// Accounting of the warm-start load: what was recovered, dropped
  /// untrusted, or truncated as a torn journal tail. Zero-initialised when
  /// persistence is off.
  const persist::LoadStats& persist_load_stats() const {
    return persist_load_stats_;
  }

  /// Compacts the persistence journal into a fresh snapshot of the current
  /// in-memory state (cache + corpus index). No-op (OK) when persistence is
  /// off. Runs automatically every `persist_compact_interval` journal
  /// appends and once more at destruction.
  Status CompactPersist() const;

  /// Replication hooks (DESIGN.md §15). The observer is invoked after each
  /// durable state mutation — a cache store or a corpus-index update — with
  /// the *same record* the local journal receives, so a primary can ship
  /// its journal stream to a warm standby byte-for-byte. Callbacks run on
  /// whatever thread performed the mutation, outside the engine's cache/
  /// breaker locks; they must not call back into the engine.
  struct ReplicationObserver {
    std::function<void(const persist::CacheEntryRec&)> cache;
    std::function<void(const persist::CorpusEntryRec&)> corpus;
  };
  void SetReplicationObserver(ReplicationObserver observer);

  /// Applies one record received from a primary's replication stream: the
  /// same config-fingerprint trust boundary and idempotent last-wins upsert
  /// as warm-start replay, journaled into the local persist store (so a
  /// promoted standby is immediately durable) but NEVER echoed to the
  /// replication observer — a standby cannot loop records back. Safe to
  /// call concurrently with serving reads.
  void ApplyReplicatedCacheEntry(const persist::CacheEntryRec& rec);
  void ApplyReplicatedCorpusEntry(const persist::CorpusEntryRec& rec);

  /// Full durable state (cache entries oldest-first + corpus index) as
  /// persistable records — the replication snapshot anchor a primary sends
  /// to a standby that is too far behind to catch up from the log.
  persist::StoreState ExportState() const;

  /// Live load signal in [0, 1]: max of admission pressure (cost/queue
  /// fill) and the process-budget watermark. Drives the degradation
  /// ladder; also exported as the `engine.pressure_permille` gauge.
  double Pressure() const;

  /// Read-only access to the overload-protection state (tests, benches).
  const AdmissionController& admission() const { return admission_; }
  const MemoryBudget& process_budget() const { return process_budget_; }

 private:
  struct CacheKey {
    uint64_t source_fp = 0;
    uint64_t target_fp = 0;
    uint64_t config_hash = 0;
    friend auto operator<=>(const CacheKey&, const CacheKey&) = default;
  };
  /// Cached results store paths, not node pointers: a later call may pass
  /// different Schema objects with the same fingerprint, so pointers are
  /// rehydrated against the caller's schemas on every hit.
  struct CachedCorrespondence {
    std::string source_path;
    std::string target_path;
    double score = 0.0;
  };
  struct CacheEntry {
    CacheKey key;
    std::string algorithm;
    double schema_qom = 0.0;
    std::vector<CachedCorrespondence> correspondences;
  };

  MatchResult MatchUncached(const xsd::Schema& source,
                            const xsd::Schema& target, ThreadPool* pool) const;
  bool CacheLookup(const CacheKey& key, const xsd::Schema& source,
                   const xsd::Schema& target, MatchResult* out) const;
  void CacheStore(const CacheKey& key, const MatchResult& result) const;
  CacheKey MakeKey(const xsd::Schema& source, const xsd::Schema& target) const;

  /// Opens the persistent store and warm-starts the cache, breakers and
  /// corpus index from it. A store that cannot open leaves the engine fully
  /// functional, just cold.
  void InitPersist();
  /// Idempotent last-wins LRU upsert of one persisted cache record; caller
  /// holds cache_mutex_ and has already verified the config hash.
  void UpsertCacheRecLocked(const persist::CacheEntryRec& rec) const;
  /// Corpus-index + breaker upsert of one persisted record; caller holds
  /// breaker_mutex_.
  void UpsertCorpusRecLocked(const persist::CorpusEntryRec& rec) const;
  /// Invoke the replication observer (if set) outside every engine lock.
  void NotifyReplicated(const persist::CacheEntryRec& rec) const;
  void NotifyReplicated(const persist::CorpusEntryRec& rec) const;
  bool HasReplicationObserver() const;
  /// Full in-memory state as persistable records, cache in oldest-first
  /// order so warm-start replay reproduces today's LRU recency.
  persist::StoreState SnapshotState() const;
  void MaybeCompactPersist() const;

  QMatch matcher_;
  uint64_t config_hash_ = 0;
  size_t threads_ = 1;
  MatchEngineOptions options_;
  mutable std::unique_ptr<ThreadPool> pool_;

  mutable AdmissionController admission_;
  mutable MemoryBudget process_budget_;
  mutable std::mutex breaker_mutex_;
  /// Per-corpus-path circuit breakers, created on first use and persistent
  /// across MatchCorpus requests (that persistence is the point: repeated
  /// failures across requests open the circuit).
  mutable std::map<std::string, CircuitBreaker> breakers_;

  mutable std::mutex cache_mutex_;
  mutable std::list<CacheEntry> cache_lru_;  // front = most recent
  mutable std::map<CacheKey, std::list<CacheEntry>::iterator> cache_index_;
  mutable MatchEngineCacheStats cache_stats_;

  /// Crash-safe persistence (null = off). The store has its own mutex;
  /// lock order is always engine mutex -> store mutex, never the reverse.
  mutable std::unique_ptr<persist::PersistentStore> persist_;
  persist::LoadStats persist_load_stats_;
  /// Last journaled record per corpus path — MatchCorpus appends an update
  /// only when the fingerprint or breaker count actually changed. Guarded
  /// by breaker_mutex_ (it shadows the breakers).
  mutable std::map<std::string, persist::CorpusEntryRec> corpus_index_;

  /// Replication observer (DESIGN.md §15); guarded by its own mutex so a
  /// primary can attach/detach while requests are in flight. Lock order:
  /// never held while any other engine lock is taken.
  mutable std::mutex observer_mutex_;
  ReplicationObserver observer_;
};

}  // namespace qmatch::core

#endif  // QMATCH_CORE_ENGINE_H_
