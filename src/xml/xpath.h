#ifndef QMATCH_XML_XPATH_H_
#define QMATCH_XML_XPATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace qmatch::xml {

/// A minimal XPath-like selector over the DOM — the query substrate of the
/// paper's motivating scenario (querying schemaless XML documents).
///
/// Supported grammar (absolute paths only):
///   /a/b            child element steps (local names)
///   /a/*            wildcard element step
///   /a/b[2]         1-based positional predicate among same-name siblings
///   /a//b           descendant-or-self step
///   /a/b/@attr      terminal attribute selection (SelectValues only)
///   /a/b/text()     terminal text selection   (SelectValues only)
///
/// Example: `SelectValues(doc, "/bookstore/book[2]/title/text()")`.
class XPath {
 public:
  /// Parses a selector; fails on syntax errors.
  static Result<XPath> Compile(std::string_view expression);

  /// All elements matched by the element steps, in document order.
  std::vector<const XmlElement*> Select(const XmlDocument& doc) const;

  /// The string values produced by a terminal @attr / text() step (or the
  /// matched elements' inner text when the expression ends in an element
  /// step).
  std::vector<std::string> SelectValues(const XmlDocument& doc) const;

  /// First match or nullptr / nullopt convenience forms.
  const XmlElement* SelectFirst(const XmlDocument& doc) const;

  const std::string& expression() const { return expression_; }

 private:
  struct Step {
    std::string name;        // element local name, or "*"
    bool descendant = false; // came after "//"
    int position = 0;        // 1-based; 0 = all
  };
  enum class Terminal { kNone, kAttribute, kText };

  XPath() = default;

  std::string expression_;
  std::vector<Step> steps_;
  Terminal terminal_ = Terminal::kNone;
  std::string attribute_;  // for Terminal::kAttribute
};

/// One-shot helpers.
Result<std::vector<const XmlElement*>> SelectElements(const XmlDocument& doc,
                                                      std::string_view xpath);
Result<std::vector<std::string>> SelectValues(const XmlDocument& doc,
                                              std::string_view xpath);

}  // namespace qmatch::xml

#endif  // QMATCH_XML_XPATH_H_
