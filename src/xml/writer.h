#ifndef QMATCH_XML_WRITER_H_
#define QMATCH_XML_WRITER_H_

#include <string>

#include "xml/dom.h"

namespace qmatch::xml {

/// Serialization options for `ToString`.
struct WriteOptions {
  /// Spaces per indentation level; 0 emits a compact single-line document.
  int indent = 2;
  /// Whether to emit the `<?xml ...?>` declaration.
  bool declaration = true;
};

/// Serializes a document to XML text. Text content and attribute values are
/// escaped; CDATA runs are re-emitted as CDATA sections.
std::string ToString(const XmlDocument& doc, const WriteOptions& options = {});

/// Serializes a single element subtree.
std::string ToString(const XmlElement& element,
                     const WriteOptions& options = {});

}  // namespace qmatch::xml

#endif  // QMATCH_XML_WRITER_H_
