#include "xml/parser.h"

#include <memory>
#include <string>

#include "common/string_util.h"
#include "fault/failpoint.h"
#include "obs/obs.h"
#include "xml/cursor.h"
#include "xml/escape.h"

namespace qmatch::xml {

namespace {

/// Estimated DOM footprint charged to the memory budget per element node:
/// the XmlElement object plus typical name/attribute/child-vector storage.
/// An estimate, not exact accounting — the budget bounds admitted parse
/// memory to the right order of magnitude.
constexpr size_t kApproxBytesPerNode = 512;

bool IsNameStartChar(char c) {
  return IsAsciiAlpha(c) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || IsAsciiDigit(c) || c == '-' || c == '.';
}

/// Recursive-descent XML parser over a TextCursor.
class Parser {
 public:
  Parser(std::string_view input, const ParserOptions& options)
      : cursor_(input), options_(options), charge_(options.budget) {}

  Result<XmlDocument> ParseDocument() {
    XmlDocument doc;
    // Optional UTF-8 BOM.
    cursor_.Consume("\xEF\xBB\xBF");
    QMATCH_RETURN_IF_ERROR(ParseProlog(&doc));
    cursor_.SkipWhitespace();
    if (!cursor_.LookingAt("<")) {
      return Error("expected root element");
    }
    QMATCH_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root, ParseElement());
    doc.set_root(std::move(root));
    // Trailing misc: whitespace, comments, PIs only.
    QMATCH_RETURN_IF_ERROR(SkipMisc());
    if (!cursor_.AtEnd()) {
      return Error("unexpected content after root element");
    }
    return doc;
  }

 private:
  Status Error(std::string_view what) const {
    return Status::ParseError(std::string(what) + " at " + cursor_.Location());
  }

  // Skips whitespace, comments and processing instructions.
  Status SkipMisc() {
    for (;;) {
      cursor_.SkipWhitespace();
      if (cursor_.LookingAt("<!--")) {
        QMATCH_RETURN_IF_ERROR(SkipComment());
      } else if (cursor_.LookingAt("<?")) {
        QMATCH_RETURN_IF_ERROR(SkipProcessingInstruction());
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseProlog(XmlDocument* doc) {
    cursor_.SkipWhitespace();
    if (cursor_.LookingAt("<?xml") &&
        (IsAsciiSpace(cursor_.PeekAt(5)) || cursor_.PeekAt(5) == '?')) {
      QMATCH_RETURN_IF_ERROR(ParseXmlDeclaration(doc));
    }
    QMATCH_RETURN_IF_ERROR(SkipMisc());
    if (cursor_.LookingAt("<!DOCTYPE")) {
      QMATCH_RETURN_IF_ERROR(SkipDoctype());
      QMATCH_RETURN_IF_ERROR(SkipMisc());
    }
    return Status::OK();
  }

  Status ParseXmlDeclaration(XmlDocument* doc) {
    cursor_.Consume("<?xml");
    std::string version = "1.0";
    std::string encoding = "UTF-8";
    for (;;) {
      cursor_.SkipWhitespace();
      if (cursor_.Consume("?>")) break;
      if (cursor_.AtEnd()) return Error("unterminated XML declaration");
      QMATCH_ASSIGN_OR_RETURN(XmlAttribute attr, ParseAttribute());
      if (attr.name == "version") {
        version = attr.value;
      } else if (attr.name == "encoding") {
        encoding = attr.value;
      } else if (attr.name != "standalone") {
        return Error("unknown XML declaration attribute '" + attr.name + "'");
      }
    }
    doc->set_declaration(std::move(version), std::move(encoding));
    return Status::OK();
  }

  Status SkipComment() {
    cursor_.Consume("<!--");
    std::string_view ignored;
    if (!cursor_.ReadUntil("-->", &ignored)) {
      return Error("unterminated comment");
    }
    cursor_.Consume("-->");
    if (ignored.find("--") != std::string_view::npos) {
      return Error("'--' not allowed inside comment");
    }
    return Status::OK();
  }

  Status SkipProcessingInstruction() {
    cursor_.Consume("<?");
    std::string_view ignored;
    if (!cursor_.ReadUntil("?>", &ignored)) {
      return Error("unterminated processing instruction");
    }
    cursor_.Consume("?>");
    return Status::OK();
  }

  // Skips <!DOCTYPE ...>, tolerating an internal subset in brackets.
  Status SkipDoctype() {
    cursor_.Consume("<!DOCTYPE");
    int bracket_depth = 0;
    while (!cursor_.AtEnd()) {
      char c = cursor_.Advance();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth == 0) {
        return Status::OK();
      }
    }
    return Error("unterminated DOCTYPE");
  }

  Result<std::string> ParseName() {
    if (!IsNameStartChar(cursor_.Peek())) {
      return Error("expected a name");
    }
    std::string name;
    while (IsNameChar(cursor_.Peek())) {
      name.push_back(cursor_.Advance());
    }
    return name;
  }

  Result<XmlAttribute> ParseAttribute() {
    QMATCH_ASSIGN_OR_RETURN(std::string name, ParseName());
    cursor_.SkipWhitespace();
    if (!cursor_.Consume("=")) {
      return Error("expected '=' after attribute name '" + name + "'");
    }
    cursor_.SkipWhitespace();
    char quote = cursor_.Peek();
    if (quote != '"' && quote != '\'') {
      return Error("expected quoted attribute value");
    }
    cursor_.Advance();
    std::string raw;
    for (;;) {
      if (cursor_.AtEnd()) return Error("unterminated attribute value");
      char c = cursor_.Peek();
      if (c == quote) {
        cursor_.Advance();
        break;
      }
      if (c == '<') return Error("'<' not allowed in attribute value");
      raw.push_back(cursor_.Advance());
    }
    Result<std::string> decoded = DecodeEntities(raw);
    if (!decoded.ok()) {
      return decoded.status().WithContext("in attribute '" + name + "'");
    }
    return XmlAttribute{std::move(name), std::move(decoded).value()};
  }

  Result<std::unique_ptr<XmlElement>> ParseElement() {
    if (depth_ >= options_.max_depth) {
      return Status::ResourceExhausted(
          "element nesting deeper than " + std::to_string(options_.max_depth) +
          " at " + cursor_.Location());
    }
    if (nodes_ >= options_.max_nodes) {
      return Status::ResourceExhausted(
          "document has more than " + std::to_string(options_.max_nodes) +
          " elements at " + cursor_.Location());
    }
    ++nodes_;
    QMATCH_RETURN_IF_ERROR(
        charge_.Add(kApproxBytesPerNode, "xml parse: element node"));
    ++depth_;
    struct DepthGuard {
      size_t& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    if (!cursor_.Consume("<")) return Error("expected '<'");
    QMATCH_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto element = std::make_unique<XmlElement>(name);

    // Attributes.
    for (;;) {
      size_t skipped = cursor_.SkipWhitespace();
      char c = cursor_.Peek();
      if (c == '>' || c == '/' || c == '\0') break;
      if (skipped == 0) {
        return Error("expected whitespace before attribute in <" + name + ">");
      }
      QMATCH_ASSIGN_OR_RETURN(XmlAttribute attr, ParseAttribute());
      if (element->HasAttribute(attr.name)) {
        return Error("duplicate attribute '" + attr.name + "' in <" + name +
                     ">");
      }
      element->SetAttribute(attr.name, attr.value);
    }

    if (cursor_.Consume("/>")) return element;
    if (!cursor_.Consume(">")) {
      return Error("malformed start tag <" + name + ">");
    }

    // Content until matching end tag.
    QMATCH_RETURN_IF_ERROR(ParseContent(element.get(), name));
    return element;
  }

  Status ParseContent(XmlElement* element, const std::string& name) {
    std::string text;
    auto flush_text = [&]() -> Status {
      if (text.empty()) return Status::OK();
      Result<std::string> decoded = DecodeEntities(text);
      if (!decoded.ok()) {
        return decoded.status().WithContext("in text content of <" + name +
                                            ">");
      }
      element->AddText(std::move(decoded).value());
      text.clear();
      return Status::OK();
    };

    for (;;) {
      if (cursor_.AtEnd()) {
        return Error("unexpected end of input inside <" + name + ">");
      }
      if (cursor_.LookingAt("</")) {
        QMATCH_RETURN_IF_ERROR(flush_text());
        cursor_.Consume("</");
        QMATCH_ASSIGN_OR_RETURN(std::string end_name, ParseName());
        cursor_.SkipWhitespace();
        if (!cursor_.Consume(">")) {
          return Error("malformed end tag </" + end_name + ">");
        }
        if (end_name != name) {
          return Error("mismatched end tag: expected </" + name + ">, found </" +
                       end_name + ">");
        }
        return Status::OK();
      }
      if (cursor_.LookingAt("<!--")) {
        QMATCH_RETURN_IF_ERROR(flush_text());
        QMATCH_RETURN_IF_ERROR(SkipComment());
        continue;
      }
      if (cursor_.LookingAt("<![CDATA[")) {
        QMATCH_RETURN_IF_ERROR(flush_text());
        cursor_.Consume("<![CDATA[");
        std::string_view cdata;
        if (!cursor_.ReadUntil("]]>", &cdata)) {
          return Error("unterminated CDATA section");
        }
        cursor_.Consume("]]>");
        element->AddText(std::string(cdata), /*is_cdata=*/true);
        continue;
      }
      if (cursor_.LookingAt("<?")) {
        QMATCH_RETURN_IF_ERROR(flush_text());
        QMATCH_RETURN_IF_ERROR(SkipProcessingInstruction());
        continue;
      }
      if (cursor_.LookingAt("<!")) {
        return Error("unexpected markup declaration in content");
      }
      if (cursor_.Peek() == '<') {
        QMATCH_RETURN_IF_ERROR(flush_text());
        QMATCH_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                                ParseElement());
        element->AddChild(std::move(child));
        continue;
      }
      text.push_back(cursor_.Advance());
    }
  }

  TextCursor cursor_;
  const ParserOptions& options_;
  ScopedCharge charge_;  // released when the Parser dies (end of parse)
  size_t depth_ = 0;     // current element nesting depth
  size_t nodes_ = 0;     // element nodes created so far
};

#if QMATCH_OBS_ENABLED
size_t CountElements(const XmlElement& element) {
  size_t count = 1;
  for (const XmlChild& child : element.children()) {
    if (const auto* e = std::get_if<std::unique_ptr<XmlElement>>(&child)) {
      count += CountElements(**e);
    }
  }
  return count;
}
#endif

}  // namespace

Result<XmlDocument> Parse(std::string_view input) {
  return Parse(input, ParserOptions{});
}

Result<XmlDocument> Parse(std::string_view input,
                          const ParserOptions& options) {
  QMATCH_SPAN(span, "xml.parse");
  QMATCH_SPAN_ARG(span, "bytes", input.size());
  QMATCH_FAILPOINT_RETURN("xml.parse");
  QMATCH_COUNTER_ADD("xml.parse.documents", 1);
  QMATCH_COUNTER_ADD("xml.parse.bytes", input.size());
  if (input.size() > options.max_input_bytes) {
    QMATCH_COUNTER_ADD("xml.parse.errors", 1);
    return Status::ResourceExhausted(
        "input of " + std::to_string(input.size()) +
        " bytes exceeds max_input_bytes " +
        std::to_string(options.max_input_bytes));
  }
  Parser parser(input, options);
  Result<XmlDocument> result = parser.ParseDocument();
#if QMATCH_OBS_ENABLED
  if (result.ok()) {
    QMATCH_COUNTER_ADD("xml.parse.nodes", CountElements(*result.value().root()));
  } else {
    QMATCH_COUNTER_ADD("xml.parse.errors", 1);
  }
#endif
  return result;
}

Result<XmlDocument> ParseExpectingRoot(std::string_view input,
                                       std::string_view expected_root) {
  QMATCH_ASSIGN_OR_RETURN(XmlDocument doc, Parse(input));
  if (doc.root() == nullptr || doc.root()->LocalName() != expected_root) {
    return Status::ParseError(
        "expected root element '" + std::string(expected_root) + "', found '" +
        (doc.root() != nullptr ? std::string(doc.root()->name()) : "<none>") +
        "'");
  }
  return doc;
}

}  // namespace qmatch::xml
