#include "xml/dom.h"

#include <algorithm>

namespace qmatch::xml {

std::string_view XmlElement::LocalNameOf(std::string_view qname) {
  size_t colon = qname.find(':');
  return colon == std::string_view::npos ? qname : qname.substr(colon + 1);
}

std::string_view XmlElement::PrefixOf(std::string_view qname) {
  size_t colon = qname.find(':');
  return colon == std::string_view::npos ? std::string_view()
                                         : qname.substr(0, colon);
}

void XmlElement::SetAttribute(std::string_view name, std::string_view value) {
  for (XmlAttribute& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::string(value);
      return;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
}

const std::string* XmlElement::FindAttribute(std::string_view name) const {
  for (const XmlAttribute& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

std::string_view XmlElement::AttributeOr(std::string_view name,
                                         std::string_view fallback) const {
  const std::string* v = FindAttribute(name);
  return v != nullptr ? std::string_view(*v) : fallback;
}

bool XmlElement::RemoveAttribute(std::string_view name) {
  auto it = std::find_if(attributes_.begin(), attributes_.end(),
                         [&](const XmlAttribute& a) { return a.name == name; });
  if (it == attributes_.end()) return false;
  attributes_.erase(it);
  return true;
}

XmlElement* XmlElement::AddChild(std::unique_ptr<XmlElement> child) {
  child->parent_ = this;
  XmlElement* borrowed = child.get();
  children_.emplace_back(std::move(child));
  return borrowed;
}

XmlElement* XmlElement::AddChildElement(std::string name) {
  return AddChild(std::make_unique<XmlElement>(std::move(name)));
}

void XmlElement::AddText(std::string text, bool is_cdata) {
  children_.emplace_back(XmlText{std::move(text), is_cdata});
}

std::vector<const XmlElement*> XmlElement::ChildElements() const {
  std::vector<const XmlElement*> out;
  for (const XmlChild& child : children_) {
    if (const auto* el = std::get_if<std::unique_ptr<XmlElement>>(&child)) {
      out.push_back(el->get());
    }
  }
  return out;
}

std::vector<XmlElement*> XmlElement::ChildElements() {
  std::vector<XmlElement*> out;
  for (XmlChild& child : children_) {
    if (auto* el = std::get_if<std::unique_ptr<XmlElement>>(&child)) {
      out.push_back(el->get());
    }
  }
  return out;
}

std::vector<const XmlElement*> XmlElement::ChildElementsNamed(
    std::string_view local_name) const {
  std::vector<const XmlElement*> out;
  for (const XmlElement* el : ChildElements()) {
    if (el->LocalName() == local_name) out.push_back(el);
  }
  return out;
}

const XmlElement* XmlElement::FirstChildElement(
    std::string_view local_name) const {
  for (const XmlElement* el : ChildElements()) {
    if (el->LocalName() == local_name) return el;
  }
  return nullptr;
}

const XmlElement* XmlElement::FirstChildElement() const {
  for (const XmlChild& child : children_) {
    if (const auto* el = std::get_if<std::unique_ptr<XmlElement>>(&child)) {
      return el->get();
    }
  }
  return nullptr;
}

std::string XmlElement::InnerText() const {
  std::string out;
  for (const XmlChild& child : children_) {
    if (const XmlText* text = std::get_if<XmlText>(&child)) {
      out += text->text;
    }
  }
  return out;
}

size_t XmlElement::CountDescendantElements() const {
  size_t count = 1;
  for (const XmlElement* el : ChildElements()) {
    count += el->CountDescendantElements();
  }
  return count;
}

size_t XmlElement::MaxDepth() const {
  size_t deepest = 0;
  for (const XmlElement* el : ChildElements()) {
    deepest = std::max(deepest, 1 + el->MaxDepth());
  }
  return deepest;
}

const std::string* XmlElement::ResolveNamespacePrefix(
    std::string_view prefix) const {
  const std::string attr_name =
      prefix.empty() ? std::string("xmlns") : "xmlns:" + std::string(prefix);
  for (const XmlElement* el = this; el != nullptr; el = el->parent()) {
    if (const std::string* v = el->FindAttribute(attr_name)) return v;
  }
  return nullptr;
}

}  // namespace qmatch::xml
