#include "xml/escape.h"

#include <cstdint>

#include "common/string_util.h"

namespace qmatch::xml {

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\t':
        out += "&#9;";
        break;
      case '\n':
        out += "&#10;";
        break;
      case '\r':
        out += "&#13;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

// Appends `cp` to `out` as UTF-8. Returns false for invalid code points.
bool AppendUtf8(uint32_t cp, std::string& out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return false;
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

}  // namespace

Result<std::string> DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view body = s.substr(i + 1, semi - i - 1);
    if (body.empty()) {
      return Status::ParseError("empty entity reference '&;'");
    }
    if (body == "amp") {
      out.push_back('&');
    } else if (body == "lt") {
      out.push_back('<');
    } else if (body == "gt") {
      out.push_back('>');
    } else if (body == "apos") {
      out.push_back('\'');
    } else if (body == "quot") {
      out.push_back('"');
    } else if (body[0] == '#') {
      std::string_view digits = body.substr(1);
      uint32_t cp = 0;
      bool hex = !digits.empty() && (digits[0] == 'x' || digits[0] == 'X');
      if (hex) digits = digits.substr(1);
      if (digits.empty()) {
        return Status::ParseError("empty character reference");
      }
      for (char d : digits) {
        uint32_t v;
        if (IsAsciiDigit(d)) {
          v = static_cast<uint32_t>(d - '0');
        } else if (hex && d >= 'a' && d <= 'f') {
          v = static_cast<uint32_t>(d - 'a' + 10);
        } else if (hex && d >= 'A' && d <= 'F') {
          v = static_cast<uint32_t>(d - 'A' + 10);
        } else {
          return Status::ParseError("malformed character reference '&" +
                                    std::string(body) + ";'");
        }
        cp = cp * (hex ? 16u : 10u) + v;
        if (cp > 0x10FFFF) {
          return Status::ParseError("character reference out of range");
        }
      }
      if (!AppendUtf8(cp, out)) {
        return Status::ParseError("invalid code point in character reference");
      }
    } else {
      return Status::ParseError("undefined entity '&" + std::string(body) +
                                ";'");
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace qmatch::xml
