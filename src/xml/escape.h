#ifndef QMATCH_XML_ESCAPE_H_
#define QMATCH_XML_ESCAPE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace qmatch::xml {

/// Escapes character data for use as XML text content: `&`, `<`, `>`.
std::string EscapeText(std::string_view s);

/// Escapes a string for use inside a double-quoted attribute value:
/// `&`, `<`, `>`, `"`, plus tab/CR/LF as character references.
std::string EscapeAttribute(std::string_view s);

/// Decodes the five predefined XML entities (&amp; &lt; &gt; &apos; &quot;)
/// and decimal / hexadecimal character references (&#123; &#x1F;) in `s`.
/// Non-ASCII code points are encoded as UTF-8. Fails on malformed or
/// undefined entity references.
Result<std::string> DecodeEntities(std::string_view s);

}  // namespace qmatch::xml

#endif  // QMATCH_XML_ESCAPE_H_
