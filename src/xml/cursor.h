#ifndef QMATCH_XML_CURSOR_H_
#define QMATCH_XML_CURSOR_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace qmatch::xml {

/// A character cursor over an in-memory XML document that tracks the current
/// line and column for error reporting. All parsing in `xml::Parser` goes
/// through this class.
class TextCursor {
 public:
  explicit TextCursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  size_t pos() const { return pos_; }
  size_t line() const { return line_; }
  size_t column() const { return column_; }

  /// Current character; '\0' at end of input.
  char Peek() const { return AtEnd() ? '\0' : input_[pos_]; }

  /// Character at `offset` past the current position; '\0' past the end.
  char PeekAt(size_t offset) const {
    size_t p = pos_ + offset;
    return p >= input_.size() ? '\0' : input_[p];
  }

  /// Consumes and returns the current character ('\0' at end).
  char Advance();

  /// Consumes `prefix` if the input starts with it here; returns whether it did.
  bool Consume(std::string_view prefix);

  /// True if the remaining input starts with `prefix`.
  bool LookingAt(std::string_view prefix) const {
    return input_.substr(pos_, prefix.size()) == prefix;
  }

  /// Skips ASCII whitespace; returns how many characters were skipped.
  size_t SkipWhitespace();

  /// Consumes characters until (not including) the next occurrence of
  /// `delimiter`, returning them. Returns false if `delimiter` never occurs.
  bool ReadUntil(std::string_view delimiter, std::string_view* out);

  /// "file:line:column" style location string for error messages.
  std::string Location() const;

 private:
  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace qmatch::xml

#endif  // QMATCH_XML_CURSOR_H_
