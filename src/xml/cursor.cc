#include "xml/cursor.h"

#include "common/string_util.h"

namespace qmatch::xml {

char TextCursor::Advance() {
  if (AtEnd()) return '\0';
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool TextCursor::Consume(std::string_view prefix) {
  if (!LookingAt(prefix)) return false;
  for (size_t i = 0; i < prefix.size(); ++i) Advance();
  return true;
}

size_t TextCursor::SkipWhitespace() {
  size_t n = 0;
  while (!AtEnd() && IsAsciiSpace(Peek())) {
    Advance();
    ++n;
  }
  return n;
}

bool TextCursor::ReadUntil(std::string_view delimiter, std::string_view* out) {
  size_t hit = input_.find(delimiter, pos_);
  if (hit == std::string_view::npos) return false;
  size_t start = pos_;
  while (pos_ < hit) Advance();
  *out = input_.substr(start, hit - start);
  return true;
}

std::string TextCursor::Location() const {
  return StrFormat("line %zu, column %zu", line_, column_);
}

}  // namespace qmatch::xml
