#include "xml/writer.h"

#include "xml/escape.h"

namespace qmatch::xml {

namespace {

bool HasElementChildren(const XmlElement& element) {
  for (const XmlChild& child : element.children()) {
    if (std::holds_alternative<std::unique_ptr<XmlElement>>(child)) return true;
  }
  return false;
}

bool HasTextChildren(const XmlElement& element) {
  for (const XmlChild& child : element.children()) {
    if (std::holds_alternative<XmlText>(child)) return true;
  }
  return false;
}

void WriteElement(const XmlElement& element, const WriteOptions& options,
                  int depth, std::string& out) {
  const std::string pad =
      options.indent > 0
          ? std::string(static_cast<size_t>(options.indent * depth), ' ')
          : std::string();
  const char* newline = options.indent > 0 ? "\n" : "";

  out += pad;
  out += '<';
  out += element.name();
  for (const XmlAttribute& attr : element.attributes()) {
    out += ' ';
    out += attr.name;
    out += "=\"";
    out += EscapeAttribute(attr.value);
    out += '"';
  }

  if (element.children().empty()) {
    out += "/>";
    out += newline;
    return;
  }

  out += '>';

  // Mixed or text-only content is written inline to preserve the text
  // verbatim; element-only content is indented one level deeper.
  const bool inline_content =
      HasTextChildren(element) || !HasElementChildren(element);
  if (!inline_content) out += newline;

  for (const XmlChild& child : element.children()) {
    if (const auto* el = std::get_if<std::unique_ptr<XmlElement>>(&child)) {
      if (inline_content) {
        WriteOptions compact = options;
        compact.indent = 0;
        WriteElement(**el, compact, 0, out);
      } else {
        WriteElement(**el, options, depth + 1, out);
      }
    } else {
      const XmlText& text = std::get<XmlText>(child);
      if (text.is_cdata) {
        out += "<![CDATA[";
        out += text.text;
        out += "]]>";
      } else {
        out += EscapeText(text.text);
      }
    }
  }

  if (!inline_content) out += pad;
  out += "</";
  out += element.name();
  out += '>';
  out += newline;
}

}  // namespace

std::string ToString(const XmlDocument& doc, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"" + doc.version() + "\" encoding=\"" +
           doc.encoding() + "\"?>";
    out += options.indent > 0 ? "\n" : "";
  }
  if (doc.root() != nullptr) {
    WriteElement(*doc.root(), options, 0, out);
  }
  return out;
}

std::string ToString(const XmlElement& element, const WriteOptions& options) {
  std::string out;
  WriteElement(element, options, 0, out);
  return out;
}

}  // namespace qmatch::xml
