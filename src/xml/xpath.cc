#include "xml/xpath.h"

#include <deque>

#include "common/string_util.h"

namespace qmatch::xml {

Result<XPath> XPath::Compile(std::string_view expression) {
  XPath compiled;
  compiled.expression_ = std::string(expression);
  std::string_view rest = expression;
  if (rest.empty() || rest[0] != '/') {
    return Status::InvalidArgument("XPath must be absolute (start with '/')");
  }

  bool pending_descendant = false;
  while (!rest.empty()) {
    if (!rest.empty() && rest[0] == '/') {
      rest.remove_prefix(1);
      if (!rest.empty() && rest[0] == '/') {
        pending_descendant = true;
        rest.remove_prefix(1);
      }
    }
    if (rest.empty()) {
      return Status::InvalidArgument("XPath ends with '/'");
    }
    size_t end = rest.find('/');
    std::string_view token =
        end == std::string_view::npos ? rest : rest.substr(0, end);
    rest = end == std::string_view::npos ? std::string_view() : rest.substr(end);

    if (token.empty()) {
      return Status::InvalidArgument("empty XPath step");
    }
    // Terminal forms.
    if (token[0] == '@') {
      if (!rest.empty()) {
        return Status::InvalidArgument("@attribute must be the last step");
      }
      if (token.size() == 1) {
        return Status::InvalidArgument("empty attribute name");
      }
      compiled.terminal_ = Terminal::kAttribute;
      compiled.attribute_ = std::string(token.substr(1));
      break;
    }
    if (token == "text()") {
      if (!rest.empty()) {
        return Status::InvalidArgument("text() must be the last step");
      }
      compiled.terminal_ = Terminal::kText;
      break;
    }

    Step step;
    step.descendant = pending_descendant;
    pending_descendant = false;
    // Positional predicate.
    std::string_view name = token;
    if (size_t bracket = token.find('['); bracket != std::string_view::npos) {
      if (token.back() != ']') {
        return Status::InvalidArgument("unterminated predicate in '" +
                                       std::string(token) + "'");
      }
      std::string_view index =
          token.substr(bracket + 1, token.size() - bracket - 2);
      if (index.empty()) {
        return Status::InvalidArgument("empty predicate");
      }
      int position = 0;
      for (char c : index) {
        if (!IsAsciiDigit(c)) {
          return Status::InvalidArgument(
              "only positional predicates are supported, got '[" +
              std::string(index) + "]'");
        }
        position = position * 10 + (c - '0');
      }
      if (position < 1) {
        return Status::InvalidArgument("positions are 1-based");
      }
      step.position = position;
      name = token.substr(0, bracket);
    }
    if (name.empty()) {
      return Status::InvalidArgument("missing element name before predicate");
    }
    step.name = std::string(name);
    compiled.steps_.push_back(std::move(step));
  }

  if (compiled.steps_.empty()) {
    return Status::InvalidArgument("XPath selects no elements");
  }
  return compiled;
}

namespace {

void CollectDescendants(const XmlElement* element, std::string_view name,
                        std::vector<const XmlElement*>& out) {
  if (name == "*" || element->LocalName() == name) out.push_back(element);
  for (const XmlElement* child : element->ChildElements()) {
    CollectDescendants(child, name, out);
  }
}

}  // namespace

std::vector<const XmlElement*> XPath::Select(const XmlDocument& doc) const {
  std::vector<const XmlElement*> current;
  if (doc.root() == nullptr) return current;

  // First step matches against the root element itself.
  {
    const Step& first = steps_.front();
    if (first.descendant) {
      CollectDescendants(doc.root(), first.name, current);
    } else if (first.name == "*" || doc.root()->LocalName() == first.name) {
      current.push_back(doc.root());
    }
    if (first.position > 0) {
      if (static_cast<size_t>(first.position) <= current.size()) {
        current = {current[static_cast<size_t>(first.position) - 1]};
      } else {
        current.clear();
      }
    }
  }

  for (size_t s = 1; s < steps_.size() && !current.empty(); ++s) {
    const Step& step = steps_[s];
    std::vector<const XmlElement*> next;
    for (const XmlElement* element : current) {
      if (step.descendant) {
        for (const XmlElement* child : element->ChildElements()) {
          CollectDescendants(child, step.name, next);
        }
        continue;
      }
      // Positional predicates count same-name siblings per parent.
      size_t position = 0;
      for (const XmlElement* child : element->ChildElements()) {
        if (step.name != "*" && child->LocalName() != step.name) continue;
        ++position;
        if (step.position == 0 ||
            position == static_cast<size_t>(step.position)) {
          next.push_back(child);
        }
      }
    }
    current = std::move(next);
  }
  return current;
}

const XmlElement* XPath::SelectFirst(const XmlDocument& doc) const {
  std::vector<const XmlElement*> all = Select(doc);
  return all.empty() ? nullptr : all.front();
}

std::vector<std::string> XPath::SelectValues(const XmlDocument& doc) const {
  std::vector<std::string> out;
  for (const XmlElement* element : Select(doc)) {
    switch (terminal_) {
      case Terminal::kNone:
      case Terminal::kText:
        out.push_back(element->InnerText());
        break;
      case Terminal::kAttribute: {
        if (const std::string* value = element->FindAttribute(attribute_)) {
          out.push_back(*value);
        }
        break;
      }
    }
  }
  return out;
}

Result<std::vector<const XmlElement*>> SelectElements(const XmlDocument& doc,
                                                      std::string_view xpath) {
  QMATCH_ASSIGN_OR_RETURN(XPath compiled, XPath::Compile(xpath));
  return compiled.Select(doc);
}

Result<std::vector<std::string>> SelectValues(const XmlDocument& doc,
                                              std::string_view xpath) {
  QMATCH_ASSIGN_OR_RETURN(XPath compiled, XPath::Compile(xpath));
  return compiled.SelectValues(doc);
}

}  // namespace qmatch::xml
