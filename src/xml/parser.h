#ifndef QMATCH_XML_PARSER_H_
#define QMATCH_XML_PARSER_H_

#include <cstddef>
#include <string_view>

#include "common/memory_budget.h"
#include "common/result.h"
#include "xml/dom.h"

namespace qmatch::xml {

/// Resource limits enforced while parsing. The defaults are generous but
/// finite, so even callers that never think about limits cannot be OOMed
/// by one hostile document; exceeding any cap fails with a typed
/// `kResourceExhausted` Status (malformed input stays `kParseError`).
struct ParserOptions {
  /// Maximum accepted input size; checked before any parsing work.
  size_t max_input_bytes = 64u << 20;  // 64 MiB

  /// Maximum element nesting depth. The parser is recursive-descent, so
  /// this also bounds stack use on hostile inputs.
  size_t max_depth = 512;

  /// Maximum number of element nodes in the document.
  size_t max_nodes = 1u << 20;

  /// Optional accounting arena (borrowed): the parser charges an estimate
  /// of the DOM footprint per element while parsing and releases it when
  /// the parse finishes, bounding in-flight parse memory. Null = no
  /// accounting.
  MemoryBudget* budget = nullptr;
};

/// Parses an XML 1.0 document from `input` into a DOM tree.
///
/// Supported: XML declaration, comments, processing instructions, DOCTYPE
/// (skipped, including an internal subset), elements with attributes,
/// self-closing tags, text content, CDATA sections, the five predefined
/// entities and numeric character references. Well-formedness is enforced:
/// balanced and matching tags, a single root element, no duplicate
/// attributes, and no stray markup. DTD entity definitions are not expanded.
///
/// Errors report the line/column where parsing failed.
Result<XmlDocument> Parse(std::string_view input);

/// As above, with explicit resource limits (see ParserOptions).
Result<XmlDocument> Parse(std::string_view input,
                          const ParserOptions& options);

/// Convenience wrapper: parses and returns only the root element check —
/// fails if the document's root local name is not `expected_root`.
Result<XmlDocument> ParseExpectingRoot(std::string_view input,
                                       std::string_view expected_root);

}  // namespace qmatch::xml

#endif  // QMATCH_XML_PARSER_H_
