#ifndef QMATCH_XML_PARSER_H_
#define QMATCH_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/dom.h"

namespace qmatch::xml {

/// Parses an XML 1.0 document from `input` into a DOM tree.
///
/// Supported: XML declaration, comments, processing instructions, DOCTYPE
/// (skipped, including an internal subset), elements with attributes,
/// self-closing tags, text content, CDATA sections, the five predefined
/// entities and numeric character references. Well-formedness is enforced:
/// balanced and matching tags, a single root element, no duplicate
/// attributes, and no stray markup. DTD entity definitions are not expanded.
///
/// Errors report the line/column where parsing failed.
Result<XmlDocument> Parse(std::string_view input);

/// Convenience wrapper: parses and returns only the root element check —
/// fails if the document's root local name is not `expected_root`.
Result<XmlDocument> ParseExpectingRoot(std::string_view input,
                                       std::string_view expected_root);

}  // namespace qmatch::xml

#endif  // QMATCH_XML_PARSER_H_
