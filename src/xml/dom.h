#ifndef QMATCH_XML_DOM_H_
#define QMATCH_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace qmatch::xml {

/// A single name="value" attribute. Attribute order is preserved.
struct XmlAttribute {
  std::string name;
  std::string value;
};

/// A run of character data (text or CDATA) inside an element.
struct XmlText {
  std::string text;
  bool is_cdata = false;
};

class XmlElement;

/// Ordered element content: child elements interleaved with text runs.
using XmlChild = std::variant<std::unique_ptr<XmlElement>, XmlText>;

/// An XML element node: qualified name, attributes, ordered children.
///
/// Elements own their child elements (tree ownership via unique_ptr); the
/// non-owning `parent()` back-pointer supports upward traversal, e.g. for
/// namespace-prefix resolution.
class XmlElement {
 public:
  explicit XmlElement(std::string name) : name_(std::move(name)) {}

  XmlElement(const XmlElement&) = delete;
  XmlElement& operator=(const XmlElement&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Local part of this element's qualified name ("element" for "xs:element").
  std::string_view LocalName() const { return LocalNameOf(name_); }
  /// Prefix part of this element's qualified name ("" if unprefixed).
  std::string_view Prefix() const { return PrefixOf(name_); }

  static std::string_view LocalNameOf(std::string_view qname);
  static std::string_view PrefixOf(std::string_view qname);

  const XmlElement* parent() const { return parent_; }

  // --- Attributes ------------------------------------------------------

  const std::vector<XmlAttribute>& attributes() const { return attributes_; }

  /// Sets (replacing any existing) attribute `name` to `value`.
  void SetAttribute(std::string_view name, std::string_view value);

  /// Returns the attribute value, or nullptr if absent.
  const std::string* FindAttribute(std::string_view name) const;

  bool HasAttribute(std::string_view name) const {
    return FindAttribute(name) != nullptr;
  }

  /// Returns the attribute value or `fallback` if absent.
  std::string_view AttributeOr(std::string_view name,
                               std::string_view fallback) const;

  /// Removes attribute `name` if present; returns whether it was removed.
  bool RemoveAttribute(std::string_view name);

  // --- Children --------------------------------------------------------

  const std::vector<XmlChild>& children() const { return children_; }

  /// Appends a child element and returns a borrowed pointer to it.
  XmlElement* AddChild(std::unique_ptr<XmlElement> child);

  /// Convenience: creates, appends and returns a new child element.
  XmlElement* AddChildElement(std::string name);

  /// Appends a text (or CDATA) run.
  void AddText(std::string text, bool is_cdata = false);

  /// Borrowed pointers to all direct child elements, in document order.
  std::vector<const XmlElement*> ChildElements() const;
  std::vector<XmlElement*> ChildElements();

  /// Direct child elements whose *local* name equals `local_name`.
  std::vector<const XmlElement*> ChildElementsNamed(
      std::string_view local_name) const;

  /// First direct child element with the given local name, or nullptr.
  const XmlElement* FirstChildElement(std::string_view local_name) const;
  /// First direct child element of any name, or nullptr.
  const XmlElement* FirstChildElement() const;

  /// Concatenation of all *direct* text runs.
  std::string InnerText() const;

  /// Number of element nodes in the subtree rooted here (inclusive).
  size_t CountDescendantElements() const;

  /// Depth of the deepest element below this one (this element = 0).
  size_t MaxDepth() const;

  /// Resolves a namespace prefix ("" for the default namespace) against the
  /// xmlns declarations in scope at this element. Returns nullptr when the
  /// prefix is unbound.
  const std::string* ResolveNamespacePrefix(std::string_view prefix) const;

 private:
  std::string name_;
  std::vector<XmlAttribute> attributes_;
  std::vector<XmlChild> children_;
  const XmlElement* parent_ = nullptr;
};

/// A parsed XML document: the XML declaration plus a single root element.
class XmlDocument {
 public:
  XmlDocument() = default;

  XmlDocument(XmlDocument&&) noexcept = default;
  XmlDocument& operator=(XmlDocument&&) noexcept = default;

  const XmlElement* root() const { return root_.get(); }
  XmlElement* root() { return root_.get(); }
  void set_root(std::unique_ptr<XmlElement> root) { root_ = std::move(root); }

  const std::string& version() const { return version_; }
  const std::string& encoding() const { return encoding_; }
  void set_declaration(std::string version, std::string encoding) {
    version_ = std::move(version);
    encoding_ = std::move(encoding);
  }

 private:
  std::unique_ptr<XmlElement> root_;
  std::string version_ = "1.0";
  std::string encoding_ = "UTF-8";
};

}  // namespace qmatch::xml

#endif  // QMATCH_XML_DOM_H_
