#include "lingua/tokenize.h"

#include "common/string_util.h"

namespace qmatch::lingua {

namespace {

enum class CharClass { kNone, kLower, kUpper, kDigit, kOther };

CharClass ClassOf(char c) {
  if (IsAsciiLower(c)) return CharClass::kLower;
  if (IsAsciiUpper(c)) return CharClass::kUpper;
  if (IsAsciiDigit(c)) return CharClass::kDigit;
  // Non-ASCII bytes (UTF-8 continuation/lead bytes) are treated as
  // lower-case word characters so international labels survive
  // tokenization instead of collapsing to empty tokens.
  if (static_cast<unsigned char>(c) >= 0x80) return CharClass::kLower;
  return CharClass::kOther;
}

}  // namespace

std::vector<std::string> TokenizeLabel(std::string_view label) {
  std::vector<std::string> tokens;
  std::string current;
  CharClass prev = CharClass::kNone;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };

  for (size_t i = 0; i < label.size(); ++i) {
    char c = label[i];
    CharClass cls = ClassOf(c);
    if (cls == CharClass::kOther) {
      // Separators and punctuation end the current token.
      flush();
      prev = CharClass::kNone;
      continue;
    }
    bool boundary = false;
    if (!current.empty()) {
      if (prev != cls) {
        // lower->UPPER and letter<->digit transitions start a new word;
        // UPPER->lower continues a capitalised word ("Code").
        if (prev == CharClass::kLower && cls == CharClass::kUpper) {
          boundary = true;
        } else if (prev == CharClass::kDigit || cls == CharClass::kDigit) {
          boundary = true;
        }
      } else if (cls == CharClass::kUpper) {
        // Inside an upper-case run: if the NEXT char is lower-case, this
        // char begins a new capitalised word ("UOMCode" -> UOM | Code).
        if (i + 1 < label.size() &&
            ClassOf(label[i + 1]) == CharClass::kLower) {
          boundary = true;
        }
      }
    }
    if (boundary) flush();
    current.push_back(AsciiToLower(c));
    prev = cls;
  }
  flush();
  return tokens;
}

std::string NormalizeLabel(std::string_view label) {
  return Join(TokenizeLabel(label), " ");
}

std::string SingularizeToken(std::string_view token) {
  std::string t(token);
  if (t.size() > 4 && EndsWith(t, "ies")) {
    t.resize(t.size() - 3);
    t += 'y';
    return t;
  }
  if (t.size() > 4 && (EndsWith(t, "xes") || EndsWith(t, "ches") ||
                       EndsWith(t, "shes") || EndsWith(t, "sses"))) {
    t.resize(t.size() - 2);
    return t;
  }
  if (t.size() > 3 && EndsWith(t, "s") && !EndsWith(t, "ss") &&
      !EndsWith(t, "us") && !EndsWith(t, "is")) {
    t.resize(t.size() - 1);
    return t;
  }
  return t;
}

std::string CanonicalizeLabel(std::string_view label) {
  std::vector<std::string> tokens = TokenizeLabel(label);
  for (std::string& token : tokens) {
    token = SingularizeToken(token);
  }
  return Join(tokens, " ");
}

}  // namespace qmatch::lingua
