#include "lingua/name_match.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "lingua/string_sim.h"
#include "lingua/tokenize.h"

namespace qmatch::lingua {

std::string_view LabelMatchClassName(LabelMatchClass c) {
  switch (c) {
    case LabelMatchClass::kNone:
      return "none";
    case LabelMatchClass::kRelaxed:
      return "relaxed";
    case LabelMatchClass::kExact:
      return "exact";
  }
  return "?";
}

PreparedLabel NameMatcher::Prepare(std::string_view label) {
  PreparedLabel prepared;
  prepared.tokens = TokenizeLabel(label);
  for (std::string& token : prepared.tokens) {
    token = SingularizeToken(token);
  }
  prepared.canonical = Join(prepared.tokens, " ");
  return prepared;
}

double NameMatcher::TokenSimilarity(const std::string& a, const std::string& b,
                                    bool* exact_kind) const {
  *exact_kind = false;
  if (a == b) {
    *exact_kind = true;
    return 1.0;
  }
  if (thesaurus_ != nullptr) {
    switch (thesaurus_->RelateCanonical(a, b)) {
      case TermRelation::kEqual:
      case TermRelation::kSynonym:
        *exact_kind = true;
        return options_.synonym_score;
      case TermRelation::kHypernym:
      case TermRelation::kHyponym:
        return options_.hypernym_score;
      case TermRelation::kAcronym:
      case TermRelation::kExpansion:
        return options_.acronym_score;
      case TermRelation::kAbbreviation:
        return options_.abbreviation_score;
      case TermRelation::kNone:
        break;
    }
    // Try expanding one side ("addr" -> "address") and re-comparing.
    for (int side = 0; side < 2; ++side) {
      const std::string& short_form = side == 0 ? a : b;
      const std::string& other = side == 0 ? b : a;
      if (auto expansion = thesaurus_->ExpandCanonical(short_form)) {
        if (*expansion == other || thesaurus_->AreSynonymsCanonical(
                                       *expansion, other)) {
          return options_.abbreviation_score;
        }
      }
    }
  }
  double fuzzy = BlendedSimilarity(a, b);
  return fuzzy >= options_.fuzzy_floor ? fuzzy : 0.0;
}

LabelMatch NameMatcher::Match(const PreparedLabel& a,
                              const PreparedLabel& b) const {
  if (a.canonical.empty() || b.canonical.empty()) {
    return {LabelMatchClass::kNone, 0.0};
  }
  if (a.canonical == b.canonical) return {LabelMatchClass::kExact, 1.0};

  // Whole-label thesaurus relation (handles multi-word terms such as
  // "bill to" vs "billing address" and acronyms like "po").
  if (thesaurus_ != nullptr) {
    switch (thesaurus_->RelateCanonical(a.canonical, b.canonical)) {
      case TermRelation::kEqual:
      case TermRelation::kSynonym:
        return {LabelMatchClass::kExact, options_.synonym_score};
      case TermRelation::kHypernym:
      case TermRelation::kHyponym:
        return {LabelMatchClass::kRelaxed, options_.hypernym_score};
      case TermRelation::kAcronym:
      case TermRelation::kExpansion:
        return {LabelMatchClass::kRelaxed, options_.acronym_score};
      case TermRelation::kAbbreviation:
        return {LabelMatchClass::kRelaxed, options_.abbreviation_score};
      case TermRelation::kNone:
        break;
    }
  }

  // Bipartite best-pair token comparison, averaged over both directions
  // (CUPID-style name similarity).
  bool all_exact = true;
  auto directional = [&](const std::vector<std::string>& from,
                         const std::vector<std::string>& to) {
    double sum = 0.0;
    for (const std::string& ft : from) {
      double best = 0.0;
      bool best_exact = false;
      for (const std::string& tt : to) {
        bool exact_kind = false;
        double s = TokenSimilarity(ft, tt, &exact_kind);
        if (s > best) {
          best = s;
          best_exact = exact_kind;
        }
      }
      if (!best_exact || best < 1.0) all_exact = false;
      sum += best;
    }
    return from.empty() ? 0.0 : sum / static_cast<double>(from.size());
  };
  double score = (directional(a.tokens, b.tokens) +
                  directional(b.tokens, a.tokens)) /
                 2.0;

  if (score >= options_.exact_threshold && all_exact) {
    return {LabelMatchClass::kExact, 1.0};
  }
  if (score >= options_.relaxed_threshold) {
    return {LabelMatchClass::kRelaxed, score};
  }
  return {LabelMatchClass::kNone, score};
}

LabelMatch NameMatcher::Match(std::string_view a, std::string_view b) const {
  return Match(Prepare(a), Prepare(b));
}

// ---------------------------------------------------------------------------
// PairwiseLabelScorer
// ---------------------------------------------------------------------------

namespace {

size_t InternToken(const std::string& token, std::vector<std::string>& pool,
                   std::map<std::string, size_t>& index) {
  auto it = index.find(token);
  if (it != index.end()) return it->second;
  size_t id = pool.size();
  pool.push_back(token);
  index.emplace(token, id);
  return id;
}

}  // namespace

PairwiseLabelScorer::PairwiseLabelScorer(
    const NameMatcher& matcher, const std::vector<std::string>& source_labels,
    const std::vector<std::string>& target_labels)
    : matcher_(matcher) {
  std::map<std::string, size_t> source_index;
  std::map<std::string, size_t> target_index;
  // Canonical-form pool shared by both sides: two labels are string-equal
  // iff they intern to the same id, so the hot Match path compares ints.
  std::map<std::string, size_t> canonical_index;
  const Thesaurus* thesaurus = matcher.thesaurus();
  auto intern_label = [&](const std::string& label,
                          std::vector<std::string>& token_pool,
                          std::map<std::string, size_t>& token_index) {
    PreparedLabel prepared = NameMatcher::Prepare(label);
    InternedLabel interned;
    interned.canonical = std::move(prepared.canonical);
    for (const std::string& token : prepared.tokens) {
      interned.token_ids.push_back(InternToken(token, token_pool, token_index));
    }
    interned.canonical_id =
        canonical_index.try_emplace(interned.canonical, canonical_index.size())
            .first->second;
    interned.mentioned =
        thesaurus != nullptr && thesaurus->MentionedCanonical(interned.canonical);
    return interned;
  };
  source_.reserve(source_labels.size());
  for (const std::string& label : source_labels) {
    source_.push_back(intern_label(label, source_tokens_, source_index));
  }
  target_.reserve(target_labels.size());
  for (const std::string& label : target_labels) {
    target_.push_back(intern_label(label, target_tokens_, target_index));
  }
  token_sim_cache_.assign(source_tokens_.size() * target_tokens_.size(), -1.0);
  token_exact_cache_.assign(token_sim_cache_.size(), 0);
}

void PairwiseLabelScorer::Precompute() {
  bool exact = false;
  for (size_t s = 0; s < source_tokens_.size(); ++s) {
    for (size_t t = 0; t < target_tokens_.size(); ++t) {
      CachedTokenSimilarity(s, t, &exact);
    }
  }
}

double PairwiseLabelScorer::CachedTokenSimilarity(size_t source_token,
                                                  size_t target_token,
                                                  bool* exact_kind) const {
  size_t slot = source_token * target_tokens_.size() + target_token;
  if (token_sim_cache_[slot] < 0.0) {
    bool exact = false;
    token_sim_cache_[slot] = matcher_.TokenSimilarity(
        source_tokens_[source_token], target_tokens_[target_token], &exact);
    token_exact_cache_[slot] = exact ? 1 : 0;
  }
  *exact_kind = token_exact_cache_[slot] != 0;
  return token_sim_cache_[slot];
}

LabelMatch PairwiseLabelScorer::Match(size_t i, size_t j) const {
  const InternedLabel& a = source_[i];
  const InternedLabel& b = target_[j];
  const NameMatchOptions& options = matcher_.options();
  if (a.canonical.empty() || b.canonical.empty()) {
    return {LabelMatchClass::kNone, 0.0};
  }
  if (a.canonical_id == b.canonical_id) return {LabelMatchClass::kExact, 1.0};

  // Whole-label thesaurus relation — skipped when neither canonical is
  // mentioned in the thesaurus, where RelateCanonical is kNone by
  // construction (see Thesaurus::MentionedCanonical).
  if (const Thesaurus* thesaurus =
          (a.mentioned || b.mentioned) ? matcher_.thesaurus() : nullptr) {
    switch (thesaurus->RelateCanonical(a.canonical, b.canonical)) {
      case TermRelation::kEqual:
      case TermRelation::kSynonym:
        return {LabelMatchClass::kExact, options.synonym_score};
      case TermRelation::kHypernym:
      case TermRelation::kHyponym:
        return {LabelMatchClass::kRelaxed, options.hypernym_score};
      case TermRelation::kAcronym:
      case TermRelation::kExpansion:
        return {LabelMatchClass::kRelaxed, options.acronym_score};
      case TermRelation::kAbbreviation:
        return {LabelMatchClass::kRelaxed, options.abbreviation_score};
      case TermRelation::kNone:
        break;
    }
  }

  bool all_exact = true;
  auto directional = [&](const std::vector<size_t>& from,
                         const std::vector<size_t>& to, bool forward) {
    double sum = 0.0;
    for (size_t ft : from) {
      double best = 0.0;
      bool best_exact = false;
      for (size_t tt : to) {
        bool exact_kind = false;
        double s = forward ? CachedTokenSimilarity(ft, tt, &exact_kind)
                           : CachedTokenSimilarity(tt, ft, &exact_kind);
        if (s > best) {
          best = s;
          best_exact = exact_kind;
        }
      }
      if (!best_exact || best < 1.0) all_exact = false;
      sum += best;
    }
    return from.empty() ? 0.0 : sum / static_cast<double>(from.size());
  };
  double score = (directional(a.token_ids, b.token_ids, true) +
                  directional(b.token_ids, a.token_ids, false)) /
                 2.0;

  if (score >= options.exact_threshold && all_exact) {
    return {LabelMatchClass::kExact, 1.0};
  }
  if (score >= options.relaxed_threshold) {
    return {LabelMatchClass::kRelaxed, score};
  }
  return {LabelMatchClass::kNone, score};
}

}  // namespace qmatch::lingua
