#ifndef QMATCH_LINGUA_TOKENIZE_H_
#define QMATCH_LINGUA_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace qmatch::lingua {

/// Splits a schema label into lower-case word tokens.
///
/// Handles the identifier conventions found in XML schemas:
///   "UnitOfMeasure"  -> {"unit", "of", "measure"}   (camel/Pascal case)
///   "order_no"       -> {"order", "no"}             (snake case)
///   "bill-to"        -> {"bill", "to"}              (kebab case)
///   "UOMCode"        -> {"uom", "code"}             (acronym runs)
///   "Address2"       -> {"address", "2"}            (digit boundaries)
///   "Item#"          -> {"item"}                    (punctuation dropped)
std::vector<std::string> TokenizeLabel(std::string_view label);

/// Canonical form of a label: tokens joined with single spaces
/// ("UnitOfMeasure" -> "unit of measure").
std::string NormalizeLabel(std::string_view label);

/// Heuristic English singular of a lower-case token: "lines" -> "line",
/// "categories" -> "category", "boxes" -> "box". Tokens that do not look
/// plural (including "address", "status") are returned unchanged.
std::string SingularizeToken(std::string_view token);

/// Fully canonical label: tokenized, each token singularized, joined with
/// spaces. Thesaurus keys and the name matcher use this form so that
/// "Lines" and "Item" match the stored "line"/"item" relation.
std::string CanonicalizeLabel(std::string_view label);

}  // namespace qmatch::lingua

#endif  // QMATCH_LINGUA_TOKENIZE_H_
