#include "lingua/thesaurus_io.h"

#include <vector>

#include "common/string_util.h"

namespace qmatch::lingua {

namespace {

Status MalformedLine(size_t line_number, std::string_view what) {
  return Status::ParseError(
      StrFormat("thesaurus line %zu: %s", line_number, std::string(what).c_str()));
}

}  // namespace

Status MergeThesaurus(std::string_view text, Thesaurus* thesaurus) {
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    // Strip trailing comments, then whitespace.
    std::string_view line = raw_line;
    if (size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) continue;

    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return MalformedLine(line_number, "missing 'kind:' prefix");
    }
    std::string_view kind = Trim(line.substr(0, colon));
    std::string_view body = Trim(line.substr(colon + 1));
    if (body.empty()) return MalformedLine(line_number, "empty body");

    if (kind == "synonym") {
      std::vector<std::string> terms = SplitSkipEmpty(body, ',');
      if (terms.size() < 2) {
        return MalformedLine(line_number, "synonym needs >= 2 terms");
      }
      for (size_t i = 1; i < terms.size(); ++i) {
        thesaurus->AddSynonym(terms[0], terms[i]);
      }
    } else if (kind == "hypernym") {
      size_t gt = body.find('>');
      if (gt == std::string_view::npos) {
        return MalformedLine(line_number, "hypernym needs 'general > specific'");
      }
      std::string_view general = Trim(body.substr(0, gt));
      std::string_view specific = Trim(body.substr(gt + 1));
      if (general.empty() || specific.empty()) {
        return MalformedLine(line_number, "empty hypernym term");
      }
      thesaurus->AddHypernym(general, specific);
    } else if (kind == "acronym" || kind == "abbreviation") {
      size_t eq = body.find('=');
      if (eq == std::string_view::npos) {
        return MalformedLine(line_number,
                             "acronym/abbreviation needs 'short = long'");
      }
      std::string_view short_form = Trim(body.substr(0, eq));
      std::string_view long_form = Trim(body.substr(eq + 1));
      if (short_form.empty() || long_form.empty()) {
        return MalformedLine(line_number, "empty term");
      }
      if (kind == "acronym") {
        thesaurus->AddAcronym(short_form, long_form);
      } else {
        thesaurus->AddAbbreviation(short_form, long_form);
      }
    } else {
      return MalformedLine(line_number,
                           "unknown kind '" + std::string(kind) + "'");
    }
  }
  return Status::OK();
}

Result<Thesaurus> ParseThesaurus(std::string_view text) {
  Thesaurus thesaurus;
  QMATCH_RETURN_IF_ERROR(MergeThesaurus(text, &thesaurus));
  return thesaurus;
}

}  // namespace qmatch::lingua
