#ifndef QMATCH_LINGUA_DEFAULT_THESAURUS_H_
#define QMATCH_LINGUA_DEFAULT_THESAURUS_H_

#include "lingua/thesaurus.h"

namespace qmatch::lingua {

/// The library's built-in linguistic resource: a curated dictionary of
/// synonyms, hypernyms, acronyms and abbreviations covering generic schema
/// vocabulary plus the commerce (purchase-order / XBench), bibliographic
/// (book / article / Dublin Core) and protein (PIR / PDB style) domains the
/// paper evaluates on.
///
/// This substitutes for the WordNet-style resource used by the original
/// CUPID-based matcher (see DESIGN.md §5). The returned reference is to a
/// lazily constructed, immutable singleton and is safe to share.
const Thesaurus& DefaultThesaurus();

/// Builds a fresh copy of the default dictionary (for callers that want to
/// extend it with their own relations).
Thesaurus MakeDefaultThesaurus();

}  // namespace qmatch::lingua

#endif  // QMATCH_LINGUA_DEFAULT_THESAURUS_H_
