#ifndef QMATCH_LINGUA_THESAURUS_IO_H_
#define QMATCH_LINGUA_THESAURUS_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "lingua/thesaurus.h"

namespace qmatch::lingua {

/// Parses the line-oriented thesaurus text format, so deployments can ship
/// their own domain dictionaries without recompiling:
///
/// ```
/// # comments and blank lines are skipped
/// synonym: author, writer, creator       # pairwise synonyms
/// hypernym: publication > book           # general > specific
/// acronym: UOM = unit of measure
/// abbreviation: qty = quantity
/// ```
///
/// Fails with a line-numbered parse error on malformed input.
Result<Thesaurus> ParseThesaurus(std::string_view text);

/// Parses and merges into an existing thesaurus (e.g. the default one).
Status MergeThesaurus(std::string_view text, Thesaurus* thesaurus);

}  // namespace qmatch::lingua

#endif  // QMATCH_LINGUA_THESAURUS_IO_H_
