#ifndef QMATCH_LINGUA_STRING_SIM_H_
#define QMATCH_LINGUA_STRING_SIM_H_

#include <cstddef>
#include <string_view>

namespace qmatch::lingua {

/// Classic Levenshtein edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalised edit similarity: 1 - distance / max(|a|, |b|); 1.0 for two
/// empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity: Jaro boosted by up to 4 chars of common prefix.
/// `prefix_scale` is Winkler's p (default 0.1, capped at 0.25).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

/// Dice coefficient over character bigrams, in [0, 1]. Single-character
/// strings compare by equality.
double DigramSimilarity(std::string_view a, std::string_view b);

/// Length of the longest common substring.
size_t LongestCommonSubstringLength(std::string_view a, std::string_view b);

/// True when `abbrev` could abbreviate `word`: same first letter and every
/// character of `abbrev` appears in `word` in order ("qty" vs "quantity").
bool IsPlausibleAbbreviation(std::string_view abbrev, std::string_view word);

/// The similarity used for out-of-vocabulary token pairs: the maximum of
/// Jaro-Winkler and digram similarity, with an abbreviation bonus.
double BlendedSimilarity(std::string_view a, std::string_view b);

}  // namespace qmatch::lingua

#endif  // QMATCH_LINGUA_STRING_SIM_H_
