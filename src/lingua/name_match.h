#ifndef QMATCH_LINGUA_NAME_MATCH_H_
#define QMATCH_LINGUA_NAME_MATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "lingua/thesaurus.h"

namespace qmatch::lingua {

/// Qualitative classification of a label-axis match (paper Section 2.1):
/// exact = identical string, synonym or ontology hit; relaxed = hypernym,
/// hyponym, acronym or abbreviation (or a strong fuzzy string match).
enum class LabelMatchClass { kNone, kRelaxed, kExact };

std::string_view LabelMatchClassName(LabelMatchClass c);

/// Result of comparing two labels: the class plus the quantitative score in
/// [0, 1] used as QoM_L. An exact match always scores 1.0.
struct LabelMatch {
  LabelMatchClass cls = LabelMatchClass::kNone;
  double score = 0.0;
};

/// A label pre-processed for repeated comparison: canonical form plus the
/// singularized token list. Matchers prepare each node's label once and
/// compare prepared labels in the O(n·m) pair loop.
struct PreparedLabel {
  std::string canonical;
  std::vector<std::string> tokens;
};

/// Tunable scores for the relation kinds and the classification cut-offs.
struct NameMatchOptions {
  /// Synonyms classify as *exact* per the paper, but score slightly below
  /// identical strings so that an identical-label target outranks a
  /// synonym target instead of tying into ambiguity suppression.
  double synonym_score = 0.97;
  double hypernym_score = 0.80;
  double acronym_score = 0.90;
  double abbreviation_score = 0.90;
  /// Fuzzy token similarity below this floor contributes nothing. Kept
  /// high: string similarity scores well above 0.5 for entirely unrelated
  /// short words, which must not register as label evidence.
  double fuzzy_floor = 0.72;
  /// Token-set score at or above which a match classifies exact (when every
  /// contributing token pair is itself exact-kind).
  double exact_threshold = 0.99;
  /// Token-set score at or above which a match classifies relaxed.
  double relaxed_threshold = 0.45;
};

/// CUPID-style linguistic label matcher.
///
/// Labels are canonicalised (tokenised, singularised), then compared first
/// as whole terms against the thesaurus and second by a bipartite
/// best-token-pair assignment where each token pair scores by thesaurus
/// relation or, for out-of-vocabulary pairs, blended string similarity.
class NameMatcher {
 public:
  /// `thesaurus` may be null (pure string matching); it is borrowed and must
  /// outlive the matcher.
  explicit NameMatcher(const Thesaurus* thesaurus = nullptr,
                       NameMatchOptions options = {})
      : thesaurus_(thesaurus), options_(options) {}

  /// Pre-processes a raw schema label for repeated matching.
  static PreparedLabel Prepare(std::string_view label);

  /// Compares two raw schema labels (prepares both internally).
  LabelMatch Match(std::string_view a, std::string_view b) const;

  /// Hot path: compares two prepared labels.
  LabelMatch Match(const PreparedLabel& a, const PreparedLabel& b) const;

  /// Similarity of two canonical (already singularized) tokens in [0,1].
  /// `exact_kind` is set when the relation is equality or synonymy.
  double TokenSimilarity(const std::string& a, const std::string& b,
                         bool* exact_kind) const;

  const NameMatchOptions& options() const { return options_; }
  const Thesaurus* thesaurus() const { return thesaurus_; }

 private:
  const Thesaurus* thesaurus_;
  NameMatchOptions options_;
};

/// Memoising façade for all-pairs label matching between two node lists.
///
/// Schemas repeat a small token vocabulary across many labels, so the
/// scorer interns every distinct token on each side and caches
/// `TokenSimilarity` per (source token, target token) — turning the
/// O(n·m) label loop's inner work into array lookups.
class PairwiseLabelScorer {
 public:
  /// `matcher` is borrowed and must outlive the scorer.
  PairwiseLabelScorer(const NameMatcher& matcher,
                      const std::vector<std::string>& source_labels,
                      const std::vector<std::string>& target_labels);

  /// Label match of source label #i vs target label #j.
  LabelMatch Match(size_t i, size_t j) const;

  /// Eagerly fills the whole token-similarity cache. After this call
  /// `Match` performs no writes, so concurrent calls from many threads are
  /// safe (the parallel table fill calls this once before fanning out).
  void Precompute();

 private:
  struct InternedLabel {
    std::string canonical;
    std::vector<size_t> token_ids;
    /// Id of `canonical` in a pool shared by both sides, so label equality
    /// is one integer compare in the pair loop.
    size_t canonical_id = 0;
    /// Pre-resolved Thesaurus::MentionedCanonical(canonical): when neither
    /// side of a pair is mentioned, the whole-label thesaurus relation is
    /// provably kNone and Match skips the lookup entirely.
    bool mentioned = false;
  };

  double CachedTokenSimilarity(size_t source_token, size_t target_token,
                               bool* exact_kind) const;

  const NameMatcher& matcher_;
  std::vector<InternedLabel> source_;
  std::vector<InternedLabel> target_;
  std::vector<std::string> source_tokens_;
  std::vector<std::string> target_tokens_;
  // (source token id * |target tokens| + target token id) -> score; < 0
  // means "not yet computed". Sign bit of the companion byte is exactness.
  mutable std::vector<double> token_sim_cache_;
  mutable std::vector<signed char> token_exact_cache_;
};

}  // namespace qmatch::lingua

#endif  // QMATCH_LINGUA_NAME_MATCH_H_
