#include "lingua/string_sim.h"

#include <algorithm>
#include <vector>

namespace qmatch::lingua {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Single-row dynamic program.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];
      size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, above + 1, substitute});
      diagonal = above;
    }
  }
  return row[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t window =
      std::max(a.size(), b.size()) / 2 == 0
          ? 0
          : std::max(a.size(), b.size()) / 2 - 1;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions between the matched sequences.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  double jaro = JaroSimilarity(a, b);
  if (prefix_scale > 0.25) prefix_scale = 0.25;
  if (prefix_scale < 0.0) prefix_scale = 0.0;
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

double DigramSimilarity(std::string_view a, std::string_view b) {
  if (a == b) return 1.0;
  if (a.size() < 2 || b.size() < 2) return 0.0;
  // Dice over multisets of bigrams, computed with a sorted vector.
  auto bigrams = [](std::string_view s) {
    std::vector<std::pair<char, char>> out;
    out.reserve(s.size() - 1);
    for (size_t i = 0; i + 1 < s.size(); ++i) out.push_back({s[i], s[i + 1]});
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<std::pair<char, char>> ba = bigrams(a);
  std::vector<std::pair<char, char>> bb = bigrams(b);
  size_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < ba.size() && j < bb.size()) {
    if (ba[i] == bb[j]) {
      ++common;
      ++i;
      ++j;
    } else if (ba[i] < bb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return 2.0 * static_cast<double>(common) /
         static_cast<double>(ba.size() + bb.size());
}

size_t LongestCommonSubstringLength(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<size_t> row(b.size() + 1, 0);
  size_t best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = 0;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];
      row[j] = (a[i - 1] == b[j - 1]) ? diagonal + 1 : 0;
      best = std::max(best, row[j]);
      diagonal = above;
    }
  }
  return best;
}

bool IsPlausibleAbbreviation(std::string_view abbrev, std::string_view word) {
  if (abbrev.empty() || word.empty()) return false;
  if (abbrev.size() >= word.size()) return false;
  if (abbrev[0] != word[0]) return false;
  size_t w = 0;
  for (char c : abbrev) {
    while (w < word.size() && word[w] != c) ++w;
    if (w == word.size()) return false;
    ++w;
  }
  return true;
}

double BlendedSimilarity(std::string_view a, std::string_view b) {
  if (a == b) return 1.0;
  // Digram Dice is the base: strict on unrelated words (Jaro-Winkler, by
  // contrast, scores ~0.75 for pairs like "material"/"email" and would
  // flood matchers with false label evidence).
  double best = DigramSimilarity(a, b);
  // Morphological variants: one word is a full prefix of the other
  // ("ship"/"shipping", "bill"/"billing").
  std::string_view shorter = a.size() <= b.size() ? a : b;
  std::string_view longer = a.size() <= b.size() ? b : a;
  if (shorter.size() >= 3 && shorter.size() < longer.size() &&
      longer.substr(0, shorter.size()) == shorter) {
    double ratio = static_cast<double>(shorter.size()) /
                   static_cast<double>(longer.size());
    best = std::max(best, 0.72 + 0.2 * ratio);
  }
  // Unregistered abbreviations ("qnty"/"quantity"); require >= 3 chars so
  // incidental subsequences of tiny tokens don't trigger.
  if ((shorter.size() >= 3) && (IsPlausibleAbbreviation(a, b) ||
                                IsPlausibleAbbreviation(b, a))) {
    best = std::max(best, 0.80);
  }
  return best;
}

}  // namespace qmatch::lingua
