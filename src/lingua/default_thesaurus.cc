#include "lingua/default_thesaurus.h"

namespace qmatch::lingua {

namespace {

void AddGenericSchemaVocabulary(Thesaurus& t) {
  // --- Abbreviations ubiquitous in schema labels -----------------------
  t.AddAbbreviation("no", "number");
  t.AddAbbreviation("num", "number");
  t.AddAbbreviation("nbr", "number");
  t.AddAbbreviation("nr", "number");
  t.AddAbbreviation("qty", "quantity");
  t.AddAbbreviation("amt", "amount");
  t.AddAbbreviation("desc", "description");
  t.AddAbbreviation("descr", "description");
  t.AddAbbreviation("addr", "address");
  t.AddAbbreviation("info", "information");
  t.AddAbbreviation("tel", "telephone");
  t.AddAbbreviation("cust", "customer");
  t.AddAbbreviation("acct", "account");
  t.AddAbbreviation("ref", "reference");
  t.AddAbbreviation("seq", "sequence");
  t.AddAbbreviation("org", "organization");
  t.AddAbbreviation("dept", "department");
  t.AddAbbreviation("mgr", "manager");
  t.AddAbbreviation("emp", "employee");
  t.AddAbbreviation("std", "standard");
  t.AddAbbreviation("max", "maximum");
  t.AddAbbreviation("min", "minimum");
  t.AddAbbreviation("avg", "average");
  t.AddAbbreviation("id", "identifier");
  t.AddAbbreviation("pct", "percent");
  t.AddAbbreviation("msg", "message");
  t.AddAbbreviation("lang", "language");
  t.AddAbbreviation("cat", "category");
  t.AddAbbreviation("loc", "location");
  t.AddAbbreviation("fn", "first name");
  t.AddAbbreviation("ln", "last name");
  t.AddAbbreviation("dob", "date of birth");

  // --- Generic synonyms -------------------------------------------------
  t.AddSynonym("phone", "telephone");
  t.AddSynonym("zip", "postal code");
  t.AddSynonym("zip code", "postal code");
  t.AddSynonym("key", "identifier");
  t.AddSynonym("code", "identifier");
  t.AddSynonym("type", "kind");
  t.AddSynonym("comment", "remark");
  t.AddSynonym("comment", "note");
  t.AddSynonym("begin", "start");
  t.AddSynonym("end", "finish");
  t.AddSynonym("cost", "price");
  t.AddSynonym("firm", "company");
  t.AddSynonym("company", "organization");
  t.AddSynonym("state", "province");
  t.AddSynonym("country", "nation");
  t.AddSynonym("mail", "email");
  t.AddSynonym("surname", "last name");
  t.AddSynonym("given name", "first name");

  // --- Generic hypernyms ------------------------------------------------
  t.AddHypernym("identifier", "number");
  t.AddHypernym("identifier", "serial number");
  t.AddHypernym("name", "first name");
  t.AddHypernym("name", "last name");
  t.AddHypernym("name", "title");
  t.AddHypernym("date", "start date");
  t.AddHypernym("date", "end date");
  t.AddHypernym("date", "birth date");
  t.AddHypernym("date", "date of birth");
  t.AddHypernym("location", "address");
  t.AddHypernym("location", "city");
  t.AddHypernym("location", "country");
  t.AddHypernym("person", "customer");
  t.AddHypernym("person", "employee");
  t.AddHypernym("person", "contact");
  t.AddHypernym("person", "author");
  t.AddHypernym("amount", "total");
  t.AddHypernym("amount", "subtotal");
  t.AddHypernym("amount", "price");
  t.AddHypernym("amount", "tax");
  t.AddHypernym("amount", "discount");
}

void AddCommerceVocabulary(Thesaurus& t) {
  // Purchase-order domain (the paper's PO / PurchaseOrder schemas).
  t.AddAcronym("po", "purchase order");
  t.AddAcronym("uom", "unit of measure");
  t.AddAcronym("sku", "stock keeping unit");
  t.AddAcronym("vat", "value added tax");
  t.AddSynonym("line", "item");
  t.AddSynonym("line item", "item");
  t.AddSynonym("item", "product");
  t.AddSynonym("item", "article");
  t.AddSynonym("goods", "product");
  t.AddSynonym("bill to", "billing address");
  t.AddSynonym("ship to", "shipping address");
  t.AddSynonym("bill", "billing");
  t.AddSynonym("ship", "shipping");
  t.AddSynonym("order number", "order identifier");
  t.AddSynonym("purchase", "order");
  t.AddSynonym("vendor", "supplier");
  t.AddSynonym("vendor", "seller");
  t.AddSynonym("buyer", "customer");
  t.AddSynonym("client", "customer");
  t.AddSynonym("freight", "shipping cost");
  t.AddSynonym("invoice", "bill");
  t.AddSynonym("payment", "remittance");
  t.AddSynonym("delivery", "shipment");
  t.AddSynonym("catalog", "catalogue");
  t.AddSynonym("cart", "basket");
  t.AddSynonym("unit price", "price per unit");
  t.AddHypernym("order", "purchase order");
  t.AddHypernym("order", "sales order");
  t.AddHypernym("date", "purchase date");
  t.AddHypernym("date", "order date");
  t.AddHypernym("date", "ship date");
  t.AddHypernym("date", "delivery date");
  t.AddHypernym("address", "billing address");
  t.AddHypernym("address", "shipping address");
  t.AddHypernym("party", "vendor");
  t.AddHypernym("party", "customer");
}

void AddBibliographicVocabulary(Thesaurus& t) {
  // Book / Article / Dublin Core domain.
  t.AddAcronym("isbn", "international standard book number");
  t.AddAcronym("issn", "international standard serial number");
  t.AddAcronym("dc", "dublin core");
  t.AddAcronym("dcmd", "dublin core metadata");
  t.AddSynonym("author", "writer");
  t.AddSynonym("author", "creator");
  t.AddSynonym("book", "volume");
  t.AddSynonym("article", "paper");
  t.AddSynonym("journal", "periodical");
  t.AddSynonym("magazine", "periodical");
  t.AddSynonym("subject", "topic");
  t.AddSynonym("keyword", "term");
  t.AddSynonym("abstract", "summary");
  t.AddSynonym("chapter", "section");
  t.AddSynonym("page", "leaf");
  t.AddSynonym("publisher", "press");
  t.AddSynonym("edition", "version");
  t.AddSynonym("rights", "license");
  t.AddSynonym("contributor", "collaborator");
  t.AddSynonym("coverage", "scope");
  t.AddSynonym("relation", "relationship");
  t.AddSynonym("format", "layout");
  t.AddSynonym("source", "origin");
  t.AddHypernym("publication", "book");
  t.AddHypernym("publication", "article");
  t.AddHypernym("publication", "journal");
  t.AddHypernym("publication", "magazine");
  t.AddHypernym("publication", "proceedings");
  t.AddHypernym("person", "editor");
  t.AddHypernym("person", "contributor");
  t.AddHypernym("date", "publication date");
  t.AddHypernym("date", "release date");
  t.AddHypernym("identifier", "isbn");
  t.AddHypernym("identifier", "issn");
  t.AddHypernym("identifier", "doi");
}

void AddProteinVocabulary(Thesaurus& t) {
  // Protein domain (PIR / PDB style schemas).
  t.AddAcronym("pir", "protein information resource");
  t.AddAcronym("pdb", "protein data bank");
  t.AddAcronym("dna", "deoxyribonucleic acid");
  t.AddAcronym("rna", "ribonucleic acid");
  t.AddAcronym("ec", "enzyme commission");
  t.AddAcronym("mw", "molecular weight");
  t.AddSynonym("protein", "polypeptide");
  t.AddSynonym("sequence", "chain");
  t.AddSynonym("residue", "amino acid");
  t.AddSynonym("organism", "species");
  t.AddSynonym("taxonomy", "classification");
  t.AddSynonym("accession", "accession number");
  t.AddSynonym("entry", "record");
  t.AddSynonym("citation", "reference");
  t.AddSynonym("function", "activity");
  t.AddSynonym("structure", "conformation");
  t.AddSynonym("mutation", "variant");
  t.AddSynonym("gene", "locus")
      ;
  t.AddSynonym("annotation", "note");
  t.AddSynonym("motif", "pattern");
  t.AddSynonym("site", "position");
  t.AddSynonym("length", "size");
  t.AddSynonym("weight", "mass");
  t.AddHypernym("molecule", "protein");
  t.AddHypernym("molecule", "enzyme");
  t.AddHypernym("molecule", "ligand");
  t.AddHypernym("feature", "domain");
  t.AddHypernym("feature", "motif");
  t.AddHypernym("feature", "site");
  t.AddHypernym("identifier", "accession");
  t.AddHypernym("method", "x ray diffraction");
  t.AddHypernym("method", "nmr spectroscopy");
}

}  // namespace

Thesaurus MakeDefaultThesaurus() {
  Thesaurus t;
  AddGenericSchemaVocabulary(t);
  AddCommerceVocabulary(t);
  AddBibliographicVocabulary(t);
  AddProteinVocabulary(t);
  return t;
}

const Thesaurus& DefaultThesaurus() {
  // Function-local static reference: constructed once, never destroyed
  // (avoids static-destruction ordering issues per the style guide).
  static const Thesaurus& instance = *new Thesaurus(MakeDefaultThesaurus());
  return instance;
}

}  // namespace qmatch::lingua
