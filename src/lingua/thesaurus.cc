#include "lingua/thesaurus.h"

#include <deque>

#include "lingua/tokenize.h"

namespace qmatch::lingua {

std::string_view TermRelationName(TermRelation r) {
  switch (r) {
    case TermRelation::kNone:
      return "none";
    case TermRelation::kEqual:
      return "equal";
    case TermRelation::kSynonym:
      return "synonym";
    case TermRelation::kHypernym:
      return "hypernym";
    case TermRelation::kHyponym:
      return "hyponym";
    case TermRelation::kAcronym:
      return "acronym";
    case TermRelation::kAbbreviation:
      return "abbreviation";
    case TermRelation::kExpansion:
      return "expansion";
  }
  return "?";
}

std::string Thesaurus::Canonical(std::string_view term) const {
  return CanonicalizeLabel(term);
}

void Thesaurus::AddSynonym(std::string_view a, std::string_view b) {
  std::string ca = Canonical(a);
  std::string cb = Canonical(b);
  if (ca.empty() || cb.empty() || ca == cb) return;
  ++relation_count_;
  key_terms_.insert(ca);
  key_terms_.insert(cb);
  auto ia = synonym_group_of_.find(ca);
  auto ib = synonym_group_of_.find(cb);
  if (ia == synonym_group_of_.end() && ib == synonym_group_of_.end()) {
    size_t id = synonym_groups_.size();
    synonym_groups_.push_back({ca, cb});
    synonym_group_of_[ca] = id;
    synonym_group_of_[cb] = id;
  } else if (ia != synonym_group_of_.end() && ib == synonym_group_of_.end()) {
    synonym_groups_[ia->second].insert(cb);
    synonym_group_of_[cb] = ia->second;
  } else if (ia == synonym_group_of_.end() && ib != synonym_group_of_.end()) {
    synonym_groups_[ib->second].insert(ca);
    synonym_group_of_[ca] = ib->second;
  } else if (ia->second != ib->second) {
    // Merge the smaller group into the larger.
    size_t keep = ia->second;
    size_t drop = ib->second;
    if (synonym_groups_[keep].size() < synonym_groups_[drop].size()) {
      std::swap(keep, drop);
    }
    for (const std::string& term : synonym_groups_[drop]) {
      synonym_groups_[keep].insert(term);
      synonym_group_of_[term] = keep;
    }
    synonym_groups_[drop].clear();
  }
}

void Thesaurus::AddHypernym(std::string_view general,
                            std::string_view specific) {
  std::string g = Canonical(general);
  std::string s = Canonical(specific);
  if (g.empty() || s.empty() || g == s) return;
  ++relation_count_;
  key_terms_.insert(g);
  hyponyms_[g].insert(s);
}

void Thesaurus::AddAcronym(std::string_view acronym,
                           std::string_view expansion) {
  std::string a = Canonical(acronym);
  std::string e = Canonical(expansion);
  if (a.empty() || e.empty() || a == e) return;
  ++relation_count_;
  key_terms_.insert(a);
  acronyms_[a].insert(e);
}

void Thesaurus::AddAbbreviation(std::string_view abbrev,
                                std::string_view full) {
  std::string a = Canonical(abbrev);
  std::string f = Canonical(full);
  if (a.empty() || f.empty() || a == f) return;
  ++relation_count_;
  key_terms_.insert(a);
  abbreviations_[a].insert(f);
}

const std::set<std::string>* Thesaurus::SynonymSet(
    const std::string& term) const {
  auto it = synonym_group_of_.find(term);
  if (it == synonym_group_of_.end()) return nullptr;
  return &synonym_groups_[it->second];
}

bool Thesaurus::AreSynonyms(std::string_view a, std::string_view b) const {
  return AreSynonymsCanonical(Canonical(a), Canonical(b));
}

bool Thesaurus::AreSynonymsCanonical(const std::string& ca,
                                     const std::string& cb) const {
  if (ca == cb) return false;
  const std::set<std::string>* group = SynonymSet(ca);
  return group != nullptr && group->count(cb) > 0;
}

bool Thesaurus::IsHypernymOf(std::string_view general,
                             std::string_view specific) const {
  return IsHypernymOfCanonical(Canonical(general), Canonical(specific));
}

bool Thesaurus::IsHypernymOfCanonical(const std::string& g,
                                      const std::string& s) const {
  if (g.empty() || s.empty() || g == s) return false;
  // Bounded BFS down the hyponym links; synonyms of visited nodes are
  // considered equivalent.
  constexpr size_t kMaxDepth = 4;
  std::set<std::string> frontier = {g};
  if (const std::set<std::string>* group = SynonymSet(g)) {
    frontier.insert(group->begin(), group->end());
  }
  for (size_t depth = 0; depth < kMaxDepth; ++depth) {
    std::set<std::string> next;
    for (const std::string& term : frontier) {
      auto it = hyponyms_.find(term);
      if (it == hyponyms_.end()) continue;
      for (const std::string& hypo : it->second) {
        if (hypo == s) return true;
        if (const std::set<std::string>* group = SynonymSet(hypo)) {
          if (group->count(s) > 0) return true;
          next.insert(group->begin(), group->end());
        }
        next.insert(hypo);
      }
    }
    if (next.empty()) return false;
    frontier = std::move(next);
  }
  return false;
}

std::optional<std::string> Thesaurus::Expand(std::string_view term) const {
  std::string t = Canonical(term);
  if (auto it = acronyms_.find(t); it != acronyms_.end() && !it->second.empty()) {
    return *it->second.begin();
  }
  if (auto it = abbreviations_.find(t);
      it != abbreviations_.end() && !it->second.empty()) {
    return *it->second.begin();
  }
  return std::nullopt;
}

TermRelation Thesaurus::Relate(std::string_view a, std::string_view b) const {
  return RelateCanonical(Canonical(a), Canonical(b));
}

std::optional<std::string> Thesaurus::ExpandCanonical(
    const std::string& term) const {
  if (!MentionedCanonical(term)) return std::nullopt;
  if (auto it = acronyms_.find(term);
      it != acronyms_.end() && !it->second.empty()) {
    return *it->second.begin();
  }
  if (auto it = abbreviations_.find(term);
      it != abbreviations_.end() && !it->second.empty()) {
    return *it->second.begin();
  }
  return std::nullopt;
}

TermRelation Thesaurus::RelateCanonical(const std::string& ca,
                                        const std::string& cb) const {
  if (ca.empty() || cb.empty()) return TermRelation::kNone;
  if (ca == cb) return TermRelation::kEqual;

  // Two out-of-vocabulary terms cannot relate (see MentionedCanonical):
  // skip the table walks and the hypernym BFS entirely. This is the hot
  // case for domain schemas, whose labels rarely appear in the thesaurus.
  if (!MentionedCanonical(ca) && !MentionedCanonical(cb)) {
    return TermRelation::kNone;
  }

  if (AreSynonymsCanonical(ca, cb)) return TermRelation::kSynonym;

  // Acronyms: direct, or the expansion is a synonym of the other side.
  auto expands_to = [this](const std::map<std::string, std::set<std::string>>&
                               table,
                           const std::string& short_form,
                           const std::string& long_form) {
    auto it = table.find(short_form);
    if (it == table.end()) return false;
    if (it->second.count(long_form) > 0) return true;
    for (const std::string& expansion : it->second) {
      if (AreSynonymsCanonical(expansion, long_form)) return true;
    }
    return false;
  };
  if (expands_to(acronyms_, ca, cb)) return TermRelation::kAcronym;
  if (expands_to(acronyms_, cb, ca)) return TermRelation::kExpansion;
  if (expands_to(abbreviations_, ca, cb)) return TermRelation::kAbbreviation;
  if (expands_to(abbreviations_, cb, ca)) return TermRelation::kExpansion;

  if (IsHypernymOfCanonical(ca, cb)) return TermRelation::kHypernym;
  if (IsHypernymOfCanonical(cb, ca)) return TermRelation::kHyponym;

  return TermRelation::kNone;
}

}  // namespace qmatch::lingua
