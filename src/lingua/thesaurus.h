#ifndef QMATCH_LINGUA_THESAURUS_H_
#define QMATCH_LINGUA_THESAURUS_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace qmatch::lingua {

/// Relation between two terms, as used by the QoM label axis:
/// equal / synonym -> *exact* label match; hypernym / hyponym / acronym /
/// abbreviation -> *relaxed* label match (paper Section 2.1).
enum class TermRelation {
  kNone,
  kEqual,
  kSynonym,
  kHypernym,      // lhs is a broader term for rhs
  kHyponym,       // lhs is a narrower term for rhs
  kAcronym,       // lhs is an acronym of rhs ("uom" / "unit of measure")
  kAbbreviation,  // lhs abbreviates rhs ("qty" / "quantity")
  kExpansion,     // lhs is the expansion of acronym/abbreviation rhs
};

std::string_view TermRelationName(TermRelation r);

/// An in-memory linguistic resource: synonym sets, a hypernym hierarchy,
/// and acronym/abbreviation expansions.
///
/// This stands in for the WordNet-style resource the paper's CUPID-based
/// linguistic matcher consumed (see DESIGN.md §5). Terms are stored in the
/// normalised form produced by `NormalizeLabel` (lower-case, space
/// separated); all lookups normalise their inputs first.
class Thesaurus {
 public:
  Thesaurus() = default;

  /// Declares `a` and `b` synonyms (symmetric, transitive via union-find
  /// style merged sets).
  void AddSynonym(std::string_view a, std::string_view b);

  /// Declares `general` a hypernym (broader term) of `specific`.
  void AddHypernym(std::string_view general, std::string_view specific);

  /// Declares `acronym` to expand to `expansion` ("UOM" -> "unit of measure").
  void AddAcronym(std::string_view acronym, std::string_view expansion);

  /// Declares `abbrev` a short form of `full` ("qty" -> "quantity").
  void AddAbbreviation(std::string_view abbrev, std::string_view full);

  /// Classifies the relation of `a` to `b`. Checks, in order: equality,
  /// synonymy (including via expansions), hypernym/hyponym (transitive,
  /// bounded depth), acronym, abbreviation.
  TermRelation Relate(std::string_view a, std::string_view b) const;

  /// Same as Relate but requires both inputs to already be in canonical
  /// form (lower-case, singularized, space-separated — the output of
  /// `CanonicalizeLabel`). Skips re-canonicalization; the hot path for
  /// matchers that prepare labels once per node.
  TermRelation RelateCanonical(const std::string& a, const std::string& b) const;

  /// Expansion lookup for an already canonical term (see Expand).
  std::optional<std::string> ExpandCanonical(const std::string& term) const;

  bool AreSynonyms(std::string_view a, std::string_view b) const;
  bool AreSynonymsCanonical(const std::string& a, const std::string& b) const;

  /// True if `general` is a (transitive) hypernym of `specific`.
  bool IsHypernymOf(std::string_view general, std::string_view specific) const;
  bool IsHypernymOfCanonical(const std::string& general,
                             const std::string& specific) const;

  /// The stored expansion of `term` when it is a known acronym or
  /// abbreviation, else nullopt.
  std::optional<std::string> Expand(std::string_view term) const;

  /// Number of stored relations (for tests and diagnostics).
  size_t RelationCount() const { return relation_count_; }

  /// True when `term` (already canonical) appears as a lookup key in any
  /// relation table. Every non-equal RelateCanonical outcome requires at
  /// least one side to be such a key (synonymy keys both sides; acronym /
  /// abbreviation / expansion key the short form; the hypernym BFS starts
  /// from the general term's key) — so two unmentioned terms relate kNone
  /// without walking any table. One hash probe; the batch matchers call it
  /// once per distinct term to pre-resolve out-of-vocabulary pairs.
  bool MentionedCanonical(const std::string& term) const {
    return key_terms_.count(term) > 0;
  }

 private:
  std::string Canonical(std::string_view term) const;
  const std::set<std::string>* SynonymSet(const std::string& term) const;

  // term -> id of its synonym group; groups hold normalised terms.
  std::map<std::string, size_t> synonym_group_of_;
  std::vector<std::set<std::string>> synonym_groups_;
  // general -> set of direct specifics.
  std::map<std::string, std::set<std::string>> hyponyms_;
  // short form -> expansions.
  std::map<std::string, std::set<std::string>> acronyms_;
  std::map<std::string, std::set<std::string>> abbreviations_;
  // Union of all table keys, maintained by the Add* methods (synonym-group
  // merges only ever add keys, so no removal is needed).
  std::unordered_set<std::string> key_terms_;
  size_t relation_count_ = 0;
};

}  // namespace qmatch::lingua

#endif  // QMATCH_LINGUA_THESAURUS_H_
