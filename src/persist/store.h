#ifndef QMATCH_PERSIST_STORE_H_
#define QMATCH_PERSIST_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "persist/snapshot.h"

namespace qmatch::persist {

/// PersistentStore — the crash-safe on-disk state layer under MatchEngine
/// (DESIGN.md §12). One directory holds two files:
///
///   <dir>/snapshot.qms   full state, rewritten atomically by Compact()
///   <dir>/journal.qmj    header + appended incremental updates
///
/// Durable state at any instant = snapshot + journal replayed over it.
/// Both record kinds are idempotent upserts, so every crash point in the
/// save/compact sequence lands on a consistent state:
///
///   crash during snapshot temp write  -> old snapshot + old journal (old)
///   crash after snapshot rename,
///         before journal reset        -> new snapshot + old journal
///                                        (replay is idempotent: new)
///   crash during journal append       -> torn tail truncated on load
///                                        (the in-flight update never
///                                        committed: previous state)
///
/// The store never yields kDataLoss from a crash — only from genuine
/// corruption (checksum/framing violations on committed bytes). Open()
/// quarantines corrupt files aside as *.corrupt and starts cold rather
/// than failing the engine.
///
/// Thread-safe; all methods serialize on one internal mutex.
class PersistentStore {
 public:
  /// Opens (creating `dir` if needed) and loads the durable state into
  /// `*state` with accounting in `*stats` (both required). Corrupt files
  /// are moved aside and the store starts cold (stats->started_cold).
  static Result<std::unique_ptr<PersistentStore>> Open(
      const std::string& dir, uint64_t config_fingerprint, StoreState* state,
      LoadStats* stats);

  /// Read-only load of a store directory, without opening it for writing —
  /// what a warm-starting engine (or the recovery harness) sees. The
  /// `persist.load` failpoint injects a short read of each file here.
  static Status LoadState(const std::string& dir, uint64_t config_fingerprint,
                          StoreState* state, LoadStats* stats);

  ~PersistentStore();

  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  /// Appends one incremental update to the journal (fsynced before
  /// returning). A graceful failure truncates the partial bytes back off
  /// the journal — a failed append leaves no trace; only a crash can leave
  /// a torn tail, and the loader drops it.
  Status AppendCache(const CacheEntryRec& entry);
  Status AppendCorpus(const CorpusEntryRec& entry);

  /// Rewrites the snapshot to `full_state` (atomically) and resets the
  /// journal. On failure the previous durable state remains loadable.
  Status Compact(const StoreState& full_state);

  /// Journal appends since the last successful Compact (drives the
  /// engine's periodic-compaction cadence).
  size_t appends_since_compact() const;

  const std::string& dir() const { return dir_; }
  std::string snapshot_path() const;
  std::string journal_path() const;

 private:
  PersistentStore(std::string dir, uint64_t config_fingerprint)
      : dir_(std::move(dir)), config_fingerprint_(config_fingerprint) {}

  /// Opens the journal fd for appending, writing a fresh header first when
  /// the file is missing. Caller holds mutex_.
  Status EnsureJournalLocked();
  Status AppendRecordLocked(const std::string& record);
  void CloseJournalLocked();

  const std::string dir_;
  const uint64_t config_fingerprint_;

  mutable std::mutex mutex_;
  int journal_fd_ = -1;       // guarded by mutex_
  size_t appends_ = 0;        // guarded by mutex_
};

}  // namespace qmatch::persist

#endif  // QMATCH_PERSIST_STORE_H_
