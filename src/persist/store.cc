#include "persist/store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/file_util.h"
#include "fault/failpoint.h"
#include "obs/obs.h"

namespace qmatch::persist {

namespace {

constexpr std::string_view kSnapshotFile = "snapshot.qms";
constexpr std::string_view kJournalFile = "journal.qmj";

std::string JoinPath(const std::string& dir, std::string_view file) {
  std::string out = dir;
  if (!out.empty() && out.back() != '/') out += '/';
  out += file;
  return out;
}

/// Reads one store file, honouring the `persist.load` short-read
/// failpoint: a fired kError keeps only the first half of the bytes —
/// exactly what an interrupted read (or a concurrently-truncated file)
/// hands the loader.
Result<std::string> ReadStoreFile(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (text.ok() && QMATCH_FAILPOINT_FIRED("persist.load")) {
    return text.value().substr(0, text.value().size() / 2);
  }
  return text;
}

/// Quarantines a corrupt file as <path>.corrupt (best effort, one
/// generation kept for forensics) so the store can start cold without
/// tripping over the same bytes forever.
void QuarantineFile(const std::string& path) {
  if (!FileExists(path)) return;
  const std::string corrupt = path + ".corrupt";
  std::remove(corrupt.c_str());
  if (std::rename(path.c_str(), corrupt.c_str()) != 0) {
    std::remove(path.c_str());
  }
}

bool WriteAllFd(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<PersistentStore>> PersistentStore::Open(
    const std::string& dir, uint64_t config_fingerprint, StoreState* state,
    LoadStats* stats) {
  QMATCH_COUNTER_ADD("persist.load", 1);
  QMATCH_RETURN_IF_ERROR(EnsureDir(dir));
  std::unique_ptr<PersistentStore> store(
      new PersistentStore(dir, config_fingerprint));
  Status loaded = LoadState(dir, config_fingerprint, state, stats);
  if (!loaded.ok()) {
    if (loaded.code() != StatusCode::kDataLoss) return loaded;
    // Corrupt state is quarantined, never trusted and never fatal: the
    // engine pays a cold start instead of refusing to serve.
    QMATCH_COUNTER_ADD("persist.load_data_loss", 1);
    QuarantineFile(store->snapshot_path());
    QuarantineFile(store->journal_path());
    *state = StoreState{};
    *stats = LoadStats{};
    stats->started_cold = true;
  }
  std::lock_guard<std::mutex> lock(store->mutex_);
  if (stats->journal_config_mismatch) {
    // The journal on disk belongs to a differently-configured engine; our
    // appends would be dropped behind its header. Reset it (atomically)
    // before the first append.
    QMATCH_RETURN_IF_ERROR(WriteFileAtomic(
        store->journal_path(), EncodeJournalHeader(config_fingerprint)));
  }
  QMATCH_RETURN_IF_ERROR(store->EnsureJournalLocked());
  return store;
}

Status PersistentStore::LoadState(const std::string& dir,
                                  uint64_t config_fingerprint,
                                  StoreState* state, LoadStats* stats) {
  const std::string snapshot = JoinPath(dir, kSnapshotFile);
  if (FileExists(snapshot)) {
    stats->snapshot_present = true;
    Result<std::string> bytes = ReadStoreFile(snapshot);
    if (!bytes.ok()) return bytes.status();
    QMATCH_RETURN_IF_ERROR(
        DecodeSnapshot(*bytes, config_fingerprint, state, stats));
  }
  const std::string journal = JoinPath(dir, kJournalFile);
  if (FileExists(journal)) {
    stats->journal_present = true;
    Result<std::string> bytes = ReadStoreFile(journal);
    if (!bytes.ok()) return bytes.status();
    QMATCH_RETURN_IF_ERROR(
        DecodeJournal(*bytes, config_fingerprint, state, stats));
  }
  return Status::OK();
}

PersistentStore::~PersistentStore() {
  std::lock_guard<std::mutex> lock(mutex_);
  CloseJournalLocked();
}

std::string PersistentStore::snapshot_path() const {
  return JoinPath(dir_, kSnapshotFile);
}

std::string PersistentStore::journal_path() const {
  return JoinPath(dir_, kJournalFile);
}

void PersistentStore::CloseJournalLocked() {
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
}

Status PersistentStore::EnsureJournalLocked() {
  if (journal_fd_ >= 0) return Status::OK();
  const std::string path = journal_path();
  if (!FileExists(path)) {
    // The header commits atomically, so a journal either exists with a
    // valid header or not at all — a torn header is impossible.
    QMATCH_RETURN_IF_ERROR(
        WriteFileAtomic(path, EncodeJournalHeader(config_fingerprint_)));
  }
  journal_fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (journal_fd_ < 0) {
    return Status::IoError(path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status PersistentStore::AppendRecordLocked(const std::string& record) {
  QMATCH_RETURN_IF_ERROR(EnsureJournalLocked());
  struct stat st{};
  if (::fstat(journal_fd_, &st) != 0) {
    return Status::IoError(journal_path() + ": " + std::strerror(errno));
  }
  const off_t base = st.st_size;
  // Failed appends must leave no trace, so every graceful error path
  // truncates back to the pre-append length. Only a crash (a throwing
  // failpoint here, or a real one) leaves a torn tail — which the loader
  // drops as the uncommitted in-flight update.
  const size_t half = record.size() / 2;
  if (!WriteAllFd(journal_fd_, record.data(), half)) {
    const Status error =
        Status::IoError(journal_path() + ": " + std::strerror(errno));
    (void)::ftruncate(journal_fd_, base);
    return error;
  }
  if (QMATCH_FAILPOINT_FIRED("persist.write")) {
    (void)::ftruncate(journal_fd_, base);
    return Status::IoError(journal_path() + ": injected short append");
  }
  if (!WriteAllFd(journal_fd_, record.data() + half, record.size() - half)) {
    const Status error =
        Status::IoError(journal_path() + ": " + std::strerror(errno));
    (void)::ftruncate(journal_fd_, base);
    return error;
  }
  if (QMATCH_FAILPOINT_FIRED("persist.fsync")) {
    (void)::ftruncate(journal_fd_, base);
    return Status::IoError(journal_path() + ": injected fsync failure");
  }
  if (::fsync(journal_fd_) != 0) {
    const Status error =
        Status::IoError(journal_path() + ": " + std::strerror(errno));
    (void)::ftruncate(journal_fd_, base);
    return error;
  }
  ++appends_;
  QMATCH_COUNTER_ADD("persist.journal_appends", 1);
  return Status::OK();
}

Status PersistentStore::AppendCache(const CacheEntryRec& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendRecordLocked(EncodeCacheRecord(entry));
}

Status PersistentStore::AppendCorpus(const CorpusEntryRec& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendRecordLocked(EncodeCorpusRecord(entry));
}

Status PersistentStore::Compact(const StoreState& full_state) {
  std::lock_guard<std::mutex> lock(mutex_);
  QMATCH_COUNTER_ADD("persist.save", 1);
  // Order is the crash-safety argument: (1) commit the new snapshot
  // atomically; (2) reset the journal atomically. A crash between the two
  // leaves new snapshot + old journal, and replaying those journal records
  // over the snapshot is idempotent — the loaded state is exactly the new
  // state. No window holds a torn or mixed file.
  Status snapshot = WriteFileAtomic(snapshot_path(),
                                    EncodeSnapshot(full_state,
                                                   config_fingerprint_));
  if (!snapshot.ok()) {
    QMATCH_COUNTER_ADD("persist.save_failures", 1);
    return snapshot;
  }
  CloseJournalLocked();
  Status journal = WriteFileAtomic(journal_path(),
                                   EncodeJournalHeader(config_fingerprint_));
  if (!journal.ok()) {
    // New snapshot + previous journal is consistent (see above); reopen
    // whatever journal survives so appends keep flowing.
    QMATCH_COUNTER_ADD("persist.save_failures", 1);
    (void)EnsureJournalLocked();
    return journal;
  }
  QMATCH_RETURN_IF_ERROR(EnsureJournalLocked());
  appends_ = 0;
  return Status::OK();
}

size_t PersistentStore::appends_since_compact() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appends_;
}

}  // namespace qmatch::persist
