#ifndef QMATCH_PERSIST_WIRE_H_
#define QMATCH_PERSIST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace qmatch::persist {

/// Little-endian binary encoder for the on-disk snapshot/journal payloads.
/// Fixed-width integers and length-prefixed strings only — no varints, no
/// padding — so every field has exactly one byte representation and the
/// record CRCs are stable across platforms (we target little-endian;
/// the encoding is explicit-shift so big-endian hosts would still agree).
class Encoder {
 public:
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  /// Doubles are stored as their IEEE-754 bit pattern, so a recovered QoM
  /// is bit-identical to the computed one — the warm-start acceptance
  /// criterion, not an approximation.
  void PutDouble(double value);
  /// u32 byte length + raw bytes (no terminator).
  void PutString(std::string_view value);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked reader over untrusted bytes. Every accessor returns
/// false instead of reading past the end — the fuzz contract: hostile
/// lengths and truncations can never over-read. A Decoder never allocates
/// from a length field without the bytes actually being present.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  bool GetU32(uint32_t* out);
  bool GetU64(uint64_t* out);
  bool GetDouble(double* out);
  bool GetString(std::string* out);
  /// Reads `size` raw bytes as a view into the underlying buffer.
  bool GetBytes(size_t size, std::string_view* out);

  size_t remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace qmatch::persist

#endif  // QMATCH_PERSIST_WIRE_H_
