#include "persist/crc32.h"

#include <array>

namespace qmatch::persist {

namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  return kTable;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view bytes) {
  const std::array<uint32_t, 256>& table = Table();
  crc = ~crc;
  for (char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xffu];
  }
  return ~crc;
}

uint32_t Crc32(std::string_view bytes) { return Crc32Update(0, bytes); }

}  // namespace qmatch::persist
