#include "persist/wire.h"

#include <bit>

namespace qmatch::persist {

void Encoder::PutU32(uint32_t value) {
  for (int byte = 0; byte < 4; ++byte) {
    bytes_.push_back(static_cast<char>((value >> (byte * 8)) & 0xffu));
  }
}

void Encoder::PutU64(uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    bytes_.push_back(static_cast<char>((value >> (byte * 8)) & 0xffu));
  }
}

void Encoder::PutDouble(double value) {
  PutU64(std::bit_cast<uint64_t>(value));
}

void Encoder::PutString(std::string_view value) {
  PutU32(static_cast<uint32_t>(value.size()));
  bytes_.append(value);
}

bool Decoder::GetU32(uint32_t* out) {
  if (remaining() < 4) return false;
  uint32_t value = 0;
  for (int byte = 0; byte < 4; ++byte) {
    value |= static_cast<uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + static_cast<size_t>(
                                                              byte)]))
             << (byte * 8);
  }
  pos_ += 4;
  *out = value;
  return true;
}

bool Decoder::GetU64(uint64_t* out) {
  if (remaining() < 8) return false;
  uint64_t value = 0;
  for (int byte = 0; byte < 8; ++byte) {
    value |= static_cast<uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_ + static_cast<size_t>(
                                                              byte)]))
             << (byte * 8);
  }
  pos_ += 8;
  *out = value;
  return true;
}

bool Decoder::GetDouble(double* out) {
  uint64_t bits = 0;
  if (!GetU64(&bits)) return false;
  *out = std::bit_cast<double>(bits);
  return true;
}

bool Decoder::GetString(std::string* out) {
  uint32_t size = 0;
  if (!GetU32(&size)) return false;
  if (remaining() < size) return false;
  out->assign(bytes_.substr(pos_, size));
  pos_ += size;
  return true;
}

bool Decoder::GetBytes(size_t size, std::string_view* out) {
  if (remaining() < size) return false;
  *out = bytes_.substr(pos_, size);
  pos_ += size;
  return true;
}

}  // namespace qmatch::persist
