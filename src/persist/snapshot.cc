#include "persist/snapshot.h"

#include <utility>

#include "persist/crc32.h"
#include "persist/wire.h"

namespace qmatch::persist {

namespace {

constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4;  // magic + version + fp + crc
constexpr size_t kRecordFrameBytes = 4 + 4 + 4;  // type + length + crc

std::string EncodeHeader(std::string_view magic, uint64_t config_fingerprint) {
  Encoder enc;
  std::string out(magic);
  enc.PutU32(kFormatVersion);
  enc.PutU64(config_fingerprint);
  out += enc.bytes();
  Encoder crc;
  crc.PutU32(Crc32(out));
  out += crc.bytes();
  return out;
}

std::string FrameRecord(RecordType type, std::string payload) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(type));
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  std::string out = enc.Take();
  out += payload;
  Encoder crc;
  crc.PutU32(Crc32(out));
  out += crc.bytes();
  return out;
}

}  // namespace

std::string EncodeCacheRecordPayload(const CacheEntryRec& entry) {
  Encoder enc;
  enc.PutU64(entry.source_fp);
  enc.PutU64(entry.target_fp);
  enc.PutU64(entry.config_hash);
  enc.PutString(entry.algorithm);
  enc.PutDouble(entry.schema_qom);
  enc.PutU32(static_cast<uint32_t>(entry.correspondences.size()));
  for (const CorrespondenceRec& c : entry.correspondences) {
    enc.PutString(c.source_path);
    enc.PutString(c.target_path);
    enc.PutDouble(c.score);
  }
  return enc.Take();
}

std::string EncodeCorpusRecordPayload(const CorpusEntryRec& entry) {
  Encoder enc;
  enc.PutString(entry.path);
  enc.PutU64(entry.schema_fp);
  enc.PutU32(entry.breaker_failures);
  return enc.Take();
}

bool DecodeCacheRecordPayload(std::string_view payload, CacheEntryRec* out) {
  Decoder dec(payload);
  uint32_t count = 0;
  if (!dec.GetU64(&out->source_fp) || !dec.GetU64(&out->target_fp) ||
      !dec.GetU64(&out->config_hash) || !dec.GetString(&out->algorithm) ||
      !dec.GetDouble(&out->schema_qom) || !dec.GetU32(&count)) {
    return false;
  }
  // Cheap pre-check before reserving: each correspondence is at least two
  // empty strings + a double, so a hostile count cannot force a giant
  // allocation backed by nothing.
  if (static_cast<size_t>(count) * (4 + 4 + 8) > dec.remaining()) return false;
  out->correspondences.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CorrespondenceRec c;
    if (!dec.GetString(&c.source_path) || !dec.GetString(&c.target_path) ||
        !dec.GetDouble(&c.score)) {
      return false;
    }
    out->correspondences.push_back(std::move(c));
  }
  return dec.remaining() == 0;
}

bool DecodeCorpusRecordPayload(std::string_view payload, CorpusEntryRec* out) {
  Decoder dec(payload);
  return dec.GetString(&out->path) && dec.GetU64(&out->schema_fp) &&
         dec.GetU32(&out->breaker_failures) && dec.remaining() == 0;
}

namespace {

/// Validates the 24-byte header. On success sets *fingerprint_matches and
/// advances nothing (caller slices past kHeaderBytes).
Status DecodeHeader(std::string_view bytes, std::string_view magic,
                    uint64_t config_fingerprint, bool* fingerprint_matches) {
  if (bytes.size() < kHeaderBytes) {
    return Status::DataLoss("persist header truncated");
  }
  if (bytes.substr(0, 8) != magic) {
    return Status::DataLoss("persist header magic mismatch");
  }
  Decoder dec(bytes.substr(8));
  uint32_t version = 0;
  uint64_t fingerprint = 0;
  uint32_t crc = 0;
  (void)dec.GetU32(&version);
  (void)dec.GetU64(&fingerprint);
  (void)dec.GetU32(&crc);
  if (crc != Crc32(bytes.substr(0, kHeaderBytes - 4))) {
    return Status::DataLoss("persist header checksum mismatch");
  }
  if (version != kFormatVersion) {
    return Status::DataLoss("persist format version unsupported");
  }
  *fingerprint_matches = fingerprint == config_fingerprint;
  return Status::OK();
}

/// Walks the record stream shared by both files. `tolerate_torn_tail`
/// selects the journal semantics (truncate the crash artefact) vs the
/// snapshot semantics (any violation is corruption).
Status DecodeRecords(std::string_view bytes, bool fingerprint_matches,
                     bool tolerate_torn_tail, bool is_journal,
                     StoreState* state, LoadStats* stats) {
  size_t pos = 0;
  while (pos < bytes.size()) {
    const std::string_view rest = bytes.substr(pos);
    Decoder dec(rest);
    uint32_t type = 0;
    uint32_t length = 0;
    if (!dec.GetU32(&type) || !dec.GetU32(&length)) {
      if (tolerate_torn_tail) {
        stats->truncated_tail_bytes += rest.size();
        return Status::OK();
      }
      return Status::DataLoss("persist record header truncated");
    }
    if (length > kMaxPayloadBytes) {
      return Status::DataLoss("persist record length implausible");
    }
    std::string_view payload;
    uint32_t crc = 0;
    if (!dec.GetBytes(length, &payload) || !dec.GetU32(&crc)) {
      if (tolerate_torn_tail) {
        stats->truncated_tail_bytes += rest.size();
        return Status::OK();
      }
      return Status::DataLoss("persist record truncated");
    }
    if (crc != Crc32(rest.substr(0, 8 + length))) {
      // A complete record with a bad checksum cannot be a torn append — a
      // crash only ever leaves a *prefix* of a record. This is corruption
      // even in the journal.
      return Status::DataLoss("persist record checksum mismatch");
    }
    const size_t record_bytes = kRecordFrameBytes + length;
    pos += record_bytes;
    if (is_journal) {
      ++stats->journal_records;
    } else {
      ++stats->snapshot_records;
    }
    if (!fingerprint_matches) {
      ++stats->dropped_records;
      continue;
    }
    switch (static_cast<RecordType>(type)) {
      case RecordType::kCacheEntry: {
        CacheEntryRec entry;
        if (!DecodeCacheRecordPayload(payload, &entry)) {
          return Status::DataLoss("persist cache record payload malformed");
        }
        state->cache_entries.push_back(std::move(entry));
        break;
      }
      case RecordType::kCorpusEntry: {
        CorpusEntryRec entry;
        if (!DecodeCorpusRecordPayload(payload, &entry)) {
          return Status::DataLoss("persist corpus record payload malformed");
        }
        state->corpus_entries.push_back(std::move(entry));
        break;
      }
      default:
        // Valid CRC, unknown type: a future format extension. Skipped and
        // counted, never trusted, never fatal.
        ++stats->dropped_records;
        break;
    }
  }
  return Status::OK();
}

}  // namespace

std::string EncodeSnapshot(const StoreState& state,
                           uint64_t config_fingerprint) {
  std::string out = EncodeHeader(kSnapshotMagic, config_fingerprint);
  for (const CacheEntryRec& entry : state.cache_entries) {
    out += EncodeCacheRecord(entry);
  }
  for (const CorpusEntryRec& entry : state.corpus_entries) {
    out += EncodeCorpusRecord(entry);
  }
  return out;
}

std::string EncodeJournalHeader(uint64_t config_fingerprint) {
  return EncodeHeader(kJournalMagic, config_fingerprint);
}

std::string EncodeCacheRecord(const CacheEntryRec& entry) {
  return FrameRecord(RecordType::kCacheEntry, EncodeCacheRecordPayload(entry));
}

std::string EncodeCorpusRecord(const CorpusEntryRec& entry) {
  return FrameRecord(RecordType::kCorpusEntry, EncodeCorpusRecordPayload(entry));
}

Status DecodeSnapshot(std::string_view bytes, uint64_t config_fingerprint,
                      StoreState* state, LoadStats* stats) {
  bool fingerprint_matches = false;
  QMATCH_RETURN_IF_ERROR(DecodeHeader(bytes, kSnapshotMagic,
                                      config_fingerprint,
                                      &fingerprint_matches));
  stats->snapshot_config_mismatch = !fingerprint_matches;
  return DecodeRecords(bytes.substr(kHeaderBytes), fingerprint_matches,
                       /*tolerate_torn_tail=*/false, /*is_journal=*/false,
                       state, stats);
}

Status DecodeJournal(std::string_view bytes, uint64_t config_fingerprint,
                     StoreState* state, LoadStats* stats) {
  bool fingerprint_matches = false;
  QMATCH_RETURN_IF_ERROR(DecodeHeader(bytes, kJournalMagic, config_fingerprint,
                                      &fingerprint_matches));
  stats->journal_config_mismatch = !fingerprint_matches;
  return DecodeRecords(bytes.substr(kHeaderBytes), fingerprint_matches,
                       /*tolerate_torn_tail=*/true, /*is_journal=*/true, state,
                       stats);
}

}  // namespace qmatch::persist
