#ifndef QMATCH_PERSIST_EPOCH_H_
#define QMATCH_PERSIST_EPOCH_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace qmatch::persist {

/// Fencing-epoch persistence (DESIGN.md §16). The epoch is the HA pair's
/// split-brain arbiter: a monotone u64 that a standby bumps ON DISK before
/// it flips to primary, so that even if the promoting process crashes
/// between the write and the role flip, a restart can never serve at an
/// epoch it might already have ceded. The file is a single fixed record —
/// magic, format version, epoch, CRC — written via WriteFileAtomic, so a
/// reader sees the previous epoch or the new one, never a torn value.

/// Persists `epoch` to `<dir>/epoch.qme` crash-safely. Inherits the
/// persist.write/persist.fsync/persist.rename failpoints.
Status SaveEpoch(const std::string& dir, uint64_t epoch);

/// Loads the persisted epoch. A missing file is epoch 0 (a pair that has
/// never promoted); corrupt or truncated bytes are kDataLoss — callers
/// must treat that as "unknown, assume the configured floor", never as 0.
Result<uint64_t> LoadEpoch(const std::string& dir);

/// The on-disk file name, exposed for tests and tooling.
std::string EpochPath(const std::string& dir);

}  // namespace qmatch::persist

#endif  // QMATCH_PERSIST_EPOCH_H_
