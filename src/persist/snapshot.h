#ifndef QMATCH_PERSIST_SNAPSHOT_H_
#define QMATCH_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qmatch::persist {

/// On-disk format (DESIGN.md §12). Two files share one record framing:
///
///   snapshot (rewritten whole, atomically):
///     [8]  magic "QMSNAP01"
///     [4]  format version (kFormatVersion)
///     [8]  engine config fingerprint
///     [4]  CRC32 of the 20 header bytes
///     then records until EOF
///
///   journal (header written atomically, records appended):
///     [8]  magic "QMJRNL01"
///     [4]  format version
///     [8]  engine config fingerprint
///     [4]  CRC32 of the 20 header bytes
///     then appended records
///
///   record:
///     [4]  type          (RecordType)
///     [4]  payload length
///     [n]  payload       (Encoder wire format)
///     [4]  CRC32 of type + length + payload
///
/// Validation rules — who gets to be wrong, and how:
///  * snapshot: only ever created whole via WriteFileAtomic, so ANY
///    framing/CRC violation (truncation included) is corruption →
///    kDataLoss. A crash can never tear it.
///  * journal: appends are the in-flight mutation, so a partial record at
///    EOF is the expected crash artefact → silently truncated (the update
///    it carried simply never committed; the store is the previous
///    state). A CRC failure on a *complete* record cannot come from a
///    crash → kDataLoss.
///  * a config-fingerprint mismatch is not corruption: the file is valid
///    but was written by a differently-configured engine, so every entry
///    is dropped (counted), never trusted.

inline constexpr std::string_view kSnapshotMagic = "QMSNAP01";
inline constexpr std::string_view kJournalMagic = "QMJRNL01";
inline constexpr uint32_t kFormatVersion = 1;
/// Framing sanity cap: a record payload longer than this is corruption by
/// definition (the engine never writes one), so hostile length fields are
/// rejected before any allocation.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB

enum class RecordType : uint32_t {
  /// One result-cache entry (upsert, keyed by the fingerprint triple).
  kCacheEntry = 1,
  /// One corpus-index entry (upsert, keyed by path).
  kCorpusEntry = 2,
};

/// Persisted form of one cached correspondence: endpoint paths (node
/// pointers are rehydrated against the caller's schemas on every hit) and
/// the exact score bits.
struct CorrespondenceRec {
  std::string source_path;
  std::string target_path;
  double score = 0.0;

  friend bool operator==(const CorrespondenceRec&,
                         const CorrespondenceRec&) = default;
};

/// Persisted form of one MatchEngine result-cache entry.
struct CacheEntryRec {
  uint64_t source_fp = 0;
  uint64_t target_fp = 0;
  uint64_t config_hash = 0;
  std::string algorithm;
  double schema_qom = 0.0;
  std::vector<CorrespondenceRec> correspondences;

  friend bool operator==(const CacheEntryRec&, const CacheEntryRec&) = default;
};

/// Persisted form of one corpus-index entry: the schema fingerprint seen at
/// the last successful parse (0 = never parsed) and the circuit breaker's
/// consecutive-failure count, so repeatedly-failing entries stay rejected
/// across restarts.
struct CorpusEntryRec {
  std::string path;
  uint64_t schema_fp = 0;
  uint32_t breaker_failures = 0;

  friend bool operator==(const CorpusEntryRec&,
                         const CorpusEntryRec&) = default;
};

/// Decoded store content, in record order (oldest first). Both record kinds
/// are upserts: replaying duplicates is idempotent and last-wins, which is
/// what makes "snapshot committed, journal not yet reset" a consistent
/// crash state.
struct StoreState {
  std::vector<CacheEntryRec> cache_entries;
  std::vector<CorpusEntryRec> corpus_entries;
};

/// Accounting of one load: what was read, dropped, or truncated.
struct LoadStats {
  bool snapshot_present = false;
  bool journal_present = false;
  size_t snapshot_records = 0;
  size_t journal_records = 0;
  /// Records dropped untrusted: config-fingerprint mismatch or an unknown
  /// (future) record type with a valid CRC.
  size_t dropped_records = 0;
  /// Bytes of torn journal tail discarded (the crash artefact).
  size_t truncated_tail_bytes = 0;
  /// True when Open() discarded corrupt state and started cold.
  bool started_cold = false;
  /// Set when the file header carried a different engine-config
  /// fingerprint: the file is valid, but every record in it was dropped.
  /// Open() resets a mismatched journal so new appends are not poisoned.
  bool snapshot_config_mismatch = false;
  bool journal_config_mismatch = false;
};

/// Encodes a whole snapshot file (header + one record per entry).
std::string EncodeSnapshot(const StoreState& state,
                           uint64_t config_fingerprint);

/// Encodes the journal header (the only part written at journal creation).
std::string EncodeJournalHeader(uint64_t config_fingerprint);

/// Encodes one appendable journal record.
std::string EncodeCacheRecord(const CacheEntryRec& entry);
std::string EncodeCorpusRecord(const CorpusEntryRec& entry);

/// Record *payloads* without the [type][len][crc] frame — the unit the
/// replication stream ships (src/replica/): the primary encodes exactly
/// what its journal holds, the standby decodes with the same hostile-input
/// discipline, and a replicated entry is bit-identical to a journaled one.
std::string EncodeCacheRecordPayload(const CacheEntryRec& entry);
std::string EncodeCorpusRecordPayload(const CorpusEntryRec& entry);
bool DecodeCacheRecordPayload(std::string_view payload, CacheEntryRec* out);
bool DecodeCorpusRecordPayload(std::string_view payload, CorpusEntryRec* out);

/// Decodes snapshot bytes. Appends decoded entries to `state` and tallies
/// into `stats` (both must be non-null). Any framing/CRC violation →
/// kDataLoss with `state` holding only fully-validated records.
Status DecodeSnapshot(std::string_view bytes, uint64_t config_fingerprint,
                      StoreState* state, LoadStats* stats);

/// Decodes journal bytes. A partial record at EOF is truncated silently
/// (counted in `stats->truncated_tail_bytes`); a CRC failure on a complete
/// record → kDataLoss.
Status DecodeJournal(std::string_view bytes, uint64_t config_fingerprint,
                     StoreState* state, LoadStats* stats);

}  // namespace qmatch::persist

#endif  // QMATCH_PERSIST_SNAPSHOT_H_
