#include "persist/epoch.h"

#include "common/file_util.h"
#include "persist/crc32.h"
#include "persist/wire.h"

namespace qmatch::persist {

namespace {

// "QMEPOCH1" — distinct from the snapshot/journal magics so a misplaced
// file is rejected as corrupt rather than half-parsed.
constexpr std::string_view kEpochMagic = "QMEPOCH1";
constexpr uint32_t kEpochFormatVersion = 1;

}  // namespace

std::string EpochPath(const std::string& dir) { return dir + "/epoch.qme"; }

Status SaveEpoch(const std::string& dir, uint64_t epoch) {
  std::string body(kEpochMagic);
  Encoder enc;
  enc.PutU32(kEpochFormatVersion);
  enc.PutU64(epoch);
  body += enc.bytes();
  Encoder crc;
  crc.PutU32(Crc32(body));
  body += crc.bytes();
  return WriteFileAtomic(EpochPath(dir), body);
}

Result<uint64_t> LoadEpoch(const std::string& dir) {
  const std::string path = EpochPath(dir);
  if (!FileExists(path)) return uint64_t{0};
  Result<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& raw = bytes.value();
  if (raw.size() != kEpochMagic.size() + 4 + 8 + 4) {
    return Status::DataLoss("epoch file truncated: " + path);
  }
  if (std::string_view(raw).substr(0, kEpochMagic.size()) != kEpochMagic) {
    return Status::DataLoss("epoch file bad magic: " + path);
  }
  const std::string_view checked(raw.data(), raw.size() - 4);
  Decoder tail(std::string_view(raw).substr(raw.size() - 4));
  uint32_t stored_crc = 0;
  if (!tail.GetU32(&stored_crc) || stored_crc != Crc32(checked)) {
    return Status::DataLoss("epoch file CRC mismatch: " + path);
  }
  Decoder dec(std::string_view(raw).substr(kEpochMagic.size()));
  uint32_t version = 0;
  uint64_t epoch = 0;
  if (!dec.GetU32(&version) || version != kEpochFormatVersion ||
      !dec.GetU64(&epoch)) {
    return Status::DataLoss("epoch file bad version: " + path);
  }
  return epoch;
}

}  // namespace qmatch::persist
