#ifndef QMATCH_PERSIST_CRC32_H_
#define QMATCH_PERSIST_CRC32_H_

#include <cstdint>
#include <string_view>

namespace qmatch::persist {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/gzip checksum) of
/// `bytes`. Every snapshot/journal record carries one so corruption —
/// bit rot, torn non-tail writes, hostile bytes — is detected before a
/// single decoded field is trusted.
uint32_t Crc32(std::string_view bytes);

/// Incremental form: feed `bytes` into a running checksum (`crc` starts at
/// 0 and the return value is passed back in).
uint32_t Crc32Update(uint32_t crc, std::string_view bytes);

}  // namespace qmatch::persist

#endif  // QMATCH_PERSIST_CRC32_H_
