#ifndef QMATCH_COMMON_CANCEL_H_
#define QMATCH_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <string_view>

namespace qmatch {

/// Cooperative cancellation flag shared between a requester and the worker
/// threads executing the request. Thread-safe; the checking side is one
/// acquire load.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// Re-arms the token for reuse across requests (tests mostly).
  void Reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// An absolute point on the steady clock by which a request must finish.
/// Default-constructed deadlines are unbounded (never expire).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `budget` from now.
  static Deadline After(Clock::duration budget) {
    return Deadline(Clock::now() + budget);
  }

  static Deadline At(Clock::time_point when) { return Deadline(when); }

  /// False for the unbounded deadline — bounded() gates every clock read,
  /// so requests without a deadline never pay for one.
  bool bounded() const { return bounded_; }

  bool Expired() const { return bounded_ && Clock::now() >= when_; }

  /// Time left before expiry: zero when expired, duration::max() when
  /// unbounded.
  Clock::duration Remaining() const {
    if (!bounded_) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= when_ ? Clock::duration::zero() : when_ - now;
  }

  Clock::time_point when() const { return when_; }

 private:
  explicit Deadline(Clock::time_point when) : when_(when), bounded_(true) {}

  Clock::time_point when_ = Clock::time_point::max();
  bool bounded_ = false;
};

/// Why a cooperative computation stopped early.
enum class StopReason {
  kNone = 0,
  kCancelled,
  kDeadlineExceeded,
};

std::string_view StopReasonName(StopReason reason);

/// Per-request execution control plumbed from the engine's public API down
/// into the TreeMatch table fill. Checked cooperatively at node-pair
/// granularity; both members are optional (null token / unbounded deadline
/// make Check() trivially cheap).
struct ExecControl {
  Deadline deadline;
  const CancellationToken* cancel = nullptr;

  /// True when a Check() can ever return non-kNone — callers skip the
  /// checking machinery entirely otherwise.
  bool active() const { return cancel != nullptr || deadline.bounded(); }

  /// Polls both stop sources. Cancellation wins over an expired deadline
  /// (the requester's explicit signal is the stronger statement of intent).
  StopReason Check() const {
    if (cancel != nullptr && cancel->cancelled()) return StopReason::kCancelled;
    if (deadline.Expired()) return StopReason::kDeadlineExceeded;
    return StopReason::kNone;
  }
};

}  // namespace qmatch

#endif  // QMATCH_COMMON_CANCEL_H_
