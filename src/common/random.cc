#include "common/random.h"

#include <cassert>

namespace qmatch {

namespace {
// SplitMix64: expands a single seed into well-distributed state words.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t x = seed;
  s0_ = SplitMix64(x);
  s1_ = SplitMix64(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be non-zero
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace qmatch
