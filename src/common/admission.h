#ifndef QMATCH_COMMON_ADMISSION_H_
#define QMATCH_COMMON_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/cancel.h"
#include "common/status.h"

namespace qmatch {

/// Tuning knobs of the AdmissionController.
struct AdmissionOptions {
  /// Total cost (node pairs, |Ns|·|Nt|) allowed in flight at once. 0
  /// disables admission control entirely — every request is admitted
  /// immediately, the controller is a pass-through.
  uint64_t max_inflight_cost = 0;

  /// Requests that cannot run immediately wait in a FIFO queue of at most
  /// this depth; arrivals beyond it are shed with kOverloaded.
  size_t max_queue_depth = 16;
};

class AdmissionController;

/// RAII hold on admitted capacity: returned by Admit/AdmitBlocking,
/// releases its cost (and wakes queued waiters) on destruction. Move-only;
/// a default-constructed or moved-from Permit releases nothing.
class AdmissionPermit {
 public:
  AdmissionPermit() = default;
  AdmissionPermit(AdmissionPermit&& other) noexcept
      : controller_(other.controller_), cost_(other.cost_) {
    other.controller_ = nullptr;
    other.cost_ = 0;
  }
  AdmissionPermit& operator=(AdmissionPermit&& other) noexcept;
  AdmissionPermit(const AdmissionPermit&) = delete;
  AdmissionPermit& operator=(const AdmissionPermit&) = delete;
  ~AdmissionPermit() { Release(); }

  /// Returns the held cost early (idempotent).
  void Release() noexcept;

  bool held() const { return controller_ != nullptr; }
  uint64_t cost() const { return cost_; }

 private:
  friend class AdmissionController;
  AdmissionPermit(AdmissionController* controller, uint64_t cost)
      : controller_(controller), cost_(cost) {}

  AdmissionController* controller_ = nullptr;
  uint64_t cost_ = 0;
};

/// Cost-based admission control with a bounded FIFO pending queue.
///
/// Each request declares a cost proportional to its work (the engine uses
/// the pairwise-table size |Ns|·|Nt|). Requests are admitted while the
/// in-flight cost fits under `max_inflight_cost`; otherwise they wait in
/// FIFO order up to their deadline, and arrivals that find the queue full
/// are shed immediately with a typed kOverloaded Status — backpressure
/// with a hard bound on latency debt. A request costing more than the
/// whole capacity is clamped to it, so oversized work runs alone when the
/// system is idle instead of being unservable.
///
/// Thread-safe. The `admission.admit` failpoint injects a shed at the top
/// of Admit for chaos tests.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {})
      : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  bool enabled() const { return options_.max_inflight_cost != 0; }

  /// Admits `cost` units of work, waiting (FIFO) up to `control`'s
  /// deadline/cancellation if the system is at capacity. On OK `*out`
  /// holds the admitted cost. Queue full → kOverloaded (shed, counted);
  /// deadline expiry / cancellation while queued → kDeadlineExceeded /
  /// kCancelled.
  Status Admit(uint64_t cost, const ExecControl& control,
               AdmissionPermit* out);

  /// Admission for paths without an ExecControl (the untyped legacy API):
  /// enqueues even past the queue cap and waits indefinitely, so it
  /// applies backpressure but can never fail.
  void AdmitBlocking(uint64_t cost, AdmissionPermit* out);

  /// Load signal in [0, 1]: the larger of cost utilization and queue fill.
  /// 0 when disabled. One input of the engine's degradation ladder.
  double Pressure() const;

  uint64_t inflight_cost() const;
  size_t queue_depth() const;
  /// Requests shed with kOverloaded since construction.
  uint64_t shed_total() const;

 private:
  friend class AdmissionPermit;

  struct Waiter {
    uint64_t id = 0;
    uint64_t cost = 0;
  };

  uint64_t ClampCost(uint64_t cost) const {
    return cost > options_.max_inflight_cost ? options_.max_inflight_cost
                                             : cost;
  }
  bool FitsLocked(uint64_t cost) const {
    return inflight_ + cost <= options_.max_inflight_cost;
  }
  void Release(uint64_t cost) noexcept;

  const AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  uint64_t inflight_ = 0;       // guarded by mutex_
  uint64_t next_waiter_id_ = 0; // guarded by mutex_
  std::deque<Waiter> queue_;    // guarded by mutex_
  uint64_t shed_ = 0;           // guarded by mutex_
};

/// Tuning knobs of the CircuitBreaker.
struct CircuitBreakerOptions {
  /// Consecutive failures that open the circuit.
  int failure_threshold = 3;
  /// How long the circuit stays open before allowing a half-open probe.
  std::chrono::milliseconds cooldown{250};
};

/// Per-corpus-entry circuit breaker: after `failure_threshold` consecutive
/// failures the circuit opens and Allow() rejects (the engine maps that to
/// kOverloaded) until `cooldown` passes; then a single half-open probe is
/// let through — success closes the circuit, failure reopens it for
/// another cooldown. Builds on the per-load retry from the corpus loader:
/// retry handles transient blips, the breaker stops re-admitting entries
/// that keep failing across requests.
///
/// Thread-safe; non-copyable (store in a node-based map).
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {})
      : options_(options) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True when a request may proceed. An open circuit past its cooldown
  /// transitions to half-open and admits exactly one probe.
  bool Allow();

  /// Reports the outcome of an allowed request.
  void RecordSuccess();
  void RecordFailure();
  /// Outcome that says nothing about the entry's health (deadline expiry,
  /// cancellation, admission shed): leaves the failure count and state
  /// alone, but returns a half-open probe slot so the breaker cannot wedge
  /// waiting for a probe that never reported.
  void RecordNeutral();

  State state() const;

  /// Failure history for persistence (the engine journals it per corpus
  /// entry).
  int consecutive_failures() const;

  /// Restores persisted failure history at warm start: sets the
  /// consecutive-failure count and, when it is at or over the threshold,
  /// opens the circuit with a fresh cooldown starting now (the persisted
  /// open time is a steady-clock instant from a dead process — a fresh
  /// cooldown is the conservative reading).
  void Restore(int consecutive_failures);

 private:
  const CircuitBreakerOptions options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;              // guarded by mutex_
  int consecutive_failures_ = 0;              // guarded by mutex_
  bool probe_inflight_ = false;               // guarded by mutex_
  std::chrono::steady_clock::time_point opened_at_{};  // guarded by mutex_
};

}  // namespace qmatch

#endif  // QMATCH_COMMON_ADMISSION_H_
