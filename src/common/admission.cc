#include "common/admission.h"

#include <algorithm>

#include "fault/failpoint.h"

namespace qmatch {

AdmissionPermit& AdmissionPermit::operator=(AdmissionPermit&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    cost_ = other.cost_;
    other.controller_ = nullptr;
    other.cost_ = 0;
  }
  return *this;
}

void AdmissionPermit::Release() noexcept {
  if (controller_ != nullptr) {
    controller_->Release(cost_);
    controller_ = nullptr;
    cost_ = 0;
  }
}

Status AdmissionController::Admit(uint64_t cost, const ExecControl& control,
                                  AdmissionPermit* out) {
  *out = AdmissionPermit();
  if (!enabled()) return Status::OK();
  if (QMATCH_FAILPOINT_FIRED("admission.admit")) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++shed_;
    return Status::Overloaded("admission: injected shed");
  }
  cost = ClampCost(cost);

  std::unique_lock<std::mutex> lock(mutex_);
  // FIFO fairness: even if this request would fit, it must not overtake
  // already-queued waiters.
  if (queue_.empty() && FitsLocked(cost)) {
    inflight_ += cost;
    *out = AdmissionPermit(this, cost);
    return Status::OK();
  }
  if (queue_.size() >= options_.max_queue_depth) {
    ++shed_;
    return Status::Overloaded(
        "admission: pending queue full (depth " +
        std::to_string(queue_.size()) + "), request shed");
  }

  const uint64_t id = ++next_waiter_id_;
  queue_.push_back(Waiter{id, cost});

  auto admissible = [&]() {
    return !queue_.empty() && queue_.front().id == id && FitsLocked(cost);
  };
  auto remove_self = [&]() {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->id == id) {
        queue_.erase(it);
        break;
      }
    }
    // Removing a waiter can unblock the one behind it.
    cv_.notify_all();
  };

  while (!admissible()) {
    StopReason stop = control.Check();
    if (stop != StopReason::kNone) {
      remove_self();
      return stop == StopReason::kCancelled
                 ? Status::Cancelled("admission: cancelled while queued")
                 : Status::DeadlineExceeded(
                       "admission: deadline expired while queued");
    }
    if (control.cancel != nullptr) {
      // No way to wake on token cancellation, so poll.
      auto wake = std::chrono::milliseconds(1);
      if (control.deadline.bounded()) {
        wake = std::min(
            wake, std::chrono::duration_cast<std::chrono::milliseconds>(
                      control.deadline.Remaining()) +
                      std::chrono::milliseconds(1));
      }
      cv_.wait_for(lock, wake);
    } else if (control.deadline.bounded()) {
      cv_.wait_until(lock, control.deadline.when());
    } else {
      cv_.wait(lock);
    }
  }
  queue_.pop_front();
  inflight_ += cost;
  // Our admission may leave room for the next waiter too.
  cv_.notify_all();
  *out = AdmissionPermit(this, cost);
  return Status::OK();
}

void AdmissionController::AdmitBlocking(uint64_t cost, AdmissionPermit* out) {
  *out = AdmissionPermit();
  if (!enabled()) return;
  cost = ClampCost(cost);

  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty() && FitsLocked(cost)) {
    inflight_ += cost;
    *out = AdmissionPermit(this, cost);
    return;
  }
  const uint64_t id = ++next_waiter_id_;
  queue_.push_back(Waiter{id, cost});
  cv_.wait(lock, [&]() {
    return !queue_.empty() && queue_.front().id == id && FitsLocked(cost);
  });
  queue_.pop_front();
  inflight_ += cost;
  cv_.notify_all();
  *out = AdmissionPermit(this, cost);
}

void AdmissionController::Release(uint64_t cost) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  inflight_ -= cost;
  cv_.notify_all();
}

double AdmissionController::Pressure() const {
  if (!enabled()) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  double cost_fill = static_cast<double>(inflight_) /
                     static_cast<double>(options_.max_inflight_cost);
  double queue_fill =
      options_.max_queue_depth == 0
          ? (queue_.empty() ? 0.0 : 1.0)
          : static_cast<double>(queue_.size()) /
                static_cast<double>(options_.max_queue_depth);
  double pressure = std::max(cost_fill, queue_fill);
  return pressure > 1.0 ? 1.0 : pressure;
}

uint64_t AdmissionController::inflight_cost() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_;
}

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t AdmissionController::shed_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (std::chrono::steady_clock::now() - opened_at_ >= options_.cooldown) {
        state_ = State::kHalfOpen;
        probe_inflight_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      // Exactly one probe at a time.
      if (probe_inflight_) return false;
      probe_inflight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_inflight_ = false;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: reopen for another cooldown.
    state_ = State::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
    probe_inflight_ = false;
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
  }
}

void CircuitBreaker::RecordNeutral() {
  std::lock_guard<std::mutex> lock(mutex_);
  probe_inflight_ = false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

void CircuitBreaker::Restore(int consecutive_failures) {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = consecutive_failures;
  if (consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
  } else {
    state_ = State::kClosed;
  }
  probe_inflight_ = false;
}

}  // namespace qmatch
