#include "common/arena.h"

#include <cassert>
#include <cstdint>
#include <utility>

#include "fault/failpoint.h"

namespace qmatch {

Arena::Arena(size_t block_bytes, MemoryBudget* budget)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes),
      charge_(budget) {}

void Arena::AddBlock(size_t min_bytes) {
  const size_t size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
  // Injected exhaustion: the chaos/unit suites arm `arena.alloc` to prove
  // the failure surfaces as kResourceExhausted end to end.
  if (QMATCH_FAILPOINT_FIRED("arena.alloc")) {
    throw ArenaExhausted("arena block allocation failed (injected)");
  }
  const Status charged = charge_.Add(size, "match arena block");
  if (!charged.ok()) {
    throw ArenaExhausted(charged.message());
  }
  Block block;
  block.data = std::make_unique<unsigned char[]>(size);
  block.size = size;
  blocks_.push_back(std::move(block));
  allocated_bytes_ += size;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 && "align: power of two");
  if (blocks_.empty()) {
    AddBlock(bytes + align);
    current_ = 0;
    offset_ = 0;
  }
  for (;;) {
    Block& block = blocks_[current_];
    // Align the absolute address, not the offset: block bases are only
    // guaranteed new[]-aligned and callers may ask for more.
    const uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
    const uintptr_t mask = static_cast<uintptr_t>(align) - 1;
    const size_t aligned =
        static_cast<size_t>(((base + offset_ + mask) & ~mask) - base);
    if (aligned + bytes <= block.size && aligned + bytes >= aligned) {
      offset_ = aligned + bytes;
      used_bytes_ += bytes;
      return block.data.get() + aligned;
    }
    if (current_ + 1 < blocks_.size()) {
      // Reset() retained later blocks; reuse them before growing.
      ++current_;
      offset_ = 0;
      continue;
    }
    AddBlock(bytes + align);
    current_ = blocks_.size() - 1;
    offset_ = 0;
  }
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  used_bytes_ = 0;
}

}  // namespace qmatch
