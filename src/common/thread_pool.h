#ifndef QMATCH_COMMON_THREAD_POOL_H_
#define QMATCH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qmatch {

/// A fixed-size worker pool: `worker_count` std::jthread workers pulling
/// from one condition_variable-guarded task queue (no work stealing — the
/// queue is the single point of coordination, which keeps the pool simple
/// and the scheduling auditable).
///
/// `ParallelFor` is the primitive the match engine builds on: the calling
/// thread *participates* in the loop, so
///  - a pool with 0 workers degrades to a plain sequential loop (the
///    engine's threads=1 mode shares every line of code with threads=N);
///  - calling ParallelFor from inside a pool task cannot deadlock — the
///    caller drains the remaining indices itself even when no worker is
///    free to help.
class ThreadPool {
 public:
  /// Spawns exactly `worker_count` workers (0 is valid: everything then
  /// runs inline on the calling thread).
  explicit ThreadPool(size_t worker_count);

  /// Requests stop and joins all workers; queued tasks that have not
  /// started are discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. A task that throws is contained: the
  /// exception is swallowed by the worker (counted in the
  /// `threadpool.task_exceptions` metric) rather than terminating the
  /// process, but there is no channel to report it — prefer exception-free
  /// tasks.
  void Submit(std::function<void()> task);

  /// Runs fn(0), fn(1), ..., fn(n-1) across the pool plus the calling
  /// thread and returns when every index has completed. Indices are
  /// claimed atomically, so each runs exactly once; completion order is
  /// unspecified — callers get determinism by writing to disjoint,
  /// index-addressed slots.
  ///
  /// Exception safety: a throwing fn(i) does not lose indices or deadlock
  /// the loop. Every index still runs (later indices are unaffected), and
  /// the first captured exception is rethrown on the calling thread once
  /// all n indices have completed. Subsequent exceptions are dropped.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct LoopState;

  /// One queued unit: the callable plus its enqueue timestamp (feeds the
  /// task-wait-time histogram; 0 when observability is compiled out).
  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop(const std::stop_token& stop);

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<Task> queue_;
  std::vector<std::jthread> workers_;
};

}  // namespace qmatch

#endif  // QMATCH_COMMON_THREAD_POOL_H_
