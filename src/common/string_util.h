#ifndef QMATCH_COMMON_STRING_UTIL_H_
#define QMATCH_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace qmatch {

/// ASCII character classification helpers (locale-independent).
inline bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
inline bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }
inline bool IsAsciiUpper(char c) { return c >= 'A' && c <= 'Z'; }
inline bool IsAsciiLower(char c) { return c >= 'a' && c <= 'z'; }
inline bool IsAsciiAlpha(char c) { return IsAsciiUpper(c) || IsAsciiLower(c); }
inline bool IsAsciiAlnum(char c) { return IsAsciiAlpha(c) || IsAsciiDigit(c); }
inline char AsciiToLower(char c) {
  return IsAsciiUpper(c) ? static_cast<char>(c - 'A' + 'a') : c;
}
inline char AsciiToUpper(char c) {
  return IsAsciiLower(c) ? static_cast<char>(c - 'a' + 'A') : c;
}

/// Returns a lower-cased copy of `s` (ASCII only).
std::string ToLower(std::string_view s);

/// Returns an upper-cased copy of `s` (ASCII only).
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Splits `s` on every occurrence of `sep`. Adjacent separators yield empty
/// pieces; an empty input yields a single empty piece.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on `sep` and drops empty pieces after trimming whitespace.
std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

}  // namespace qmatch

#endif  // QMATCH_COMMON_STRING_UTIL_H_
