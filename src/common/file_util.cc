#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/stat.h>

namespace qmatch {

namespace {
std::string ErrnoMessage(const std::string& path) {
  return path + ": " + std::strerror(errno);
}
}  // namespace

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage(path));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t bytes;
  while ((bytes = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, bytes);
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::IoError(ErrnoMessage(path));
  }
  return contents;
}

Status WriteFile(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage(path));
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool failed = written != contents.size();
  if (std::fclose(file) != 0) failed = true;
  if (failed) {
    return Status::IoError(ErrnoMessage(path));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace qmatch
