#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fault/failpoint.h"

namespace qmatch {

namespace {
std::string ErrnoMessage(const std::string& path) {
  return path + ": " + std::strerror(errno);
}

/// Closes (but never unlinks) the held fd — so a simulated crash (a
/// throwing failpoint) releases the descriptor yet leaves whatever bytes
/// made it to disk exactly as a real crash would.
struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    int out = fd;
    fd = -1;
    return out;
  }
};

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}
}  // namespace

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage(path));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t bytes;
  while ((bytes = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, bytes);
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::IoError(ErrnoMessage(path));
  }
  return contents;
}

Status WriteFile(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage(path));
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool failed = written != contents.size();
  if (std::fclose(file) != 0) failed = true;
  if (failed) {
    return Status::IoError(ErrnoMessage(path));
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  FdCloser file{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                       0644)};
  if (file.fd < 0) {
    return Status::IoError(ErrnoMessage(tmp));
  }
  // The payload goes out in two halves around the torn-write failpoint: a
  // kThrow action "crashes" with exactly half the bytes on disk (the temp
  // file is abandoned torn, as a real crash would), a kError action is a
  // graceful short write (cleaned up below).
  const size_t half = contents.size() / 2;
  if (!WriteAll(file.fd, contents.data(), half)) {
    std::remove(tmp.c_str());
    return Status::IoError(ErrnoMessage(tmp));
  }
  if (QMATCH_FAILPOINT_FIRED("persist.write")) {
    std::remove(tmp.c_str());
    return Status::IoError(tmp + ": injected short write");
  }
  if (!WriteAll(file.fd, contents.data() + half, contents.size() - half)) {
    std::remove(tmp.c_str());
    return Status::IoError(ErrnoMessage(tmp));
  }
  if (QMATCH_FAILPOINT_FIRED("persist.fsync")) {
    std::remove(tmp.c_str());
    return Status::IoError(tmp + ": injected fsync failure");
  }
  if (::fsync(file.fd) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(ErrnoMessage(tmp));
  }
  if (::close(file.release()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(ErrnoMessage(tmp));
  }
  if (QMATCH_FAILPOINT_FIRED("persist.rename")) {
    std::remove(tmp.c_str());
    return Status::IoError(path + ": injected rename failure");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(ErrnoMessage(path));
  }
  // Directory fsync makes the rename itself durable. The file content is
  // already committed under the new name by this point, so a failure here
  // is reported but cannot tear the file.
  QMATCH_FAILPOINT("persist.fsync");
  FdCloser dir{::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY)};
  if (dir.fd < 0) {
    return Status::IoError(ErrnoMessage(DirName(path)));
  }
  if (::fsync(dir.fd) != 0) {
    return Status::IoError(ErrnoMessage(DirName(path)));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status EnsureDir(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return Status::OK();
    return Status::IoError(path + ": exists but is not a directory");
  }
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(ErrnoMessage(path));
  }
  return Status::OK();
}

}  // namespace qmatch
