#include "common/memory_budget.h"

#include <string>

#include "fault/failpoint.h"

namespace qmatch {

Status MemoryBudget::TryCharge(uint64_t bytes, std::string_view what) {
  if (QMATCH_FAILPOINT_FIRED("budget.charge")) {
    return Status::ResourceExhausted(std::string(what) +
                                     ": injected budget exhaustion");
  }
  if (bytes == 0) return Status::OK();
  uint64_t prior = used_.fetch_add(bytes, std::memory_order_relaxed);
  if (limit_ != 0 && prior + bytes > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        std::string(what) + ": memory budget exceeded (requested " +
        std::to_string(bytes) + " bytes, used " + std::to_string(prior) +
        " of " + std::to_string(limit_) + ")");
  }
  if (parent_ != nullptr) {
    Status parent_status = parent_->TryCharge(bytes, what);
    if (!parent_status.ok()) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return parent_status;
    }
  }
  uint64_t now = prior + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryBudget::Release(uint64_t bytes) noexcept {
  if (bytes == 0) return;
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->Release(bytes);
}

double MemoryBudget::Pressure() const {
  if (limit_ == 0) return 0.0;
  double ratio = static_cast<double>(used()) / static_cast<double>(limit_);
  if (ratio < 0.0) return 0.0;
  if (ratio > 1.0) return 1.0;
  return ratio;
}

Status ScopedCharge::Add(uint64_t bytes, std::string_view what) {
  if (budget_ == nullptr) return Status::OK();
  QMATCH_RETURN_IF_ERROR(budget_->TryCharge(bytes, what));
  charged_ += bytes;
  return Status::OK();
}

void ScopedCharge::Reset() noexcept {
  if (budget_ != nullptr && charged_ != 0) budget_->Release(charged_);
  charged_ = 0;
}

}  // namespace qmatch
