#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace qmatch {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(AsciiToLower(c));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(AsciiToUpper(c));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiToLower(a[i]) != AsciiToLower(b[i])) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : Split(s, sep)) {
    std::string_view trimmed = Trim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace qmatch
