#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace qmatch {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), file_, line_,
               stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace qmatch
