#ifndef QMATCH_COMMON_ARENA_H_
#define QMATCH_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "common/memory_budget.h"

namespace qmatch {

/// Thrown when an Arena cannot obtain memory: the backing MemoryBudget
/// rejected the charge (per-request or process limit) or the `arena.alloc`
/// failpoint fired. Distinct from std::bad_alloc/std::exception so the
/// engine can map it to a typed kResourceExhausted status instead of the
/// kInternal catch-all (see MatchEngine::Match).
class ArenaExhausted : public std::runtime_error {
 public:
  explicit ArenaExhausted(std::string message)
      : std::runtime_error(std::move(message)) {}
};

/// Bump-pointer arena for per-request scratch memory.
///
/// The SoA match kernel allocates its similarity matrices, SoA score
/// columns and per-row scratch from one arena per request instead of many
/// individually tracked heap containers: allocation is a pointer bump,
/// deallocation is wholesale (destruction or Reset), and the total
/// footprint is charged against the request's MemoryBudget block-by-block
/// as it grows — so one oversized match trips kResourceExhausted instead
/// of OOMing the process.
///
/// Lifetime rules (see DESIGN.md §13):
///  - One arena per request, owned by the frame that owns the request.
///  - NOT thread-safe. All allocation happens on the coordinating thread
///    before work fans out to a pool; workers only read/write the handed
///    out buffers, never allocate.
///  - Reset() recycles the blocks (and keeps their budget charge) for the
///    next request on the same thread; destruction releases everything.
///  - Only trivially destructible payloads: the arena never runs
///    destructors.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 20;  // 1 MiB

  /// `budget` (borrowed, nullable) is charged for every block the arena
  /// acquires and credited back on destruction. A null budget disables
  /// accounting, not allocation.
  explicit Arena(size_t block_bytes = kDefaultBlockBytes,
                 MemoryBudget* budget = nullptr);
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialised storage aligned to `align` (a power
  /// of two ≤ alignof(std::max_align_t)). Throws ArenaExhausted when the
  /// budget rejects the backing block or the `arena.alloc` failpoint
  /// fires. Zero-byte requests return a stable non-null pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed array of `count` value-initialised elements (zeroed for
  /// arithmetic types).
  template <typename T>
  T* MakeArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    T* out = static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    for (size_t i = 0; i < count; ++i) new (out + i) T();
    return out;
  }

  /// Rewinds the bump pointer to the start of the first block. The blocks
  /// — and their budget charge — are retained for reuse; everything
  /// previously handed out becomes invalid.
  void Reset();

  /// Total bytes of backing blocks acquired (== the budget charge).
  size_t allocated_bytes() const { return allocated_bytes_; }
  /// Bytes handed out since construction or the last Reset (≤ allocated,
  /// ignoring alignment padding).
  size_t used_bytes() const { return used_bytes_; }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  /// Acquires a block of at least `min_bytes`, charging the budget.
  void AddBlock(size_t min_bytes);

  size_t block_bytes_;
  ScopedCharge charge_;
  std::vector<Block> blocks_;
  size_t current_ = 0;   // block the bump pointer lives in
  size_t offset_ = 0;    // bump offset within blocks_[current_]
  size_t allocated_bytes_ = 0;
  size_t used_bytes_ = 0;
};

}  // namespace qmatch

#endif  // QMATCH_COMMON_ARENA_H_
