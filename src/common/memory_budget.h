#ifndef QMATCH_COMMON_MEMORY_BUDGET_H_
#define QMATCH_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace qmatch {

/// A hierarchical memory-accounting arena (process → request). Components
/// that allocate proportionally to their input — the XML/XSD parsers, the
/// pairwise QoM memo table — charge their estimated footprint before
/// allocating and release it when the transient structures die. A charge
/// that would exceed the budget's limit (or any ancestor's) fails with a
/// typed `kResourceExhausted` Status instead of letting the allocation OOM
/// the process.
///
/// The accounting is advisory, not an allocator: callers charge estimates
/// up front, so the arena bounds *admitted* memory, and a small transient
/// overshoot between concurrent charges is possible (charges are one
/// fetch_add plus a limit check, no lock). A limit of 0 means unlimited —
/// the arena still tracks `used`/`peak` for the pressure signal.
///
/// Thread-safe. A child budget must not outlive its parent.
class MemoryBudget {
 public:
  /// `limit_bytes` 0 = unlimited. `parent` (borrowed, nullable) receives
  /// every charge/release too, so a request-level budget rolls up into the
  /// process-level one.
  explicit MemoryBudget(uint64_t limit_bytes, MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Attempts to charge `bytes` against this budget and every ancestor.
  /// On failure nothing is charged anywhere and the Status names `what`
  /// plus the requested/used/limit byte counts. The `budget.charge`
  /// failpoint injects exhaustion here (chaos/unit tests).
  Status TryCharge(uint64_t bytes, std::string_view what);

  /// Returns `bytes` to this budget and every ancestor. Must pair with a
  /// successful TryCharge of the same amount.
  void Release(uint64_t bytes) noexcept;

  uint64_t limit() const { return limit_; }
  bool unlimited() const { return limit_ == 0; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  /// High-water mark of `used` since construction.
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Budget watermark in [0, 1]: used/limit, clamped; 0 when unlimited.
  /// One input of the engine's degradation-ladder pressure signal.
  double Pressure() const;

 private:
  const uint64_t limit_;  // 0 = unlimited
  MemoryBudget* const parent_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

/// RAII accumulator over one budget: `Add` charges incrementally (the
/// parsers charge per node), the destructor releases everything charged.
/// A null budget makes every operation a no-op, so call sites stay
/// unconditional.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  explicit ScopedCharge(MemoryBudget* budget) : budget_(budget) {}

  ScopedCharge(ScopedCharge&& other) noexcept
      : budget_(other.budget_), charged_(other.charged_) {
    other.budget_ = nullptr;
    other.charged_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      Reset();
      budget_ = other.budget_;
      charged_ = other.charged_;
      other.budget_ = nullptr;
      other.charged_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  ~ScopedCharge() { Reset(); }

  /// Charges `bytes` more; on failure the previous charges stay (released
  /// by the destructor as usual) and the caller aborts its work.
  Status Add(uint64_t bytes, std::string_view what);

  /// Releases everything charged so far.
  void Reset() noexcept;

  uint64_t charged() const { return charged_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t charged_ = 0;
};

}  // namespace qmatch

#endif  // QMATCH_COMMON_MEMORY_BUDGET_H_
