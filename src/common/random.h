#ifndef QMATCH_COMMON_RANDOM_H_
#define QMATCH_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qmatch {

/// Deterministic 64-bit PRNG (xorshift128+). Used by the synthetic schema
/// generator and property tests so every run is reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element of non-empty `v`.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Uniform(v.size()))];
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace qmatch

#endif  // QMATCH_COMMON_RANDOM_H_
