#ifndef QMATCH_COMMON_FILE_UTIL_H_
#define QMATCH_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace qmatch {

/// Reads an entire file into a string. Fails with kIoError (including the
/// errno text) when the file cannot be opened or read.
Result<std::string> ReadFile(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file. NOT crash
/// safe: a crash mid-write can leave a torn file under the final name.
/// Use WriteFileAtomic for anything a reader must never see half-written.
Status WriteFile(const std::string& path, std::string_view contents);

/// Crash-safe replacement of `path`: writes `contents` to a temp file in
/// the same directory, fsyncs it, renames it over `path`, then fsyncs the
/// directory. A reader (or a post-crash reload) sees either the previous
/// file or the new one in full — never a prefix. On a graceful failure
/// (disk full, permission) the temp file is removed and `path` is
/// untouched; a crash can leave a stale `path + ".tmp"` behind, which the
/// next successful write replaces and readers must ignore.
///
/// Failpoints (fault injection, see DESIGN.md §12): `persist.write` fires
/// after half the payload is written (kError = graceful short write,
/// kThrow = simulated crash leaving a torn temp file), `persist.fsync`
/// before the file fsync, `persist.rename` before the rename.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

/// Creates `path` as a directory if it does not exist (single level, like
/// mkdir(2)). OK when the directory already exists.
Status EnsureDir(const std::string& path);

}  // namespace qmatch

#endif  // QMATCH_COMMON_FILE_UTIL_H_
