#ifndef QMATCH_COMMON_FILE_UTIL_H_
#define QMATCH_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace qmatch {

/// Reads an entire file into a string. Fails with kIoError (including the
/// errno text) when the file cannot be opened or read.
Result<std::string> ReadFile(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, std::string_view contents);

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

}  // namespace qmatch

#endif  // QMATCH_COMMON_FILE_UTIL_H_
