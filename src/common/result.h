#ifndef QMATCH_COMMON_RESULT_H_
#define QMATCH_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace qmatch {

/// A Result<T> holds either a value of type T or a non-OK Status.
///
/// This is the value-returning counterpart of Status (analogous to
/// `arrow::Result` / `absl::StatusOr`). A Result is never in the
/// "OK status but no value" state.
///
/// Typical use:
/// ```
///   Result<Schema> r = ParseSchema(text);
///   if (!r.ok()) return r.status();
///   Schema s = std::move(r).value();
/// ```
template <typename T>
class Result {
 public:
  /// Constructs a Result holding `value`. Intentionally implicit so that
  /// functions returning Result<T> can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed Result from a non-OK status. Intentionally
  /// implicit so functions can `return Status::ParseError(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK() when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result failed.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ present
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), propagating failure; on success binds the
/// moved value to `lhs`.
#define QMATCH_ASSIGN_OR_RETURN(lhs, expr)              \
  QMATCH_ASSIGN_OR_RETURN_IMPL_(                        \
      QMATCH_CONCAT_(_qm_result_, __LINE__), lhs, expr)

#define QMATCH_CONCAT_INNER_(a, b) a##b
#define QMATCH_CONCAT_(a, b) QMATCH_CONCAT_INNER_(a, b)
#define QMATCH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace qmatch

#endif  // QMATCH_COMMON_RESULT_H_
