#ifndef QMATCH_COMMON_STATUS_H_
#define QMATCH_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace qmatch {

/// Error category carried by a Status. Mirrors the Arrow/RocksDB convention
/// of status-based error handling: no exceptions cross the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kParseError = 4,
  kIoError = 5,
  kOutOfRange = 6,
  kUnimplemented = 7,
  kInternal = 8,
  /// The request's deadline expired before the work completed; any partial
  /// result accompanying this status is a subset of the full answer.
  kDeadlineExceeded = 9,
  /// The request was cooperatively cancelled via a CancellationToken.
  kCancelled = 10,
  /// A resource limit (memory budget, input-size/node-count/depth cap) was
  /// hit before the work completed. The typed alternative to OOM: the
  /// request is rejected, the process survives.
  kResourceExhausted = 11,
  /// The system refused to admit the request because it is at capacity
  /// (admission queue full, or a circuit breaker is open). The request was
  /// shed before any work ran — retrying later may succeed.
  kOverloaded = 12,
  /// Persisted state is unrecoverable: a snapshot or journal failed its
  /// checksum/framing validation (bit rot, torn non-tail write, hostile
  /// bytes). Distinct from kIoError (the bytes could not be read at all)
  /// and never produced by a clean crash — a torn journal tail is
  /// truncated silently, not reported as loss.
  kDataLoss = 13,
  /// The service cannot take this request *here and now*: a standby or
  /// draining server rejecting mutating work, or a client that exhausted
  /// its endpoints. Unlike kOverloaded (a capacity verdict) this is a
  /// routing verdict — the same request sent to the current primary would
  /// be admitted. Always returned before any work ran, so retrying against
  /// another endpoint is safe for every request type.
  kUnavailable = 14,
};

/// Returns the canonical lower-case name of a status code ("parse error").
std::string_view StatusCodeToString(StatusCode code);

/// A Status is either OK or an (code, message) pair describing a failure.
///
/// Statuses are cheap to copy in the OK case and are returned by every
/// fallible operation in the library. Use the factory functions
/// (`Status::ParseError(...)` etc.) to construct failures, and
/// `QMATCH_RETURN_IF_ERROR` to propagate them.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering: "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// used to build parse-error breadcrumbs. OK statuses pass through.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status from the current function.
#define QMATCH_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::qmatch::Status _qm_status = (expr);     \
    if (!_qm_status.ok()) return _qm_status;  \
  } while (false)

}  // namespace qmatch

#endif  // QMATCH_COMMON_STATUS_H_
