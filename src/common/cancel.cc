#include "common/cancel.h"

namespace qmatch {

std::string_view StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

}  // namespace qmatch
