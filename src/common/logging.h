#ifndef QMATCH_COMMON_LOGGING_H_
#define QMATCH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace qmatch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: accumulates a message and emits it (to stderr) on
/// destruction. kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lets a ternary produce void from a streaming expression: `operator<<`
/// binds tighter than `&`, so `Voidify() & (msg << a << b)` evaluates the
/// whole stream chain and then discards it as void.
struct Voidify {
  void operator&(const LogMessage&) {}
  void operator&(const NullStream&) {}
};

}  // namespace internal

#define QMATCH_LOG(level)                                         \
  (::qmatch::LogLevel::k##level < ::qmatch::GetLogLevel())        \
      ? (void)0                                                   \
      : ::qmatch::internal::Voidify() &                           \
            ::qmatch::internal::LogMessage(                       \
                ::qmatch::LogLevel::k##level, __FILE__, __LINE__)

#define QMATCH_LOG_STREAM(level) \
  ::qmatch::internal::LogMessage(::qmatch::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check: always on (release included), aborts with message.
#define QMATCH_CHECK(cond)                              \
  (cond) ? (void)0                                      \
         : ::qmatch::internal::Voidify() &              \
               ::qmatch::internal::LogMessage(          \
                   ::qmatch::LogLevel::kFatal, __FILE__, __LINE__) \
                   << "Check failed: " #cond " "

#define QMATCH_DCHECK(cond) QMATCH_CHECK(cond)

}  // namespace qmatch

#endif  // QMATCH_COMMON_LOGGING_H_
