#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace qmatch {

ThreadPool::ThreadPool(size_t worker_count) {
  workers_.reserve(worker_count);
  for (size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::jthread& worker : workers_) worker.request_stop();
  cv_.notify_all();
  // jthread destructors join.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(const std::stop_token& stop) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested with nothing to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

/// Shared state of one ParallelFor call. Helpers copy the shared_ptr (and
/// the loop body), so a helper task that only gets scheduled after the
/// call has returned still touches valid memory — it sees `next >= n` and
/// exits without running anything.
struct ThreadPool::LoopState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t total = 0;
  std::function<void(size_t)> fn;
  std::mutex mutex;
  std::condition_variable cv;

  void Drain() {
    size_t finished = 0;
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      fn(i);
      ++finished;
    }
    if (finished == 0) return;
    const size_t completed =
        done.fetch_add(finished, std::memory_order_acq_rel) + finished;
    if (completed == total) {
      // Lock before notifying so the waiter cannot test the predicate
      // between our fetch_add and the notify and then sleep forever.
      std::lock_guard<std::mutex> lock(mutex);
      cv.notify_all();
    }
  }
};

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<LoopState>();
  state->total = n;
  state->fn = fn;
  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= state->total;
  });
}

}  // namespace qmatch
