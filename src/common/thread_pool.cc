#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "fault/failpoint.h"
#include "obs/obs.h"

namespace qmatch {

ThreadPool::ThreadPool(size_t worker_count) {
  workers_.reserve(worker_count);
  for (size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::jthread& worker : workers_) worker.request_stop();
  cv_.notify_all();
  workers_.clear();  // joins
  // With every worker joined there is no concurrency left: whatever is
  // still queued was never started, and the gauge accounting is exact.
  if (!queue_.empty()) {
    QMATCH_GAUGE_ADD("threadpool.queue_depth",
                     -static_cast<int64_t>(queue_.size()));
    queue_.clear();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  Task queued{std::move(task), 0};
  QMATCH_OBS_ONLY(queued.enqueue_ns = obs::MonotonicNowNs();)
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(queued));
  }
  QMATCH_GAUGE_ADD("threadpool.queue_depth", 1);
  QMATCH_COUNTER_ADD("threadpool.tasks_submitted", 1);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(const std::stop_token& stop) {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      // Exit on stop even with work queued: the destructor's contract is
      // that unstarted tasks are discarded (and it settles the gauge for
      // them after joining).
      if (stop.stop_requested() || queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QMATCH_GAUGE_ADD("threadpool.queue_depth", -1);
#if QMATCH_OBS_ENABLED
    const uint64_t start_ns = obs::MonotonicNowNs();
    QMATCH_HISTOGRAM_OBSERVE("threadpool.task_wait_ns",
                             start_ns - task.enqueue_ns);
#endif
    try {
      // Chaos hook: a kThrow action here exercises the containment path
      // below; for ParallelFor helper tasks the caller then drains the
      // helper's share itself, so no index is ever lost.
      QMATCH_FAILPOINT("threadpool.task");
      task.fn();
    } catch (...) {
      // Submit's contract says tasks should not throw; containing the
      // exception here (instead of std::terminate via jthread) keeps one
      // bad task from taking the process down. ParallelFor never reaches
      // this path — its Drain captures exceptions itself.
      QMATCH_COUNTER_ADD("threadpool.task_exceptions", 1);
    }
    QMATCH_HISTOGRAM_OBSERVE("threadpool.task_run_ns",
                             obs::MonotonicNowNs() - start_ns);
  }
}

/// Shared state of one ParallelFor call. Helpers copy the shared_ptr (and
/// the loop body), so a helper task that only gets scheduled after the
/// call has returned still touches valid memory — it sees `next >= n` and
/// exits without running anything.
struct ThreadPool::LoopState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t total = 0;
  std::function<void(size_t)> fn;
  std::mutex mutex;
  std::condition_variable cv;
  /// First exception thrown by any fn(i); rethrown on the calling thread.
  std::exception_ptr error;  // guarded by `mutex`

  void Drain() {
    size_t finished = 0;
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      ++finished;
    }
    if (finished == 0) return;
    const size_t completed =
        done.fetch_add(finished, std::memory_order_acq_rel) + finished;
    if (completed == total) {
      // Lock before notifying so the waiter cannot test the predicate
      // between our fetch_add and the notify and then sleep forever.
      std::lock_guard<std::mutex> lock(mutex);
      cv.notify_all();
    }
  }
};

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Sequential degradation keeps the full exception contract: every
    // index runs, the first exception is rethrown afterwards. Callers see
    // identical behaviour at any worker count.
    std::exception_ptr error;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) {
      QMATCH_COUNTER_ADD("threadpool.parallel_for_exceptions", 1);
      std::rethrow_exception(error);
    }
    return;
  }
  auto state = std::make_shared<LoopState>();
  state->total = n;
  state->fn = fn;
  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) >= state->total;
    });
    // Take the exception out of the shared state before rethrowing: a
    // helper's Task object (and with it the last LoopState reference) can
    // be destroyed on its worker thread after the caller has already
    // resumed, and the exception object must not be freed over there
    // while this thread is still reading e.what() from it.
    error = std::exchange(state->error, nullptr);
  }
  if (error) {
    QMATCH_COUNTER_ADD("threadpool.parallel_for_exceptions", 1);
    std::rethrow_exception(std::move(error));
  }
}

}  // namespace qmatch
