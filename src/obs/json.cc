#include "obs/json.h"

#include <cstdlib>

namespace qmatch::obs::json {

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

constexpr size_t kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Value> ParseDocument() {
    QMATCH_ASSIGN_OR_RETURN(Value value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Error("trailing content after JSON value");
    }
    return value;
  }

 private:
  Status Error(std::string_view what) const {
    return Status::ParseError("JSON: " + std::string(what) + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  Result<Value> ParseValue(size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    switch (Peek()) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        QMATCH_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return Value(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Value(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Value();
        return Error("invalid literal");
      default: return ParseNumber();
    }
  }

  bool ConsumeWord(std::string_view word) {
    if (input_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Result<Value> ParseObject(size_t depth) {
    Consume('{');
    Value::Object object;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(object));
    for (;;) {
      SkipWhitespace();
      if (Peek() != '"') return Error("expected object key string");
      QMATCH_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      QMATCH_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      object.insert_or_assign(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(object));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray(size_t depth) {
    Consume('[');
    Value::Array array;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(array));
    for (;;) {
      QMATCH_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(array));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    for (;;) {
      if (pos_ >= input_.size()) return Error("unterminated string");
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) return Error("unterminated escape");
      const char esc = input_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          QMATCH_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
          AppendUtf8(code, &out);
          break;
        }
        default: return Error("invalid escape");
      }
    }
  }

  Result<unsigned> ParseHex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= input_.size()) return Error("unterminated \\u escape");
      const char c = input_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    return code;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    // Surrogate pairs are not recombined — metric names are ASCII; a lone
    // BMP code point is encoded as-is.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      const bool number_char = (c >= '0' && c <= '9') || c == '.' ||
                               c == 'e' || c == 'E' || c == '+' || c == '-';
      if (!number_char) break;
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string text(input_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return Error("malformed number");
    return Value(value);
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

}  // namespace qmatch::obs::json
