#include "obs/obs.h"

#include "common/file_util.h"

namespace qmatch::obs {

std::string CombinedJson() {
  std::string out = "{\n\"obs_enabled\": ";
  out += QMATCH_OBS_ENABLED ? "true" : "false";
  out += ",\n\"metrics\": ";
  std::string metrics = Registry::Global().JsonText();
  // JsonText ends with a newline; splice it in as a nested value.
  while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
  out += metrics;
  out += ",\n\"spans\": ";
  std::string spans = Tracer::Global().StatsJson();
  while (!spans.empty() && spans.back() == '\n') spans.pop_back();
  out += spans;
  out += "\n}\n";
  return out;
}

bool CliSink::TryParse(std::string_view arg) {
  constexpr std::string_view kMetricsFlag = "--metrics-out=";
  constexpr std::string_view kTraceFlag = "--trace-out=";
  if (arg.substr(0, kMetricsFlag.size()) == kMetricsFlag) {
    metrics_path = std::string(arg.substr(kMetricsFlag.size()));
    return true;
  }
  if (arg.substr(0, kTraceFlag.size()) == kTraceFlag) {
    trace_path = std::string(arg.substr(kTraceFlag.size()));
    return true;
  }
  return false;
}

Status CliSink::Write() const {
  // Atomic replacement: a crash mid-export (or a concurrent scrape of the
  // output path) must never observe a half-written JSON document.
  if (!metrics_path.empty()) {
    QMATCH_RETURN_IF_ERROR(WriteFileAtomic(metrics_path, CombinedJson()));
  }
  if (!trace_path.empty()) {
    QMATCH_RETURN_IF_ERROR(
        WriteFileAtomic(trace_path, Tracer::Global().ChromeTraceJson()));
  }
  return Status::OK();
}

}  // namespace qmatch::obs
