#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace qmatch::obs {

size_t ThisThreadShard() {
  static std::atomic<size_t> next_id{0};
  thread_local const size_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id & (kMetricShards - 1);
}

// --- Histogram -----------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds,
                     std::string help)
    : name_(std::move(name)), help_(std::move(help)), bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (Shard& shard : shards_) {
    shard.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LatencyBoundsNs() {
  // 1us, 4us, ..., ~17s: covers everything from one table cell to a full
  // corpus batch in 13 buckets.
  return ExponentialBounds(1e3, 4.0, 13);
}

void Histogram::Observe(double value) noexcept {
  Shard& shard = shards_[ThisThreadShard()];
  // First bound >= value; everything above the last bound lands in the
  // overflow cell.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Scrape() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.bucket_counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < shard.buckets.size(); ++b) {
      snapshot.bucket_counts[b] +=
          shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

void Histogram::Reset() noexcept {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    for (std::atomic<uint64_t>& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

// --- Registry ------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name),
                                                std::string(help)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name),
                                              std::string(help)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::vector<double> bounds,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::LatencyBoundsNs();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name),
                                                  std::move(bounds),
                                                  std::string(help)))
             .first;
  }
  return *it->second;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<const Counter*> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.push_back(counter.get());
  return out;
}

std::vector<const Gauge*> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.push_back(gauge.get());
  return out;
}

std::vector<const Histogram*> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(histogram.get());
  }
  return out;
}

// --- Exporters -----------------------------------------------------------

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; dots become underscores.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// Formats a double the way JSON expects (no inf/nan — callers guarantee
/// finite values; bucket +Inf is spelled as a string elsewhere).
std::string Num(double value) {
  // %.17g round-trips doubles exactly and never produces a locale comma.
  return StrFormat("%.17g", value);
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Registry::PrometheusText() const {
  std::string out;
  for (const Counter* counter : counters()) {
    const std::string name = PromName(counter->name());
    if (!counter->help().empty()) {
      out += "# HELP " + name + " " + counter->help() + "\n";
    }
    out += "# TYPE " + name + " counter\n";
    out += name + " " + StrFormat("%llu", static_cast<unsigned long long>(
                                              counter->Value())) +
           "\n";
  }
  for (const Gauge* gauge : gauges()) {
    const std::string name = PromName(gauge->name());
    if (!gauge->help().empty()) {
      out += "# HELP " + name + " " + gauge->help() + "\n";
    }
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + StrFormat("%lld", static_cast<long long>(
                                              gauge->Value())) +
           "\n";
    out += name + "_max " +
           StrFormat("%lld", static_cast<long long>(gauge->Max())) + "\n";
  }
  for (const Histogram* histogram : histograms()) {
    const std::string name = PromName(histogram->name());
    if (!histogram->help().empty()) {
      out += "# HELP " + name + " " + histogram->help() + "\n";
    }
    out += "# TYPE " + name + " histogram\n";
    const Histogram::Snapshot snap = histogram->Scrape();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < snap.bounds.size(); ++b) {
      cumulative += snap.bucket_counts[b];
      out += name + "_bucket{le=\"" + Num(snap.bounds[b]) + "\"} " +
             StrFormat("%llu", static_cast<unsigned long long>(cumulative)) +
             "\n";
    }
    cumulative += snap.bucket_counts.back();
    out += name + "_bucket{le=\"+Inf\"} " +
           StrFormat("%llu", static_cast<unsigned long long>(cumulative)) +
           "\n";
    out += name + "_sum " + Num(snap.sum) + "\n";
    out += name + "_count " +
           StrFormat("%llu", static_cast<unsigned long long>(snap.count)) +
           "\n";
  }
  return out;
}

std::string Registry::JsonText() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const Counter* counter : counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(counter->name(), &out);
    out += ": " + StrFormat("%llu", static_cast<unsigned long long>(
                                        counter->Value()));
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const Gauge* gauge : gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(gauge->name(), &out);
    out += ": {\"value\": " +
           StrFormat("%lld", static_cast<long long>(gauge->Value())) +
           ", \"max\": " +
           StrFormat("%lld", static_cast<long long>(gauge->Max())) + "}";
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const Histogram* histogram : histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    const Histogram::Snapshot snap = histogram->Scrape();
    out += "    ";
    AppendJsonString(histogram->name(), &out);
    out += ": {\"count\": " +
           StrFormat("%llu", static_cast<unsigned long long>(snap.count)) +
           ", \"sum\": " + Num(snap.sum) + ", \"buckets\": [";
    for (size_t b = 0; b < snap.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": " + Num(snap.bounds[b]) + ", \"count\": " +
             StrFormat("%llu",
                       static_cast<unsigned long long>(snap.bucket_counts[b])) +
             "}";
    }
    out += "], \"inf_count\": " +
           StrFormat("%llu",
                     static_cast<unsigned long long>(snap.bucket_counts.back())) +
           "}";
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace qmatch::obs
