#ifndef QMATCH_OBS_TRACE_H_
#define QMATCH_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qmatch::obs {

/// Monotonic nanoseconds since an arbitrary process-local epoch.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One completed span. `name` must be a string literal (spans are recorded
/// on the hot path; no allocation per event).
struct TraceEvent {
  const char* name = "";
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t thread_id = 0;
  uint32_t depth = 0;  // nesting depth on the recording thread (0 = root)
  /// Up to two numeric annotations, exported as Chrome trace args.
  const char* arg_names[2] = {nullptr, nullptr};
  double arg_values[2] = {0.0, 0.0};
};

/// Aggregate across all completed spans with one name — survives ring
/// overwrites, so rates stay correct even when raw events are evicted.
struct SpanStats {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;
};

/// Process-wide span sink: a bounded ring buffer of raw TraceEvents (the
/// newest `capacity` spans; older ones are overwritten) plus per-name
/// aggregates that are never evicted. Recording takes one short mutex hold
/// — spans are coarse (whole parses, whole table fills, whole batches), so
/// the lock is uncontended in practice and trivially TSan-clean.
class Tracer {
 public:
  static Tracer& Global();

  explicit Tracer(size_t capacity = 65536);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Record(const TraceEvent& event);

  /// The retained raw events in recording order (oldest first).
  std::vector<TraceEvent> Events() const;

  /// Per-name aggregates over every span ever recorded.
  std::map<std::string, SpanStats> Stats() const;

  /// Total spans ever recorded (>= Events().size() once the ring wraps).
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

  void Clear();

  /// Chrome trace_event JSON ({"traceEvents": [...]}): load via
  /// chrome://tracing or https://ui.perfetto.dev. Timestamps/durations are
  /// microseconds as the format requires.
  std::string ChromeTraceJson() const;

  /// JSON object {"<name>": {"count": ..., "total_ns": ..., "max_ns": ...}}
  /// of the per-name aggregates (parseable by obs::json::Parse).
  std::string StatsJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  uint64_t next_ = 0;  // total recorded; next_ % capacity_ = write slot
  std::map<std::string, SpanStats> stats_;
};

/// RAII scoped span: records [construction, destruction) into a Tracer.
/// Nesting is tracked per thread, so child spans carry depth = parent + 1
/// and render nested in chrome://tracing.
class Span {
 public:
  explicit Span(const char* name) : Span(name, Tracer::Global()) {}
  Span(const char* name, Tracer& tracer);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric annotation (max 2; extras are dropped). `key` must
  /// be a string literal.
  void Arg(const char* key, double value);

 private:
  Tracer& tracer_;
  TraceEvent event_;
  size_t arg_count_ = 0;
};

}  // namespace qmatch::obs

#endif  // QMATCH_OBS_TRACE_H_
