#ifndef QMATCH_OBS_OBS_H_
#define QMATCH_OBS_OBS_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// Compile-time kill switch for every instrumentation hook in the library.
/// The build defines QMATCH_OBS_ENABLED=0 (cmake -DQMATCH_OBS=OFF) to
/// macro-noop all hooks: no registry lookups, no clock reads, no atomic
/// traffic — the instrumented call sites compile to nothing. The obs
/// classes themselves always compile (direct users keep working; only the
/// woven-in hooks disappear).
#ifndef QMATCH_OBS_ENABLED
#define QMATCH_OBS_ENABLED 1
#endif

#if QMATCH_OBS_ENABLED

/// Guards a statement (or declaration) that exists only for observability.
#define QMATCH_OBS_ONLY(...) __VA_ARGS__

/// Bumps the named process-wide counter. The registry lookup happens once
/// (function-local static); the steady state is one relaxed fetch_add on a
/// per-thread shard.
#define QMATCH_COUNTER_ADD(metric_name, delta)                        \
  do {                                                                \
    static ::qmatch::obs::Counter& _qm_obs_counter =                  \
        ::qmatch::obs::Registry::Global().GetCounter(metric_name);    \
    _qm_obs_counter.Add(static_cast<uint64_t>(delta));                \
  } while (0)

#define QMATCH_GAUGE_ADD(metric_name, delta)                          \
  do {                                                                \
    static ::qmatch::obs::Gauge& _qm_obs_gauge =                      \
        ::qmatch::obs::Registry::Global().GetGauge(metric_name);      \
    _qm_obs_gauge.Add(static_cast<int64_t>(delta));                   \
  } while (0)

#define QMATCH_GAUGE_SET(metric_name, value)                          \
  do {                                                                \
    static ::qmatch::obs::Gauge& _qm_obs_gauge =                      \
        ::qmatch::obs::Registry::Global().GetGauge(metric_name);      \
    _qm_obs_gauge.Set(static_cast<int64_t>(value));                   \
  } while (0)

/// Records one observation into the named histogram (default latency-ns
/// bucket layout).
#define QMATCH_HISTOGRAM_OBSERVE(metric_name, value)                  \
  do {                                                                \
    static ::qmatch::obs::Histogram& _qm_obs_histogram =              \
        ::qmatch::obs::Registry::Global().GetHistogram(metric_name);  \
    _qm_obs_histogram.Observe(static_cast<double>(value));            \
  } while (0)

/// Opens an RAII span named `var` covering the rest of the scope.
/// `span_name` must be a string literal.
#define QMATCH_SPAN(var, span_name) ::qmatch::obs::Span var(span_name)

/// Attaches a numeric annotation to a QMATCH_SPAN-declared span.
#define QMATCH_SPAN_ARG(var, key, value) \
  (var).Arg(key, static_cast<double>(value))

#else  // !QMATCH_OBS_ENABLED

#define QMATCH_OBS_ONLY(...)
#define QMATCH_COUNTER_ADD(metric_name, delta) \
  do {                                         \
  } while (0)
#define QMATCH_GAUGE_ADD(metric_name, delta) \
  do {                                       \
  } while (0)
#define QMATCH_GAUGE_SET(metric_name, value) \
  do {                                       \
  } while (0)
#define QMATCH_HISTOGRAM_OBSERVE(metric_name, value) \
  do {                                               \
  } while (0)
#define QMATCH_SPAN(var, span_name) \
  do {                              \
  } while (0)
#define QMATCH_SPAN_ARG(var, key, value) \
  do {                                   \
  } while (0)

#endif  // QMATCH_OBS_ENABLED

namespace qmatch::obs {

/// One JSON document combining the metric registry and the per-span-name
/// aggregates: {"obs_enabled": ..., "metrics": {...}, "spans": {...}}.
/// This is the payload `--metrics-out` writes; parseable by json::Parse.
std::string CombinedJson();

/// Command-line plumbing shared by bench_scaling / schema_search /
/// corpus_explorer: recognises
///   --metrics-out=<file>   write CombinedJson() at exit
///   --trace-out=<file>     write Tracer::ChromeTraceJson() at exit
struct CliSink {
  std::string metrics_path;
  std::string trace_path;

  /// Returns true (and records the path) when `arg` is one of the
  /// observability flags; callers drop consumed args from argv.
  bool TryParse(std::string_view arg);

  /// Writes whichever files were requested; returns the first error.
  Status Write() const;
};

}  // namespace qmatch::obs

#endif  // QMATCH_OBS_OBS_H_
