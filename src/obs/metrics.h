#ifndef QMATCH_OBS_METRICS_H_
#define QMATCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qmatch::obs {

/// Number of per-thread shards backing every Counter/Histogram. A power of
/// two so the shard pick is a mask, sized so that the handful of engine
/// threads rarely collide on a cache line.
inline constexpr size_t kMetricShards = 16;

/// Stable small integer id of the calling thread, used to pick a shard.
/// Assigned on first use from a process-wide sequence, so the first
/// kMetricShards threads get private shards.
size_t ThisThreadShard();

namespace internal {
/// One cache-line-padded atomic cell (the per-thread shard slot).
struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> value{0};
};
struct alignas(64) PaddedF64 {
  std::atomic<double> value{0.0};
};
}  // namespace internal

/// Monotonically increasing event count. `Add` is lock-free and wait-free
/// on the fast path: a relaxed fetch_add on the calling thread's shard;
/// shards are merged on scrape (`Value`). Safe to call from any thread.
class Counter {
 public:
  explicit Counter(std::string name, std::string help = "")
      : name_(std::move(name)), help_(std::move(help)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) noexcept {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }

  /// Merged total across shards. A racing Add may or may not be included —
  /// the usual scrape semantics.
  uint64_t Value() const noexcept {
    uint64_t total = 0;
    for (const internal::PaddedU64& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() noexcept {
    for (internal::PaddedU64& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::array<internal::PaddedU64, kMetricShards> shards_;
};

/// A value that can go up and down (queue depth, live entries). Single
/// atomic — gauges are updated orders of magnitude less often than the
/// counters on the match hot path. Tracks the high-water mark as well.
class Gauge {
 public:
  explicit Gauge(std::string name, std::string help = "")
      : name_(std::move(name)), help_(std::move(help)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
    UpdateMax(value);
  }

  void Add(int64_t delta = 1) noexcept {
    const int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) +
                        delta;
    if (delta > 0) UpdateMax(now);
  }

  void Sub(int64_t delta = 1) noexcept { Add(-delta); }

  int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// Highest value ever observed by Set/Add (never decreases).
  int64_t Max() const noexcept { return max_.load(std::memory_order_relaxed); }

  void Reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  void UpdateMax(int64_t candidate) noexcept {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::string name_;
  std::string help_;
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Distribution with fixed upper-bound buckets. `Observe` increments the
/// first bucket whose bound is >= the value (or the overflow cell) on the
/// calling thread's shard; count/sum/buckets are merged on scrape.
///
/// Bucket boundaries are fixed at construction and never change — the
/// exporter output for a given histogram is structurally stable across the
/// process lifetime, which is what lets scrapes be diffed.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; an implicit +Inf bucket is
  /// appended (the overflow cell).
  Histogram(std::string name, std::vector<double> bounds,
            std::string help = "");

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// `count` exponentially spaced bounds: start, start*factor, ... —
  /// the default shape for latency-in-nanoseconds histograms.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);
  /// The default latency scale: 1us .. ~17s in x4 steps (13 buckets).
  static std::vector<double> LatencyBoundsNs();

  void Observe(double value) noexcept;

  /// Merged snapshot of one scrape.
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;          // upper bounds, ascending
    std::vector<uint64_t> bucket_counts; // bounds.size() + 1 (last = +Inf)
  };
  Snapshot Scrape() const;

  void Reset() noexcept;

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;  // bounds.size() + 1
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Process-wide metric registry. `Get*` returns a stable reference that
/// lives as long as the process — call sites cache it in a function-local
/// static so the hot path never touches the registry lock:
///
/// ```
///   static obs::Counter& hits =
///       obs::Registry::Global().GetCounter("engine.cache.hits");
///   hits.Add();
/// ```
///
/// `ResetAll` zeroes values but never destroys metric objects, so cached
/// references stay valid (tests lean on this).
class Registry {
 public:
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(std::string_view name, std::string_view help = "");
  Gauge& GetGauge(std::string_view name, std::string_view help = "");
  /// Empty `bounds` means Histogram::LatencyBoundsNs(). If the histogram
  /// already exists, `bounds` is ignored (boundaries are fixed at birth).
  Histogram& GetHistogram(std::string_view name,
                          std::vector<double> bounds = {},
                          std::string_view help = "");

  void ResetAll();

  /// Prometheus text exposition format (counters, gauges + _max, histogram
  /// _bucket/_sum/_count series), names sanitised to [a-zA-Z0-9_:].
  std::string PrometheusText() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Guaranteed parseable by obs::json::Parse (tested round-trip).
  std::string JsonText() const;

  /// Sorted snapshot accessors for custom exporters.
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const Histogram*> histograms() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace qmatch::obs

#endif  // QMATCH_OBS_METRICS_H_
