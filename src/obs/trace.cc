#include "obs/trace.h"

#include <atomic>

#include "common/string_util.h"

namespace qmatch::obs {

namespace {

uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local const uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local uint32_t t_span_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all users
  return *tracer;
}

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_ % capacity_] = event;
  }
  ++next_;
  SpanStats& stats = stats_[event.name];
  ++stats.count;
  stats.total_ns += event.duration_ns;
  if (event.duration_ns > stats.max_ns) stats.max_ns = event.duration_ns;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) return ring_;
  // Ring is full: oldest event lives at the write cursor.
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  const size_t cursor = next_ % capacity_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(cursor + i) % capacity_]);
  }
  return out;
}

std::map<std::string, SpanStats> Tracer::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  stats_.clear();
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    // Complete ("X") events: ts/dur in fractional microseconds.
    out += StrFormat(
        " {\"name\": \"%s\", \"cat\": \"qmatch\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
        event.name, static_cast<double>(event.start_ns) / 1e3,
        static_cast<double>(event.duration_ns) / 1e3, event.thread_id);
    out += StrFormat(", \"args\": {\"depth\": %u", event.depth);
    for (size_t a = 0; a < 2; ++a) {
      if (event.arg_names[a] == nullptr) break;
      out += StrFormat(", \"%s\": %.17g", event.arg_names[a],
                       event.arg_values[a]);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::StatsJson() const {
  const std::map<std::string, SpanStats> stats = Stats();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, s] : stats) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "  \"%s\": {\"count\": %llu, \"total_ns\": %llu, \"max_ns\": %llu}",
        name.c_str(), static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.total_ns),
        static_cast<unsigned long long>(s.max_ns));
  }
  out += "\n}\n";
  return out;
}

Span::Span(const char* name, Tracer& tracer) : tracer_(tracer) {
  event_.name = name;
  event_.thread_id = ThisThreadTraceId();
  event_.depth = t_span_depth++;
  event_.start_ns = MonotonicNowNs();
}

Span::~Span() {
  event_.duration_ns = MonotonicNowNs() - event_.start_ns;
  --t_span_depth;
  tracer_.Record(event_);
}

void Span::Arg(const char* key, double value) {
  if (arg_count_ >= 2) return;
  event_.arg_names[arg_count_] = key;
  event_.arg_values[arg_count_] = value;
  ++arg_count_;
}

}  // namespace qmatch::obs
