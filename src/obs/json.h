#ifndef QMATCH_OBS_JSON_H_
#define QMATCH_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace qmatch::obs::json {

/// A parsed JSON value. Self-contained, zero-dependency — exists so the
/// observability exporters can be round-trip tested (and so tools can read
/// `--metrics-out` files back) without pulling in a JSON library.
///
/// Objects keep insertion order out of scope: they are std::map (sorted by
/// key), which is all the metric tooling needs.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value, std::less<>>;

  Value() : kind_(Kind::kNull) {}
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }

  /// Object member lookup; nullptr if this is not an object or the key is
  /// absent.
  const Value* Find(std::string_view key) const;

  /// `Find` chained through nested objects: Get("histograms", "xml.parse").
  template <typename... Keys>
  const Value* Get(std::string_view key, Keys... rest) const {
    const Value* v = Find(key);
    if constexpr (sizeof...(rest) == 0) {
      return v;
    } else {
      return v != nullptr ? v->Get(rest...) : nullptr;
    }
  }

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON text (RFC 8259: objects, arrays, strings with escapes
/// and \uXXXX, numbers, true/false/null). Trailing content after the value
/// is an error. Nesting depth is bounded (protects the recursive parser
/// from hostile input).
Result<Value> Parse(std::string_view input);

}  // namespace qmatch::obs::json

#endif  // QMATCH_OBS_JSON_H_
