#ifndef QMATCH_DATAGEN_GENERATOR_H_
#define QMATCH_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xsd/schema.h"

namespace qmatch::datagen {

/// Vocabulary domain for generated labels.
enum class Domain { kGeneric, kCommerce, kBibliographic, kProtein };

/// Parameters for the synthetic schema generator.
///
/// The generator exists because the paper's protein workloads (PIR, 231
/// elements / PDB, 3753 elements) and the XBench schemas are not
/// redistributable: we synthesise schemas with the same element counts,
/// depths and fan-out so the runtime experiment (Fig. 4) exercises the same
/// tree sizes, and derive matchable pairs via `Perturb` so quality
/// experiments have an exact gold standard (see DESIGN.md §5).
struct GeneratorOptions {
  /// Exact number of element nodes to produce (>= 1).
  size_t element_count = 100;
  /// Maximum tree depth in edges. The generator fills shallow levels first
  /// and guarantees at least one path reaches this depth when the node
  /// budget allows (depth+1 nodes needed).
  size_t max_depth = 5;
  size_t min_fanout = 2;
  size_t max_fanout = 8;
  /// Probability that an internal node also receives one attribute child.
  double attribute_probability = 0.0;
  Domain domain = Domain::kGeneric;
  uint64_t seed = 42;
  /// Display name of the produced schema.
  std::string name = "generated";
};

/// Deterministically generates a schema from the options. The same options
/// always produce the same tree.
xsd::Schema GenerateSchema(const GeneratorOptions& options);

/// The label vocabulary used for a domain (exposed for tests and for the
/// perturbation rename tables).
const std::vector<std::string>& DomainVocabulary(Domain domain);

}  // namespace qmatch::datagen

#endif  // QMATCH_DATAGEN_GENERATOR_H_
