#ifndef QMATCH_DATAGEN_DOCGEN_H_
#define QMATCH_DATAGEN_DOCGEN_H_

#include <cstdint>

#include "xml/dom.h"
#include "xsd/schema.h"

namespace qmatch::datagen {

/// Options for schema-to-instance generation.
struct DocGenOptions {
  uint64_t seed = 42;
  /// Occurrence count drawn uniformly from [minOccurs..max_repeat] for
  /// elements with maxOccurs unbounded (bounded elements respect their
  /// own maxOccurs, capped at max_repeat).
  int max_repeat = 3;
  /// Probability of emitting a node whose minOccurs is 0.
  double optional_probability = 0.7;
};

/// Generates an XML instance document conforming to `schema` — the inverse
/// of `xsd::InferSchema`, used to synthesise the "schemaless web document"
/// workloads of the paper's motivating scenario and to property-test the
/// inference path (infer(generate(S)) reconstructs S's structure).
///
/// Leaf values are drawn per the declared datatype (integers, decimals,
/// booleans, dates, years, URIs, words); `default`/`fixed` values are
/// honoured when present. Deterministic for a given seed.
xml::XmlDocument GenerateDocument(const xsd::Schema& schema,
                                  const DocGenOptions& options = {});

}  // namespace qmatch::datagen

#endif  // QMATCH_DATAGEN_DOCGEN_H_
