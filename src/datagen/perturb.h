#ifndef QMATCH_DATAGEN_PERTURB_H_
#define QMATCH_DATAGEN_PERTURB_H_

#include <cstdint>
#include <string>

#include "eval/gold.h"
#include "xsd/schema.h"

namespace qmatch::datagen {

/// Controlled mutations applied to a source schema to derive a matchable
/// target schema *with a known gold standard* — the substitution for
/// manually determined real matches on workloads too large to map by hand
/// (the paper itself calls the protein schemas "nearly impossible" to match
/// manually).
struct PerturbOptions {
  /// Probability of renaming a node to a thesaurus-relatable alternative
  /// (synonym / abbreviation / acronym). The pair remains in the gold set.
  double rename_prob = 0.35;
  /// Probability of renaming a node to unrelated noise. The node is still
  /// structurally the same, so it stays in the gold set, but linguistic
  /// matchers will miss it.
  double noise_rename_prob = 0.05;
  /// Probability of dropping a non-root subtree (removed from gold).
  double drop_prob = 0.08;
  /// Probability of inserting an extra (unmatched) leaf child under an
  /// internal node.
  double add_prob = 0.10;
  /// Probability of widening a leaf's type to an ancestor on the lattice
  /// (int -> integer), producing relaxed property matches.
  double retype_prob = 0.15;
  /// Probability of toggling a node's minOccurs between 0 and 1.
  double occurs_prob = 0.10;
  /// Shuffle the order of every node's children.
  bool shuffle_children = true;
  uint64_t seed = 7;
  /// Name for the derived schema; empty appends "-perturbed".
  std::string name;
};

/// Derives a perturbed copy of `source`. When `gold` is non-null it is
/// filled with the path pairs of all surviving nodes (source path ->
/// target path), i.e. the exact set of real matches R.
xsd::Schema Perturb(const xsd::Schema& source, const PerturbOptions& options,
                    eval::GoldStandard* gold);

/// Renaming dictionary used by Perturb: returns a thesaurus-relatable
/// alternative for `label` ("Quantity" -> "Qty", "PurchaseOrder" -> "PO"),
/// or an empty string when none is known.
std::string RelatedRename(const std::string& label, uint64_t salt);

}  // namespace qmatch::datagen

#endif  // QMATCH_DATAGEN_PERTURB_H_
