#include "datagen/generator.h"

#include <deque>
#include <map>
#include <set>
#include <memory>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace qmatch::datagen {

namespace {

const std::vector<std::string>& GenericVocab() {
  static const std::vector<std::string>& v = *new std::vector<std::string>{
      "Record",   "Entry",    "Group",   "Section",  "Field",   "Value",
      "Name",     "Code",     "Type",    "Status",   "Category", "Label",
      "Detail",   "Info",     "Data",    "Element",  "Property", "Attribute",
      "Note",     "Comment",  "Tag",     "Key",      "Index",    "Count",
      "Total",    "Level",    "Rank",    "Score",    "Flag",     "State",
  };
  return v;
}

const std::vector<std::string>& CommerceVocab() {
  static const std::vector<std::string>& v = *new std::vector<std::string>{
      "Order",    "Item",     "Product",  "Customer", "Vendor",   "Invoice",
      "Payment",  "Shipment", "Address",  "City",     "Country",  "Zip",
      "Price",    "Quantity", "Discount", "Tax",      "Subtotal", "Total",
      "Currency", "Catalog",  "Category", "Brand",    "Model",    "Warranty",
      "Stock",    "Warehouse", "Carrier", "Tracking", "Delivery", "Contact",
  };
  return v;
}

const std::vector<std::string>& BibliographicVocab() {
  static const std::vector<std::string>& v = *new std::vector<std::string>{
      "Book",     "Article",  "Journal",  "Title",     "Author",   "Editor",
      "Publisher", "Edition", "Volume",   "Issue",     "Page",     "Chapter",
      "Abstract", "Keyword",  "Subject",  "Language",  "Rights",   "Format",
      "Identifier", "Isbn",   "Year",     "Citation",  "Reference", "Series",
      "Contributor", "Coverage", "Source", "Relation", "Description", "Type",
  };
  return v;
}

const std::vector<std::string>& ProteinVocab() {
  static const std::vector<std::string>& v = *new std::vector<std::string>{
      "Protein",   "Entry",     "Sequence",  "Residue",   "Chain",
      "Organism",  "Species",   "Taxonomy",  "Gene",      "Accession",
      "Reference", "Citation",  "Author",    "Journal",   "Feature",
      "Domain",    "Motif",     "Site",      "Position",  "Length",
      "Weight",    "Function",  "Keyword",   "Annotation", "Structure",
      "Atom",      "Helix",     "Sheet",     "Turn",      "Ligand",
      "Method",    "Resolution", "Cell",     "Crystal",   "Source",
      "Database",  "Version",   "Date",      "Classification", "Molecule",
  };
  return v;
}

xsd::XsdType PickLeafType(Random& rng) {
  static constexpr xsd::XsdType kLeafTypes[] = {
      xsd::XsdType::kString,  xsd::XsdType::kString,  // strings dominate
      xsd::XsdType::kString,  xsd::XsdType::kInt,
      xsd::XsdType::kInteger, xsd::XsdType::kDecimal,
      xsd::XsdType::kDate,    xsd::XsdType::kBoolean,
      xsd::XsdType::kDouble,  xsd::XsdType::kAnyUri,
  };
  return kLeafTypes[rng.Uniform(std::size(kLeafTypes))];
}

}  // namespace

const std::vector<std::string>& DomainVocabulary(Domain domain) {
  switch (domain) {
    case Domain::kGeneric:
      return GenericVocab();
    case Domain::kCommerce:
      return CommerceVocab();
    case Domain::kBibliographic:
      return BibliographicVocab();
    case Domain::kProtein:
      return ProteinVocab();
  }
  return GenericVocab();
}

xsd::Schema GenerateSchema(const GeneratorOptions& options) {
  QMATCH_CHECK(options.element_count >= 1) << "need at least a root";
  QMATCH_CHECK(options.min_fanout >= 1 && options.max_fanout >= options.min_fanout);

  Random rng(options.seed);
  const std::vector<std::string>& vocab = DomainVocabulary(options.domain);

  auto root = std::make_unique<xsd::SchemaNode>(
      options.name.empty() ? "Root" : options.name, xsd::NodeKind::kElement);
  root->set_compositor(xsd::Compositor::kSequence);

  size_t elements = 1;
  size_t label_counter = 0;
  // Sibling labels must be unique: duplicate sibling declarations make the
  // content model ambiguous (the XSD "unique particle attribution" rule)
  // and break validation/inference round trips.
  std::map<const xsd::SchemaNode*, std::set<std::string>> used_labels;
  auto next_label = [&](xsd::SchemaNode* parent, size_t depth) {
    std::set<std::string>& used = used_labels[parent];
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::string& word = vocab[rng.Uniform(vocab.size())];
      ++label_counter;
      std::string candidate =
          (label_counter <= vocab.size() && depth < 2 && attempt == 0)
              ? word
              : word + StrFormat("%zu", rng.Uniform(97) + 1);
      if (used.insert(candidate).second) return candidate;
    }
    // Deterministic fallback, guaranteed fresh.
    std::string fallback = StrFormat("Node%zu", label_counter);
    used.insert(fallback);
    return fallback;
  };

  // Frontier of expandable nodes with their depths.
  struct Slot {
    xsd::SchemaNode* node;
    size_t depth;
  };
  std::deque<Slot> frontier;
  frontier.push_back({root.get(), 0});

  // First carve one spine to max_depth so the requested depth is reached.
  {
    xsd::SchemaNode* current = root.get();
    for (size_t d = 1; d <= options.max_depth && elements < options.element_count;
         ++d) {
      auto child = std::make_unique<xsd::SchemaNode>(
          next_label(current, d), xsd::NodeKind::kElement);
      child->set_compositor(xsd::Compositor::kSequence);
      xsd::SchemaNode* borrowed = current->AddChild(std::move(child));
      ++elements;
      if (d < options.max_depth) frontier.push_back({borrowed, d});
      current = borrowed;
    }
  }

  while (elements < options.element_count && !frontier.empty()) {
    Slot slot = frontier.front();
    frontier.pop_front();
    size_t fanout = options.min_fanout +
                    rng.Uniform(options.max_fanout - options.min_fanout + 1);
    for (size_t k = 0; k < fanout && elements < options.element_count; ++k) {
      auto child = std::make_unique<xsd::SchemaNode>(
          next_label(slot.node, slot.depth + 1), xsd::NodeKind::kElement);
      child->set_compositor(xsd::Compositor::kSequence);
      // Occasionally make elements optional or repeating.
      if (rng.Bernoulli(0.2)) child->set_occurs(xsd::Occurs{0, 1});
      if (rng.Bernoulli(0.15)) {
        child->set_occurs(xsd::Occurs{1, xsd::Occurs::kUnbounded});
      }
      xsd::SchemaNode* borrowed = slot.node->AddChild(std::move(child));
      ++elements;
      if (slot.depth + 1 < options.max_depth) {
        frontier.push_back({borrowed, slot.depth + 1});
      }
    }
    if (options.attribute_probability > 0.0 &&
        rng.Bernoulli(options.attribute_probability)) {
      auto attr = std::make_unique<xsd::SchemaNode>(
          next_label(slot.node, slot.depth + 1) + "Id",
          xsd::NodeKind::kAttribute);
      attr->set_type(xsd::XsdType::kId);
      attr->set_occurs(xsd::Occurs{0, 1});
      slot.node->AddChild(std::move(attr));
    }
  }

  // Type the leaves; interior nodes stay anyType (pure structure).
  {
    std::vector<xsd::SchemaNode*> stack = {root.get()};
    while (!stack.empty()) {
      xsd::SchemaNode* node = stack.back();
      stack.pop_back();
      if (node->IsLeaf() && node->kind() == xsd::NodeKind::kElement) {
        node->set_type(PickLeafType(rng));
      }
      for (size_t i = 0; i < node->child_count(); ++i) {
        stack.push_back(node->child(i));
      }
    }
  }

  xsd::Schema schema(options.name, std::move(root));
  return schema;
}

}  // namespace qmatch::datagen
