#ifndef QMATCH_DATAGEN_CORPUS_H_
#define QMATCH_DATAGEN_CORPUS_H_

#include <functional>
#include <string>
#include <vector>

#include "eval/gold.h"
#include "xsd/schema.h"

namespace qmatch::datagen {

// ---------------------------------------------------------------------------
// The paper's test schemas (Table 1), rebuilt from the figures and the
// descriptions in the text. Element counts follow Table 1:
//   PO1 10 / PO2 9 / Article 18 / Book 6 / DCMDItem 38 / DCMDOrd 53 /
//   PIR 231 / PDB 3753.
// ---------------------------------------------------------------------------

/// Fig. 1: the PO schema (10 elements, depth 3).
xsd::Schema MakePO1();
/// Fig. 2: the Purchase Order schema (9 elements).
xsd::Schema MakePO2();
/// PO1 as XSD text, to exercise the parser path end-to-end.
std::string PO1Xsd();
/// PO2 as XSD text.
std::string PO2Xsd();

/// Bibliographic domain: Article (18 elements) and Book (6 elements).
xsd::Schema MakeArticle();
xsd::Schema MakeBook();

/// Dublin-Core-style metadata domain: DCMDItem (38) and DCMDOrder (53).
xsd::Schema MakeDcmdItem();
xsd::Schema MakeDcmdOrder();

/// Fig. 7 / Fig. 8: the structurally identical but linguistically disjoint
/// Library and Human schemas of the Section 5 extreme-case experiment.
xsd::Schema MakeLibrary();
xsd::Schema MakeHuman();

/// XBench-style e-commerce schemas (catalog and order), standing in for the
/// XBench benchmark workload (Fig. 6's Xbench(M) task).
xsd::Schema MakeXBenchCatalog();
xsd::Schema MakeXBenchOrder();

/// Protein-domain schemas at the paper's scales: PIR-style (231 elements,
/// depth 6) and PDB-style (3753 elements, depth 7). The PDB schema embeds a
/// perturbed copy of the PIR entry structure so a gold standard exists by
/// construction (see GoldProtein / DESIGN.md §5).
xsd::Schema MakePir();
xsd::Schema MakePdb();

// --- Manually determined real matches R per match task --------------------

eval::GoldStandard GoldPO();       // PO1 -> PO2 (from the paper's Section 2)
eval::GoldStandard GoldBooks();    // Article -> Book
eval::GoldStandard GoldDcmd();     // DCMDItem -> DCMDOrder
eval::GoldStandard GoldXBench();   // XBenchCatalog -> XBenchOrder
eval::GoldStandard GoldProtein();  // Pir -> Pdb (by construction)

// --- Registry --------------------------------------------------------------

struct CorpusEntry {
  std::string name;
  std::function<xsd::Schema()> make;
};

/// All corpus schemas by name (for the corpus_explorer example and tests).
const std::vector<CorpusEntry>& Corpus();

/// A named match task: two schemas plus their gold standard.
struct MatchTask {
  std::string name;                       // "PO", "Books", ...
  std::function<xsd::Schema()> source;
  std::function<xsd::Schema()> target;
  std::function<eval::GoldStandard()> gold;
};

/// The paper's evaluation tasks (PO, Books, DCMD, XBench, Protein).
const std::vector<MatchTask>& Tasks();

}  // namespace qmatch::datagen

#endif  // QMATCH_DATAGEN_CORPUS_H_
