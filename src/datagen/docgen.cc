#include "datagen/docgen.h"

#include <memory>

#include "common/random.h"
#include "common/string_util.h"

namespace qmatch::datagen {

namespace {

const char* const kWords[] = {
    "alpha", "beta",  "gamma", "delta",  "omega",  "vector",
    "tensor", "probe", "sample", "widget", "gadget", "fixture",
};

std::string ValueForType(xsd::XsdType type, Random& rng) {
  using xsd::XsdType;
  switch (xsd::PrimitiveAncestor(type)) {
    case XsdType::kDecimal: {
      // Integer family stays integral; decimal and friends get a fraction.
      if (xsd::IsAncestorType(XsdType::kInteger, type) ||
          type == XsdType::kInteger) {
        // Avoid 4-digit values, which the inferrer reads as gYear.
        return StrFormat("%d", static_cast<int>(rng.Uniform(900)) + 10000);
      }
      return StrFormat("%d.%02d", static_cast<int>(rng.Uniform(500)),
                       static_cast<int>(rng.Uniform(100)));
    }
    case XsdType::kBoolean:
      return rng.Bernoulli(0.5) ? "true" : "false";
    case XsdType::kDate:
      return StrFormat("20%02d-%02d-%02d", static_cast<int>(rng.Uniform(30)),
                       static_cast<int>(rng.Uniform(12)) + 1,
                       static_cast<int>(rng.Uniform(28)) + 1);
    case XsdType::kDateTime:
      return StrFormat("20%02d-%02d-%02dT%02d:%02d:%02d",
                       static_cast<int>(rng.Uniform(30)),
                       static_cast<int>(rng.Uniform(12)) + 1,
                       static_cast<int>(rng.Uniform(28)) + 1,
                       static_cast<int>(rng.Uniform(24)),
                       static_cast<int>(rng.Uniform(60)),
                       static_cast<int>(rng.Uniform(60)));
    case XsdType::kGYear:
      return StrFormat("%d", 1900 + static_cast<int>(rng.Uniform(130)));
    case XsdType::kGYearMonth:
      return StrFormat("20%02d-%02d", static_cast<int>(rng.Uniform(30)),
                       static_cast<int>(rng.Uniform(12)) + 1);
    case XsdType::kTime:
      return StrFormat("%02d:%02d:%02d", static_cast<int>(rng.Uniform(24)),
                       static_cast<int>(rng.Uniform(60)),
                       static_cast<int>(rng.Uniform(60)));
    case XsdType::kAnyUri:
      return "http://example.com/" +
             std::string(kWords[rng.Uniform(std::size(kWords))]);
    case XsdType::kFloat:
    case XsdType::kDouble:
      return StrFormat("%d.%d", static_cast<int>(rng.Uniform(100)),
                       static_cast<int>(rng.Uniform(10)));
    default:
      return std::string(kWords[rng.Uniform(std::size(kWords))]) + " " +
             std::string(kWords[rng.Uniform(std::size(kWords))]);
  }
}

std::string LeafValue(const xsd::SchemaNode& node, Random& rng) {
  if (node.fixed_value().has_value()) return *node.fixed_value();
  if (node.default_value().has_value() && rng.Bernoulli(0.5)) {
    return *node.default_value();
  }
  return ValueForType(node.type(), rng);
}

void Emit(const xsd::SchemaNode& node, xml::XmlElement* parent,
          const DocGenOptions& options, Random& rng) {
  if (node.kind() == xsd::NodeKind::kAttribute) {
    if (node.occurs().min == 0 &&
        !rng.Bernoulli(options.optional_probability)) {
      return;
    }
    parent->SetAttribute(node.label(), LeafValue(node, rng));
    return;
  }

  int lo = node.occurs().min;
  if (lo == 0) {
    if (!rng.Bernoulli(options.optional_probability)) return;
    lo = 1;
  }
  int hi = node.occurs().unbounded()
               ? options.max_repeat
               : std::min(node.occurs().max, options.max_repeat);
  if (hi < lo) hi = lo;
  int count = lo + static_cast<int>(rng.Uniform(
                       static_cast<uint64_t>(hi - lo) + 1));

  for (int k = 0; k < count; ++k) {
    xml::XmlElement* element = parent->AddChildElement(node.label());
    if (node.IsLeaf()) {
      element->AddText(LeafValue(node, rng));
      continue;
    }
    for (const auto& child : node.children()) {
      Emit(*child, element, options, rng);
    }
  }
}

}  // namespace

xml::XmlDocument GenerateDocument(const xsd::Schema& schema,
                                  const DocGenOptions& options) {
  xml::XmlDocument doc;
  if (schema.root() == nullptr) return doc;
  Random rng(options.seed);

  auto root = std::make_unique<xml::XmlElement>(schema.root()->label());
  if (schema.root()->IsLeaf()) {
    root->AddText(LeafValue(*schema.root(), rng));
  } else {
    for (const auto& child : schema.root()->children()) {
      Emit(*child, root.get(), options, rng);
    }
  }
  doc.set_root(std::move(root));
  return doc;
}

}  // namespace qmatch::datagen
