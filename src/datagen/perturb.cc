#include "datagen/perturb.h"

#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace qmatch::datagen {

namespace {

/// Alternatives that the default thesaurus can relate back to the key, so a
/// rename stays discoverable by the linguistic matcher (as a synonym,
/// abbreviation or acronym -> exact or relaxed label match).
const std::map<std::string, std::vector<std::string>>& RenameTable() {
  static const auto& table = *new std::map<std::string, std::vector<std::string>>{
      {"quantity", {"Qty"}},
      {"number", {"No", "Num"}},
      {"amount", {"Amt"}},
      {"description", {"Desc"}},
      {"address", {"Addr"}},
      {"information", {"Info"}},
      {"identifier", {"Id", "Key"}},
      {"reference", {"Ref"}},
      {"sequence", {"Seq", "Chain"}},
      {"organism", {"Species"}},
      {"taxonomy", {"Classification"}},
      {"citation", {"Reference"}},
      {"author", {"Writer", "Creator"}},
      {"item", {"Product", "Article"}},
      {"customer", {"Client", "Buyer"}},
      {"vendor", {"Supplier", "Seller"}},
      {"price", {"Cost"}},
      {"telephone", {"Phone", "Tel"}},
      {"category", {"Cat"}},
      {"entry", {"Record"}},
      {"function", {"Activity"}},
      {"structure", {"Conformation"}},
      {"annotation", {"Note"}},
      {"motif", {"Pattern"}},
      {"site", {"Position"}},
      {"length", {"Size"}},
      {"weight", {"Mass"}},
      {"protein", {"Polypeptide"}},
      {"keyword", {"Term"}},
      {"subject", {"Topic"}},
      {"abstract", {"Summary"}},
      {"book", {"Volume"}},
      {"journal", {"Periodical"}},
      {"publisher", {"Press"}},
      {"company", {"Firm", "Organization"}},
      {"state", {"Province"}},
      {"comment", {"Remark", "Note"}},
      {"type", {"Kind"}},
      {"code", {"Identifier"}},
  };
  return table;
}

xsd::XsdType WidenType(xsd::XsdType type) {
  xsd::XsdType base = xsd::BaseType(type);
  // Don't widen past useful simple types.
  if (base == xsd::XsdType::kAnySimpleType || base == xsd::XsdType::kAnyType) {
    return type;
  }
  return base;
}

struct PerturbContext {
  const PerturbOptions* options;
  Random* rng;
  // Source node -> target node for surviving nodes, to emit gold pairs.
  std::vector<std::pair<const xsd::SchemaNode*, const xsd::SchemaNode*>> kept;
  int noise_counter = 0;
};

std::unique_ptr<xsd::SchemaNode> PerturbNode(const xsd::SchemaNode& src,
                                             PerturbContext& ctx) {
  Random& rng = *ctx.rng;
  const PerturbOptions& opt = *ctx.options;

  std::string label = src.label();
  if (rng.Bernoulli(opt.rename_prob)) {
    std::string renamed = RelatedRename(label, rng.Next());
    if (!renamed.empty()) label = renamed;
  } else if (rng.Bernoulli(opt.noise_rename_prob)) {
    label = StrFormat("X%d%s", ++ctx.noise_counter, "Node");
  }

  auto copy = std::make_unique<xsd::SchemaNode>(label, src.kind());
  copy->set_compositor(src.compositor());
  copy->set_nillable(src.nillable());

  xsd::XsdType type = src.type();
  if (type != xsd::XsdType::kUnknown && rng.Bernoulli(opt.retype_prob)) {
    type = WidenType(type);
  }
  copy->set_type(type, src.type_name());

  xsd::Occurs occurs = src.occurs();
  if (rng.Bernoulli(opt.occurs_prob)) {
    occurs.min = occurs.min == 0 ? 1 : 0;
  }
  copy->set_occurs(occurs);

  ctx.kept.push_back({&src, copy.get()});

  std::vector<std::unique_ptr<xsd::SchemaNode>> new_children;
  for (const auto& child : src.children()) {
    if (rng.Bernoulli(opt.drop_prob)) continue;  // drop subtree
    new_children.push_back(PerturbNode(*child, ctx));
  }
  if (!src.IsLeaf() && rng.Bernoulli(opt.add_prob)) {
    auto extra = std::make_unique<xsd::SchemaNode>(
        StrFormat("Extra%d", ++ctx.noise_counter), src.kind());
    extra->set_type(xsd::XsdType::kString);
    new_children.push_back(std::move(extra));
  }
  if (opt.shuffle_children) {
    rng.Shuffle(new_children);
  }
  for (auto& child : new_children) {
    copy->AddChild(std::move(child));
  }
  return copy;
}

}  // namespace

std::string RelatedRename(const std::string& label, uint64_t salt) {
  // Look the whole lower-cased label up; fall back to the last camel-case
  // word ("PurchaseDate" -> "date").
  std::string lower = ToLower(label);
  const auto& table = RenameTable();
  auto it = table.find(lower);
  if (it == table.end()) {
    // Try the final word of a camel-case label.
    size_t split = label.size();
    while (split > 0 && !IsAsciiUpper(label[split - 1])) --split;
    if (split > 0 && split < label.size()) {
      std::string tail = ToLower(label.substr(split - 1));
      it = table.find(tail);
      if (it != table.end()) {
        const std::string& alt = it->second[salt % it->second.size()];
        return label.substr(0, split - 1) + alt;
      }
    }
    return std::string();
  }
  return it->second[salt % it->second.size()];
}

xsd::Schema Perturb(const xsd::Schema& source, const PerturbOptions& options,
                    eval::GoldStandard* gold) {
  Random rng(options.seed);
  PerturbContext ctx{&options, &rng, {}, 0};

  std::unique_ptr<xsd::SchemaNode> root;
  if (source.root() != nullptr) {
    root = PerturbNode(*source.root(), ctx);
  }
  xsd::Schema derived(
      options.name.empty() ? source.name() + "-perturbed" : options.name,
      std::move(root));
  derived.set_target_namespace(source.target_namespace());

  if (gold != nullptr) {
    for (const auto& [src_node, tgt_node] : ctx.kept) {
      gold->Add(src_node->Path(), tgt_node->Path());
    }
  }
  return derived;
}

}  // namespace qmatch::datagen
