#include "datagen/corpus.h"

#include <memory>

#include "datagen/generator.h"
#include "datagen/perturb.h"
#include "xsd/builder.h"

namespace qmatch::datagen {

using xsd::Occurs;
using xsd::SchemaBuilder;
using xsd::SchemaNode;
using xsd::XsdType;

// ---------------------------------------------------------------------------
// Purchase-order domain (paper Figures 1 and 2)
// ---------------------------------------------------------------------------

xsd::Schema MakePO1() {
  SchemaBuilder b("PO1");
  SchemaNode* po = b.Root("PO");
  b.Element(po, "OrderNo", XsdType::kInt);
  SchemaNode* info = b.Element(po, "PurchaseInfo");
  b.Element(info, "BillingAddr", XsdType::kString);
  b.Element(info, "ShippingAddr", XsdType::kString);
  SchemaNode* lines = b.Element(info, "Lines");
  b.Element(lines, "Item", XsdType::kString);
  b.Element(lines, "Quantity", XsdType::kInt);
  b.Element(lines, "UnitOfMeasure", XsdType::kString);
  b.Element(po, "PurchaseDate", XsdType::kDate);
  return std::move(b).Build();
}

xsd::Schema MakePO2() {
  SchemaBuilder b("PO2");
  SchemaNode* po = b.Root("PurchaseOrder");
  b.Element(po, "OrderNo", XsdType::kInt);
  b.Element(po, "BillTo", XsdType::kString);
  b.Element(po, "ShipTo", XsdType::kString);
  SchemaNode* items = b.Element(po, "Items");
  b.Element(items, "ItemNo", XsdType::kString);
  b.Element(items, "Qty", XsdType::kInt);
  b.Element(items, "UOM", XsdType::kString);
  b.Element(po, "Date", XsdType::kDate);
  return std::move(b).Build();
}

std::string PO1Xsd() {
  return R"(<?xml version="1.0" encoding="UTF-8"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderNo" type="xs:int"/>
        <xs:element name="PurchaseInfo">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="BillingAddr" type="xs:string"/>
              <xs:element name="ShippingAddr" type="xs:string"/>
              <xs:element name="Lines">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="Item" type="xs:string"/>
                    <xs:element name="Quantity" type="xs:int"/>
                    <xs:element name="UnitOfMeasure" type="xs:string"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="PurchaseDate" type="xs:date"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
)";
}

std::string PO2Xsd() {
  return R"(<?xml version="1.0" encoding="UTF-8"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderNo" type="xs:int"/>
        <xs:element name="BillTo" type="xs:string"/>
        <xs:element name="ShipTo" type="xs:string"/>
        <xs:element name="Items">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="ItemNo" type="xs:string"/>
              <xs:element name="Qty" type="xs:int"/>
              <xs:element name="UOM" type="xs:string"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Date" type="xs:date"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
)";
}

eval::GoldStandard GoldPO() {
  eval::GoldStandard gold;
  gold.Add("/PO", "/PurchaseOrder");
  gold.Add("/PO/OrderNo", "/PurchaseOrder/OrderNo");
  gold.Add("/PO/PurchaseDate", "/PurchaseOrder/Date");
  gold.Add("/PO/PurchaseInfo", "/PurchaseOrder");
  gold.Add("/PO/PurchaseInfo/BillingAddr", "/PurchaseOrder/BillTo");
  gold.Add("/PO/PurchaseInfo/ShippingAddr", "/PurchaseOrder/ShipTo");
  gold.Add("/PO/PurchaseInfo/Lines", "/PurchaseOrder/Items");
  gold.Add("/PO/PurchaseInfo/Lines/Item", "/PurchaseOrder/Items/ItemNo");
  gold.Add("/PO/PurchaseInfo/Lines/Quantity", "/PurchaseOrder/Items/Qty");
  gold.Add("/PO/PurchaseInfo/Lines/UnitOfMeasure", "/PurchaseOrder/Items/UOM");
  return gold;
}

// ---------------------------------------------------------------------------
// Bibliographic domain (Article vs Book)
// ---------------------------------------------------------------------------

xsd::Schema MakeArticle() {
  SchemaBuilder b("Article");
  SchemaNode* article = b.Root("Article");
  b.Element(article, "Title", XsdType::kString);
  SchemaNode* authors = b.Element(article, "Authors");
  SchemaNode* author =
      b.Element(authors, "Author", XsdType::kAnyType, {1, Occurs::kUnbounded});
  b.Element(author, "FirstName", XsdType::kString);
  b.Element(author, "LastName", XsdType::kString);
  SchemaNode* journal = b.Element(article, "Journal");
  b.Element(journal, "JournalName", XsdType::kString);
  b.Element(journal, "Volume", XsdType::kInt);
  b.Element(journal, "Issue", XsdType::kInt);
  b.Element(article, "Abstract", XsdType::kString);
  SchemaNode* keywords = b.Element(article, "Keywords");
  b.Element(keywords, "Keyword", XsdType::kString, {0, Occurs::kUnbounded});
  b.Element(article, "Year", XsdType::kGYear);
  SchemaNode* pages = b.Element(article, "Pages");
  b.Element(pages, "StartPage", XsdType::kInt);
  b.Element(pages, "EndPage", XsdType::kInt);
  b.Element(article, "DOI", XsdType::kString);
  return std::move(b).Build();
}

xsd::Schema MakeBook() {
  SchemaBuilder b("Book");
  SchemaNode* book = b.Root("Book");
  b.Element(book, "Title", XsdType::kString);
  SchemaNode* author = b.Element(book, "Author");
  b.Element(author, "Name", XsdType::kString);
  b.Element(book, "Publisher", XsdType::kString);
  b.Element(book, "Year", XsdType::kGYear);
  return std::move(b).Build();
}

eval::GoldStandard GoldBooks() {
  eval::GoldStandard gold;
  gold.Add("/Article", "/Book");
  gold.Add("/Article/Title", "/Book/Title");
  gold.Add("/Article/Authors", "/Book/Author");
  gold.Add("/Article/Authors/Author", "/Book/Author");
  gold.Add("/Article/Authors/Author/FirstName", "/Book/Author/Name");
  gold.Add("/Article/Authors/Author/LastName", "/Book/Author/Name");
  gold.Add("/Article/Year", "/Book/Year");
  return gold;
}

// ---------------------------------------------------------------------------
// Dublin-Core-style metadata domain (DCMDItem vs DCMDOrder)
// ---------------------------------------------------------------------------

xsd::Schema MakeDcmdItem() {
  SchemaBuilder b("DCMDItem");
  SchemaNode* item = b.Root("DCMDItem");
  b.Element(item, "Identifier", XsdType::kString);
  b.Element(item, "Title", XsdType::kString);
  b.Element(item, "Subject", XsdType::kString);
  b.Element(item, "Description", XsdType::kString);
  b.Element(item, "Type", XsdType::kString);
  b.Element(item, "Format", XsdType::kString);
  b.Element(item, "Language", XsdType::kLanguage);
  b.Element(item, "Rights", XsdType::kString);
  b.Element(item, "Coverage", XsdType::kString);
  b.Element(item, "Source", XsdType::kString);
  SchemaNode* creator = b.Element(item, "Creator");
  b.Element(creator, "Name", XsdType::kString);
  b.Element(creator, "Email", XsdType::kString);
  b.Element(creator, "Organization", XsdType::kString);
  SchemaNode* contributor = b.Element(item, "Contributor");
  b.Element(contributor, "Name", XsdType::kString);
  b.Element(contributor, "Role", XsdType::kString);
  SchemaNode* publisher = b.Element(item, "Publisher");
  b.Element(publisher, "Name", XsdType::kString);
  b.Element(publisher, "Address", XsdType::kString);
  b.Element(publisher, "Country", XsdType::kString);
  SchemaNode* dates = b.Element(item, "Dates");
  b.Element(dates, "Created", XsdType::kDate);
  b.Element(dates, "Modified", XsdType::kDate);
  b.Element(dates, "Issued", XsdType::kDate);
  SchemaNode* relation = b.Element(item, "Relation");
  b.Element(relation, "IsPartOf", XsdType::kString);
  b.Element(relation, "References", XsdType::kString);
  SchemaNode* info = b.Element(item, "ItemInfo");
  b.Element(info, "Quantity", XsdType::kInt);
  b.Element(info, "Price", XsdType::kDecimal);
  b.Element(info, "Weight", XsdType::kDecimal);
  b.Element(info, "Dimensions", XsdType::kString);
  b.Element(info, "Color", XsdType::kString);
  b.Element(info, "Material", XsdType::kString);
  b.Element(info, "Category", XsdType::kString);
  b.Element(info, "Barcode", XsdType::kString);
  return std::move(b).Build();
}

xsd::Schema MakeDcmdOrder() {
  SchemaBuilder b("DCMDOrder");
  SchemaNode* order = b.Root("DCMDOrder");
  b.Element(order, "OrderId", XsdType::kString);
  b.Element(order, "OrderDate", XsdType::kDate);
  b.Element(order, "Status", XsdType::kString);
  b.Element(order, "Currency", XsdType::kString);
  b.Element(order, "Channel", XsdType::kString);
  b.Element(order, "Notes", XsdType::kString);
  SchemaNode* customer = b.Element(order, "Customer");
  b.Element(customer, "CustomerId", XsdType::kString);
  b.Element(customer, "Name", XsdType::kString);
  b.Element(customer, "Email", XsdType::kString);
  b.Element(customer, "Phone", XsdType::kString);
  SchemaNode* cust_addr = b.Element(customer, "Address");
  b.Element(cust_addr, "Street", XsdType::kString);
  b.Element(cust_addr, "City", XsdType::kString);
  b.Element(cust_addr, "State", XsdType::kString);
  b.Element(cust_addr, "Zip", XsdType::kString);
  b.Element(cust_addr, "Country", XsdType::kString);
  SchemaNode* billing = b.Element(order, "Billing");
  b.Element(billing, "Method", XsdType::kString);
  b.Element(billing, "CardNumber", XsdType::kString);
  b.Element(billing, "Expiry", XsdType::kGYearMonth);
  SchemaNode* bill_addr = b.Element(billing, "BillingAddress");
  b.Element(bill_addr, "Street", XsdType::kString);
  b.Element(bill_addr, "City", XsdType::kString);
  b.Element(bill_addr, "State", XsdType::kString);
  b.Element(bill_addr, "Zip", XsdType::kString);
  b.Element(bill_addr, "Country", XsdType::kString);
  SchemaNode* shipping = b.Element(order, "Shipping");
  b.Element(shipping, "Carrier", XsdType::kString);
  b.Element(shipping, "TrackingNumber", XsdType::kString);
  b.Element(shipping, "ShipDate", XsdType::kDate);
  b.Element(shipping, "DeliveryDate", XsdType::kDate);
  SchemaNode* ship_addr = b.Element(shipping, "ShippingAddress");
  b.Element(ship_addr, "Street", XsdType::kString);
  b.Element(ship_addr, "City", XsdType::kString);
  b.Element(ship_addr, "State", XsdType::kString);
  b.Element(ship_addr, "Zip", XsdType::kString);
  b.Element(ship_addr, "Country", XsdType::kString);
  SchemaNode* items = b.Element(order, "Items");
  SchemaNode* item =
      b.Element(items, "Item", XsdType::kAnyType, {1, Occurs::kUnbounded});
  b.Element(item, "ItemId", XsdType::kString);
  b.Element(item, "Title", XsdType::kString);
  b.Element(item, "Description", XsdType::kString);
  b.Element(item, "Quantity", XsdType::kInt);
  b.Element(item, "Price", XsdType::kDecimal);
  b.Element(item, "Format", XsdType::kString);
  SchemaNode* summary = b.Element(order, "Summary");
  b.Element(summary, "Subtotal", XsdType::kDecimal);
  b.Element(summary, "Tax", XsdType::kDecimal);
  b.Element(summary, "ShippingCost", XsdType::kDecimal);
  b.Element(summary, "Discount", XsdType::kDecimal);
  b.Element(summary, "Total", XsdType::kDecimal);
  return std::move(b).Build();
}

eval::GoldStandard GoldDcmd() {
  eval::GoldStandard gold;
  gold.Add("/DCMDItem", "/DCMDOrder");
  gold.Add("/DCMDItem/ItemInfo", "/DCMDOrder/Items/Item");
  gold.Add("/DCMDItem/Identifier", "/DCMDOrder/Items/Item/ItemId");
  gold.Add("/DCMDItem/Title", "/DCMDOrder/Items/Item/Title");
  gold.Add("/DCMDItem/Description", "/DCMDOrder/Items/Item/Description");
  gold.Add("/DCMDItem/Format", "/DCMDOrder/Items/Item/Format");
  gold.Add("/DCMDItem/ItemInfo/Quantity", "/DCMDOrder/Items/Item/Quantity");
  gold.Add("/DCMDItem/ItemInfo/Price", "/DCMDOrder/Items/Item/Price");
  gold.Add("/DCMDItem/Creator/Name", "/DCMDOrder/Customer/Name");
  gold.Add("/DCMDItem/Creator/Email", "/DCMDOrder/Customer/Email");
  gold.Add("/DCMDItem/Publisher/Address", "/DCMDOrder/Customer/Address");
  gold.Add("/DCMDItem/Publisher/Country",
           "/DCMDOrder/Customer/Address/Country");
  return gold;
}

// ---------------------------------------------------------------------------
// Library vs Human (paper Figures 7 and 8): identical structure, disjoint
// vocabulary.
// ---------------------------------------------------------------------------

xsd::Schema MakeLibrary() {
  SchemaBuilder b("Library");
  SchemaNode* library = b.Root("Library");
  SchemaNode* book = b.Element(library, "Book");
  b.Element(book, "Number", XsdType::kString);
  b.Element(book, "Character", XsdType::kString);
  b.Element(book, "Writer", XsdType::kString);
  b.Element(library, "Title", XsdType::kString);
  return std::move(b).Build();
}

xsd::Schema MakeHuman() {
  SchemaBuilder b("Human");
  SchemaNode* human = b.Root("Human");
  SchemaNode* body = b.Element(human, "Body");
  b.Element(body, "Head", XsdType::kString);
  b.Element(body, "Hands", XsdType::kString);
  b.Element(body, "Legs", XsdType::kString);
  b.Element(human, "Man", XsdType::kString);
  return std::move(b).Build();
}

// ---------------------------------------------------------------------------
// XBench-style e-commerce schemas
// ---------------------------------------------------------------------------

xsd::Schema MakeXBenchCatalog() {
  SchemaBuilder b("XBenchCatalog");
  SchemaNode* catalog = b.Root("Catalog");
  b.Element(catalog, "CatalogId", XsdType::kString);
  SchemaNode* items = b.Element(catalog, "Items");
  SchemaNode* item =
      b.Element(items, "Item", XsdType::kAnyType, {1, Occurs::kUnbounded});
  b.Element(item, "ItemId", XsdType::kString);
  b.Element(item, "Title", XsdType::kString);
  b.Element(item, "Description", XsdType::kString);
  b.Element(item, "Price", XsdType::kDecimal);
  b.Element(item, "Currency", XsdType::kString);
  b.Element(item, "Stock", XsdType::kInt);
  b.Element(item, "Category", XsdType::kString);
  b.Element(item, "Brand", XsdType::kString);
  SchemaNode* publisher = b.Element(item, "Publisher");
  b.Element(publisher, "Name", XsdType::kString);
  SchemaNode* pub_addr = b.Element(publisher, "Address");
  b.Element(pub_addr, "Street", XsdType::kString);
  b.Element(pub_addr, "City", XsdType::kString);
  b.Element(pub_addr, "Zip", XsdType::kString);
  b.Element(pub_addr, "Country", XsdType::kString);
  b.Element(publisher, "Phone", XsdType::kString);
  SchemaNode* authors = b.Element(item, "Authors");
  SchemaNode* author =
      b.Element(authors, "Author", XsdType::kAnyType, {0, Occurs::kUnbounded});
  b.Element(author, "FirstName", XsdType::kString);
  b.Element(author, "LastName", XsdType::kString);
  b.Element(author, "Bio", XsdType::kString);
  SchemaNode* attributes = b.Element(item, "Attributes");
  b.Element(attributes, "Weight", XsdType::kDecimal);
  b.Element(attributes, "Dimensions", XsdType::kString);
  b.Element(attributes, "Color", XsdType::kString);
  return std::move(b).Build();
}

xsd::Schema MakeXBenchOrder() {
  SchemaBuilder b("XBenchOrder");
  SchemaNode* orders = b.Root("Orders");
  SchemaNode* order =
      b.Element(orders, "Order", XsdType::kAnyType, {1, Occurs::kUnbounded});
  b.Element(order, "OrderId", XsdType::kString);
  b.Element(order, "OrderDate", XsdType::kDate);
  b.Element(order, "Status", XsdType::kString);
  b.Element(order, "Total", XsdType::kDecimal);
  SchemaNode* customer = b.Element(order, "Customer");
  b.Element(customer, "CustomerId", XsdType::kString);
  b.Element(customer, "FirstName", XsdType::kString);
  b.Element(customer, "LastName", XsdType::kString);
  b.Element(customer, "Email", XsdType::kString);
  b.Element(customer, "Phone", XsdType::kString);
  SchemaNode* address = b.Element(customer, "Address");
  b.Element(address, "Street", XsdType::kString);
  b.Element(address, "City", XsdType::kString);
  b.Element(address, "Zip", XsdType::kString);
  b.Element(address, "Country", XsdType::kString);
  SchemaNode* lines = b.Element(order, "OrderLines");
  SchemaNode* line =
      b.Element(lines, "Line", XsdType::kAnyType, {1, Occurs::kUnbounded});
  b.Element(line, "ItemId", XsdType::kString);
  b.Element(line, "Title", XsdType::kString);
  b.Element(line, "Qty", XsdType::kInt);
  b.Element(line, "UnitPrice", XsdType::kDecimal);
  b.Element(line, "Discount", XsdType::kDecimal);
  return std::move(b).Build();
}

eval::GoldStandard GoldXBench() {
  eval::GoldStandard gold;
  gold.Add("/Catalog", "/Orders");
  gold.Add("/Catalog/Items", "/Orders/Order/OrderLines");
  gold.Add("/Catalog/Items/Item", "/Orders/Order/OrderLines/Line");
  gold.Add("/Catalog/Items/Item/ItemId",
           "/Orders/Order/OrderLines/Line/ItemId");
  gold.Add("/Catalog/Items/Item/Title", "/Orders/Order/OrderLines/Line/Title");
  gold.Add("/Catalog/Items/Item/Price",
           "/Orders/Order/OrderLines/Line/UnitPrice");
  gold.Add("/Catalog/Items/Item/Publisher/Phone",
           "/Orders/Order/Customer/Phone");
  gold.Add("/Catalog/Items/Item/Publisher/Address",
           "/Orders/Order/Customer/Address");
  gold.Add("/Catalog/Items/Item/Publisher/Address/Street",
           "/Orders/Order/Customer/Address/Street");
  gold.Add("/Catalog/Items/Item/Publisher/Address/City",
           "/Orders/Order/Customer/Address/City");
  gold.Add("/Catalog/Items/Item/Publisher/Address/Zip",
           "/Orders/Order/Customer/Address/Zip");
  gold.Add("/Catalog/Items/Item/Publisher/Address/Country",
           "/Orders/Order/Customer/Address/Country");
  gold.Add("/Catalog/Items/Item/Authors/Author/FirstName",
           "/Orders/Order/Customer/FirstName");
  gold.Add("/Catalog/Items/Item/Authors/Author/LastName",
           "/Orders/Order/Customer/LastName");
  return gold;
}

// ---------------------------------------------------------------------------
// Protein domain at the paper's scale (PIR 231 / PDB 3753 elements)
// ---------------------------------------------------------------------------

namespace {

struct ProteinData {
  xsd::Schema pir;
  xsd::Schema pdb;
  eval::GoldStandard gold;
};

ProteinData BuildProteinData() {
  GeneratorOptions pir_options;
  pir_options.element_count = 231;
  pir_options.max_depth = 6;
  pir_options.min_fanout = 2;
  pir_options.max_fanout = 6;
  pir_options.domain = Domain::kProtein;
  pir_options.seed = 1001;
  pir_options.name = "PIR";
  xsd::Schema pir = GenerateSchema(pir_options);

  // PDB embeds a recognisably perturbed PIR entry (the shared protein
  // vocabulary both databases describe) plus a large amount of structure
  // PIR does not have — crystallographic data, atoms, etc. — generated as
  // filler to reach the paper's 3753 elements at depth 7.
  PerturbOptions perturb;
  perturb.rename_prob = 0.35;
  perturb.noise_rename_prob = 0.04;
  perturb.drop_prob = 0.06;
  perturb.add_prob = 0.08;
  perturb.retype_prob = 0.15;
  perturb.seed = 2002;
  perturb.name = "PIR-in-PDB";
  eval::GoldStandard raw_gold;
  xsd::Schema embedded = Perturb(pir, perturb, &raw_gold);

  auto pdb_root = std::make_unique<SchemaNode>("PDB", xsd::NodeKind::kElement);
  pdb_root->set_compositor(xsd::Compositor::kSequence);
  pdb_root->AddChild(embedded.TakeRoot());
  size_t used = 1 + pdb_root->child(0)->SubtreeSize();

  GeneratorOptions filler_options;
  filler_options.element_count = 3753 > used ? 3753 - used : 1;
  filler_options.max_depth = 6;
  filler_options.min_fanout = 3;
  filler_options.max_fanout = 9;
  filler_options.domain = Domain::kProtein;
  filler_options.seed = 3003;
  filler_options.name = "Crystallography";
  xsd::Schema filler = GenerateSchema(filler_options);
  pdb_root->AddChild(filler.TakeRoot());

  xsd::Schema pdb("PDB", std::move(pdb_root));

  // The perturbed copy was re-rooted one level down; prefix target paths.
  eval::GoldStandard gold;
  for (const auto& [source_path, target_path] : raw_gold.pairs()) {
    gold.Add(source_path, "/PDB" + target_path);
  }
  return ProteinData{std::move(pir), std::move(pdb), std::move(gold)};
}

const ProteinData& GetProteinData() {
  static const ProteinData& data = *new ProteinData(BuildProteinData());
  return data;
}

}  // namespace

xsd::Schema MakePir() { return GetProteinData().pir.Clone(); }
xsd::Schema MakePdb() { return GetProteinData().pdb.Clone(); }
eval::GoldStandard GoldProtein() { return GetProteinData().gold; }

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

const std::vector<CorpusEntry>& Corpus() {
  static const auto& entries = *new std::vector<CorpusEntry>{
      {"PO1", MakePO1},
      {"PO2", MakePO2},
      {"Article", MakeArticle},
      {"Book", MakeBook},
      {"DCMDItem", MakeDcmdItem},
      {"DCMDOrder", MakeDcmdOrder},
      {"Library", MakeLibrary},
      {"Human", MakeHuman},
      {"XBenchCatalog", MakeXBenchCatalog},
      {"XBenchOrder", MakeXBenchOrder},
      {"PIR", MakePir},
      {"PDB", MakePdb},
  };
  return entries;
}

const std::vector<MatchTask>& Tasks() {
  static const auto& tasks = *new std::vector<MatchTask>{
      {"PO", MakePO1, MakePO2, GoldPO},
      {"Books", MakeArticle, MakeBook, GoldBooks},
      {"DCMD", MakeDcmdItem, MakeDcmdOrder, GoldDcmd},
      {"XBench", MakeXBenchCatalog, MakeXBenchOrder, GoldXBench},
      {"Protein", MakePir, MakePdb, GoldProtein},
  };
  return tasks;
}

}  // namespace qmatch::datagen
