#include "eval/metrics.h"

#include "common/string_util.h"

namespace qmatch::eval {

std::string QualityMetrics::ToString() const {
  return StrFormat(
      "R=%zu P=%zu I=%zu F=%zu M=%zu | precision=%.3f recall=%.3f "
      "overall=%.3f f1=%.3f",
      real, returned, true_positives, false_positives, missed, precision,
      recall, overall, f1);
}

QualityMetrics Evaluate(const MatchResult& result, const GoldStandard& gold) {
  QualityMetrics metrics;
  metrics.real = gold.size();
  metrics.returned = result.correspondences.size();
  for (const Correspondence& c : result.correspondences) {
    if (gold.Contains(c.source->Path(), c.target->Path())) {
      ++metrics.true_positives;
    }
  }
  metrics.false_positives = metrics.returned - metrics.true_positives;
  metrics.missed = metrics.real - std::min(metrics.real, metrics.true_positives);

  if (metrics.returned > 0) {
    metrics.precision = static_cast<double>(metrics.true_positives) /
                        static_cast<double>(metrics.returned);
  }
  if (metrics.real > 0) {
    metrics.recall = static_cast<double>(metrics.true_positives) /
                     static_cast<double>(metrics.real);
    metrics.overall =
        1.0 - static_cast<double>(metrics.false_positives + metrics.missed) /
                  static_cast<double>(metrics.real);
  }
  if (metrics.precision + metrics.recall > 0.0) {
    metrics.f1 = 2.0 * metrics.precision * metrics.recall /
                 (metrics.precision + metrics.recall);
  }
  return metrics;
}

}  // namespace qmatch::eval
