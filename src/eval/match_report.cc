#include "eval/match_report.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"
#include "eval/metrics.h"
#include "xsd/stats.h"

namespace qmatch::eval {

namespace {

void AppendSchemaSection(const xsd::Schema& schema, std::string_view role,
                         std::string& out) {
  xsd::SchemaStats stats = xsd::ComputeStats(schema);
  out += StrFormat("### %s schema: `%s`\n\n",
                   std::string(role).c_str(), schema.name().c_str());
  out += StrFormat(
      "| nodes | elements | attributes | leaves | max depth | avg fanout "
      "|\n|---|---|---|---|---|---|\n| %zu | %zu | %zu | %zu | %zu | %.2f "
      "|\n\n",
      stats.node_count, stats.element_count, stats.attribute_count,
      stats.leaf_count, stats.max_depth, stats.average_fanout);
}

}  // namespace

std::string RenderMatchReport(const xsd::Schema& source,
                              const xsd::Schema& target,
                              const MatchResult& result,
                              const GoldStandard* gold,
                              const MatchReportOptions& options) {
  std::string out;
  out += StrFormat("# Match report: %s vs %s\n\n", source.name().c_str(),
                   target.name().c_str());
  out += StrFormat("algorithm: **%s** — schema QoM **%.4f** — %zu "
                   "correspondences\n\n",
                   result.algorithm.c_str(), result.schema_qom,
                   result.correspondences.size());

  if (options.include_stats) {
    AppendSchemaSection(source, "source", out);
    AppendSchemaSection(target, "target", out);
  }

  // Ranked correspondence table.
  std::vector<const Correspondence*> sorted;
  sorted.reserve(result.correspondences.size());
  for (const Correspondence& c : result.correspondences) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(),
            [](const Correspondence* a, const Correspondence* b) {
              return a->score > b->score;
            });

  out += "### Correspondences\n\n";
  out += gold != nullptr ? "| source | target | score | gold |\n|---|---|---|---|\n"
                         : "| source | target | score |\n|---|---|---|\n";
  size_t rows = 0;
  for (const Correspondence* c : sorted) {
    if (rows++ >= options.max_rows) {
      out += StrFormat("| ... %zu more rows elided ... |\n",
                       sorted.size() - options.max_rows);
      break;
    }
    if (gold != nullptr) {
      bool hit = gold->Contains(c->source->Path(), c->target->Path());
      out += StrFormat("| `%s` | `%s` | %.4f | %s |\n",
                       c->source->Path().c_str(), c->target->Path().c_str(),
                       c->score, hit ? "✓" : "✗ false positive");
    } else {
      out += StrFormat("| `%s` | `%s` | %.4f |\n", c->source->Path().c_str(),
                       c->target->Path().c_str(), c->score);
    }
  }
  out += '\n';

  if (gold != nullptr) {
    QualityMetrics metrics = Evaluate(result, *gold);
    out += "### Quality vs gold standard\n\n";
    out += StrFormat(
        "| R | P | I | F | M | precision | recall | overall | f1 |\n"
        "|---|---|---|---|---|---|---|---|---|\n"
        "| %zu | %zu | %zu | %zu | %zu | %.3f | %.3f | %.3f | %.3f |\n\n",
        metrics.real, metrics.returned, metrics.true_positives,
        metrics.false_positives, metrics.missed, metrics.precision,
        metrics.recall, metrics.overall, metrics.f1);
    // List the misses, the post-match work a human must do.
    if (metrics.missed > 0) {
      out += "missed real matches:\n\n";
      for (const auto& [s, t] : gold->pairs()) {
        if (!result.Contains(s, t)) {
          out += StrFormat("- `%s` -> `%s`\n", s.c_str(), t.c_str());
        }
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace qmatch::eval
