#ifndef QMATCH_EVAL_METRICS_H_
#define QMATCH_EVAL_METRICS_H_

#include <string>

#include "eval/gold.h"
#include "match/matcher.h"

namespace qmatch::eval {

/// The match-quality measures of Section 5, computed from the real matches
/// R, the returned matches P, the true positives I = P ∩ R, false positives
/// F = P \ I and missed matches M = R \ I:
///
///   Precision = |I| / |P|
///   Recall    = |I| / |R|
///   Overall   = 1 - (|F| + |M|)/|R| = Recall · (2 - 1/Precision)
///
/// Overall can be negative when more than half the returned matches are
/// wrong — the post-match correction effort exceeds doing it by hand.
struct QualityMetrics {
  size_t real = 0;            // |R|
  size_t returned = 0;        // |P|
  size_t true_positives = 0;  // |I|
  size_t false_positives = 0; // |F|
  size_t missed = 0;          // |M|
  double precision = 0.0;
  double recall = 0.0;
  double overall = 0.0;
  double f1 = 0.0;

  std::string ToString() const;
};

/// Scores a match result against a gold standard by path-pair identity.
QualityMetrics Evaluate(const MatchResult& result, const GoldStandard& gold);

}  // namespace qmatch::eval

#endif  // QMATCH_EVAL_METRICS_H_
