#ifndef QMATCH_EVAL_GOLD_H_
#define QMATCH_EVAL_GOLD_H_

#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "match/matcher.h"

namespace qmatch::eval {

/// A manually determined set of real matches `R` for a match task
/// (Section 5): pairs of node paths (source -> target).
class GoldStandard {
 public:
  GoldStandard() = default;

  /// Adds one real match; duplicate pairs are ignored.
  void Add(std::string_view source_path, std::string_view target_path);

  bool Contains(std::string_view source_path,
                std::string_view target_path) const;

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  const std::set<std::pair<std::string, std::string>>& pairs() const {
    return pairs_;
  }

  /// Parses the line-oriented text format:
  ///   # comment
  ///   /PO/OrderNo -> /PurchaseOrder/OrderNo
  /// Blank lines are skipped; fails on lines without the arrow.
  static Result<GoldStandard> Parse(std::string_view text);

  /// Serialises back to the text format (sorted).
  std::string ToString() const;

  /// Builds a gold standard from a match result's correspondences — the
  /// "run, hand-correct, reuse as R" workflow (save with ToString()).
  static GoldStandard FromMatchResult(const MatchResult& result);

 private:
  std::set<std::pair<std::string, std::string>> pairs_;
};

}  // namespace qmatch::eval

#endif  // QMATCH_EVAL_GOLD_H_
