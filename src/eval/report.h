#ifndef QMATCH_EVAL_REPORT_H_
#define QMATCH_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace qmatch::eval {

/// A fixed-width text table used by the benchmark harnesses to print the
/// paper's tables and figure series in a stable, diffable layout.
class TextTable {
 public:
  /// `columns` are the header labels; the first column is left-aligned,
  /// the rest right-aligned.
  explicit TextTable(std::vector<std::string> columns);

  /// Adds a row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> cells);

  /// Renders with a separator rule under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals ("0.473").
std::string Num(double value, int digits = 3);

}  // namespace qmatch::eval

#endif  // QMATCH_EVAL_REPORT_H_
