#include "eval/rank.h"

#include <algorithm>

namespace qmatch::eval {

std::vector<RankEntry> RankSchemas(
    const Matcher& matcher, const xsd::Schema& query,
    const std::vector<const xsd::Schema*>& candidates) {
  std::vector<RankEntry> entries;
  entries.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    MatchResult result = matcher.Match(query, *candidates[i]);
    entries.push_back({i, result.schema_qom, result.correspondences.size()});
  }
  std::sort(entries.begin(), entries.end(),
            [](const RankEntry& a, const RankEntry& b) {
              if (a.schema_qom != b.schema_qom) {
                return a.schema_qom > b.schema_qom;
              }
              if (a.correspondence_count != b.correspondence_count) {
                return a.correspondence_count > b.correspondence_count;
              }
              return a.index < b.index;
            });
  return entries;
}

}  // namespace qmatch::eval
