#ifndef QMATCH_EVAL_RANK_H_
#define QMATCH_EVAL_RANK_H_

#include <vector>

#include "match/matcher.h"

namespace qmatch::eval {

/// One candidate's rank against a query schema.
struct RankEntry {
  size_t index = 0;                 // position in the candidates vector
  double schema_qom = 0.0;          // the matcher's schema-level score
  size_t correspondence_count = 0;  // node mappings found
};

/// Ranks candidate schemas by how well they match `query` — the paper's
/// motivating retrieval scenario ("the schema of the query must be matched
/// with the schema of the XML documents", Section 1). Returns entries
/// sorted by descending schema QoM, ties broken by correspondence count
/// then by index (stable).
std::vector<RankEntry> RankSchemas(
    const Matcher& matcher, const xsd::Schema& query,
    const std::vector<const xsd::Schema*>& candidates);

}  // namespace qmatch::eval

#endif  // QMATCH_EVAL_RANK_H_
