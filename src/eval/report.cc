#include "eval/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace qmatch::eval {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += "  ";
      const std::string& cell = row[c];
      size_t pad = widths[c] - cell.size();
      if (c == 0) {
        out += cell;
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cell;
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(columns_, out);
  size_t rule = 0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Num(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace qmatch::eval
