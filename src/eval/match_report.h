#ifndef QMATCH_EVAL_MATCH_REPORT_H_
#define QMATCH_EVAL_MATCH_REPORT_H_

#include <string>

#include "eval/gold.h"
#include "match/matcher.h"

namespace qmatch::eval {

/// Options for report rendering.
struct MatchReportOptions {
  /// Cap on the correspondence rows included (largest scores first).
  size_t max_rows = 200;
  /// Include the per-schema shape statistics section.
  bool include_stats = true;
};

/// Renders a self-contained Markdown report of one match run: the two
/// schemas' shape statistics, the ranked correspondence table, and — when
/// a gold standard is supplied — the quality metrics with per-pair
/// true/false-positive annotations. This is the artifact a human reviewer
/// signs off on before using a mapping for integration.
std::string RenderMatchReport(const xsd::Schema& source,
                              const xsd::Schema& target,
                              const MatchResult& result,
                              const GoldStandard* gold = nullptr,
                              const MatchReportOptions& options = {});

}  // namespace qmatch::eval

#endif  // QMATCH_EVAL_MATCH_REPORT_H_
