#include "eval/gold.h"

#include "common/string_util.h"

namespace qmatch::eval {

void GoldStandard::Add(std::string_view source_path,
                       std::string_view target_path) {
  pairs_.emplace(std::string(source_path), std::string(target_path));
}

bool GoldStandard::Contains(std::string_view source_path,
                            std::string_view target_path) const {
  return pairs_.count({std::string(source_path), std::string(target_path)}) >
         0;
}

Result<GoldStandard> GoldStandard::Parse(std::string_view text) {
  GoldStandard gold;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    size_t arrow = line.find("->");
    if (arrow == std::string_view::npos) {
      return Status::ParseError(
          StrFormat("gold standard line %zu: missing '->'", line_number));
    }
    std::string_view lhs = Trim(line.substr(0, arrow));
    std::string_view rhs = Trim(line.substr(arrow + 2));
    if (lhs.empty() || rhs.empty()) {
      return Status::ParseError(
          StrFormat("gold standard line %zu: empty path", line_number));
    }
    gold.Add(lhs, rhs);
  }
  return gold;
}

GoldStandard GoldStandard::FromMatchResult(const MatchResult& result) {
  GoldStandard gold;
  for (const Correspondence& c : result.correspondences) {
    gold.Add(c.source->Path(), c.target->Path());
  }
  return gold;
}

std::string GoldStandard::ToString() const {
  std::string out;
  for (const auto& [source, target] : pairs_) {
    out += source;
    out += " -> ";
    out += target;
    out += '\n';
  }
  return out;
}

}  // namespace qmatch::eval
