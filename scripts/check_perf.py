#!/usr/bin/env python3
"""Perf regression gate: google-benchmark JSON on stdin vs checked-in baselines.

Usage:
  ./build/bench/bench_fig4_runtime --benchmark_format=json \
      | python3 scripts/check_perf.py bench/baselines.json
  ... | python3 scripts/check_perf.py --update bench/baselines.json

Fails (exit 1) when any benchmark's real_time exceeds its baseline by more
than the relative threshold (default 15%) plus a small absolute slack that
keeps sub-millisecond rows from tripping on scheduler noise. Benchmarks
missing a baseline fail too — a new row must be recorded, not silently
ungated. Speedups never fail; rerun with --update to ratchet them in.

--update merges the measured rows into the existing baseline file (it
never drops rows it did not measure), so several bench binaries can share
one baselines.json: each bench's run updates only its own rows.
"""

import argparse
import json
import sys

REL_THRESHOLD = 0.15   # fail above baseline * (1 + REL_THRESHOLD) ...
ABS_SLACK_MS = 0.10    # ... + ABS_SLACK_MS (noise floor for tiny rows)

UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def rows_ms(report):
    out = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = UNIT_TO_MS.get(bench.get("time_unit", "ns"))
        if scale is None:
            raise SystemExit(f"unknown time_unit in {bench['name']}")
        out[bench["name"]] = bench["real_time"] * scale
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baselines", help="path to baselines.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline file from this run")
    parser.add_argument("--threshold", type=float, default=REL_THRESHOLD,
                        help="relative regression threshold (default 0.15)")
    args = parser.parse_args()

    measured = rows_ms(json.load(sys.stdin))
    if not measured:
        raise SystemExit("no benchmark rows on stdin")

    if args.update:
        try:
            with open(args.baselines) as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            doc = {"time_unit": "ms"}
        doc.setdefault("baselines", {}).update(
            {name: round(ms, 4 if ms < 1 else 2)
             for name, ms in measured.items()})
        with open(args.baselines, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"updated {args.baselines} with {len(measured)} rows "
              f"({len(doc['baselines'])} total)")
        return 0

    with open(args.baselines) as fh:
        baselines = json.load(fh)["baselines"]

    failed = False
    for name, ms in sorted(measured.items()):
        base = baselines.get(name)
        if base is None:
            print(f"FAIL {name}: {ms:.2f} ms has no baseline "
                  f"(add it with --update)")
            failed = True
            continue
        limit = base * (1.0 + args.threshold) + ABS_SLACK_MS
        delta = (ms - base) / base * 100.0 if base else 0.0
        verdict = "ok" if ms <= limit else "FAIL"
        print(f"{verdict:4} {name}: {ms:.2f} ms vs baseline {base:.2f} ms "
              f"({delta:+.1f}%, limit {limit:.2f} ms)")
        if ms > limit:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
