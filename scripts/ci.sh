#!/usr/bin/env bash
# CI driver: configure + build + run the full test suite, then (optionally)
# the sanitizer configurations.
#
# Usage:
#   scripts/ci.sh            # default build + ctest
#   scripts/ci.sh tsan       # ThreadSanitizer build; runs the concurrency tests
#   scripts/ci.sh asan       # Address+UB sanitizer build; runs the full suite
#   scripts/ci.sh all        # all of the above
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-default}"
JOBS="${JOBS:-$(nproc)}"

run_default() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure
}

run_tsan() {
  # ThreadSanitizer: the parallel engine and thread pool must be race-free.
  # Only the concurrency-relevant tests run here — TSan slows everything
  # ~10x, and the rest of the suite is single-threaded.
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}" \
        --target common_thread_pool_test core_engine_test
  ctest --test-dir build-tsan --output-on-failure \
        -R 'common_thread_pool_test|core_engine_test'
}

run_asan() {
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=address
  cmake --build build-asan -j "${JOBS}"
  ctest --test-dir build-asan --output-on-failure
}

case "${MODE}" in
  default) run_default ;;
  tsan)    run_tsan ;;
  asan)    run_asan ;;
  all)     run_default; run_tsan; run_asan ;;
  *) echo "unknown mode '${MODE}' (default|tsan|asan|all)" >&2; exit 2 ;;
esac
