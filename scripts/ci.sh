#!/usr/bin/env bash
# CI driver: configure + build + run the full test suite, then (optionally)
# the sanitizer and coverage configurations.
#
# Usage:
#   scripts/ci.sh            # default build + ctest
#   scripts/ci.sh tsan       # ThreadSanitizer build; runs the concurrency tests
#   scripts/ci.sh asan       # Address+UB sanitizer build; full suite + fuzz
#   scripts/ci.sh ubsan      # UBSan-only build; full suite
#   scripts/ci.sh obs-off    # QMATCH_OBS=OFF build; full suite (kill switch)
#   scripts/ci.sh fault-off  # QMATCH_FAULT=OFF build; full suite (kill switch)
#   scripts/ci.sh chaos      # chaos suite under ASan and TSan, fixed seeds
#   scripts/ci.sh stress     # overload suite under ASan and TSan + load bench
#   scripts/ci.sh recovery   # crash-point recovery suite under ASan and UBSan
#   scripts/ci.sh serve      # net protocol+fuzz+chaos under ASan, serving bench
#   scripts/ci.sh ha         # HA suite: replication (incl. wire fuzz),
#                            # resilient client, and the failover + split-brain
#                            # chaos harnesses under ASan and TSan, plus the
#                            # gated failover-gap and partition-heal bench rows
#   scripts/ci.sh perf       # Fig.4 runtime bench vs bench/baselines.json
#   scripts/ci.sh coverage   # --coverage build; enforces the line floor
#   scripts/ci.sh all        # all of the above
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-default}"
JOBS="${JOBS:-$(nproc)}"

# Line-coverage floor (percent) enforced per instrumented directory.
COVERAGE_FLOOR=70
COVERAGE_DIRS=(src/core src/obs)

run_default() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure
}

run_tsan() {
  # ThreadSanitizer: the parallel engine, thread pool (incl. the soak
  # layer), and the sharded metric/tracer paths must be race-free. Only the
  # concurrency-relevant tests run here — TSan slows everything ~10x, and
  # the rest of the suite is single-threaded.
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}" \
        --target common_thread_pool_test common_thread_pool_soak_test \
                 core_engine_test obs_test
  TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure \
        -R 'common_thread_pool_test|common_thread_pool_soak_test|core_engine_test|obs_test'
}

run_asan() {
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=address
  cmake --build build-asan -j "${JOBS}"
  # halt_on_error turns any ASan/UBSan report into a nonzero exit, so a
  # leak or UB hit anywhere in the suite fails CI rather than scrolling by.
  local san_opts="halt_on_error=1:abort_on_error=1:detect_leaks=1"
  ASAN_OPTIONS="${san_opts}" UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure
  # The fuzz layer is where memory bugs actually surface; run it explicitly
  # (it is part of the suite above too — this guarantees it even when the
  # suite selection changes) and fail on any sanitizer report.
  ASAN_OPTIONS="${san_opts}" UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -L fuzz
}

run_ubsan() {
  # UBSan on its own (the address pairing in run_asan can mask some UB
  # reports, and the lean instrumentation is fast enough for everything).
  cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=undefined
  cmake --build build-ubsan -j "${JOBS}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-ubsan --output-on-failure
}

# Chaos suite: seeded fault schedules over the engine/corpus pipeline,
# under both ASan (leaks/UAF on degraded paths) and TSan (races between
# the fill, the canceller and the failpoint registry). The seed set is
# pinned so CI failures reproduce locally with the same env var.
CHAOS_SEEDS="${QMATCH_CHAOS_SEEDS:-1,2,3,4,5}"

run_chaos() {
  # `-L chaos` runs EVERY chaos-labelled binary (engine, socket, failover
  # and split-brain schedules), so all of them must be built here.
  local chaos_targets=(chaos_engine_test net_chaos_test net_failover_test
                       net_splitbrain_test)

  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=address
  cmake --build build-asan -j "${JOBS}" --target "${chaos_targets[@]}"
  QMATCH_CHAOS_SEEDS="${CHAOS_SEEDS}" \
  ASAN_OPTIONS="halt_on_error=1:abort_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -C chaos -L chaos

  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}" --target "${chaos_targets[@]}"
  QMATCH_CHAOS_SEEDS="${CHAOS_SEEDS}" \
  TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -C chaos -L chaos
}

# Crash-recovery suite: the persist_recovery_test harness enumerates every
# persist.* failpoint hit in the save/compact sequence, kills the save
# mid-flight and requires old-or-new recovered state. ASan catches
# use-after-free/over-reads on the torn-state load paths; UBSan runs
# separately because the address pairing can mask some UB reports.
run_recovery() {
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=address
  cmake --build build-asan -j "${JOBS}" --target persist_recovery_test
  ASAN_OPTIONS="halt_on_error=1:abort_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -C recovery -L recovery

  cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=undefined
  cmake --build build-ubsan -j "${JOBS}" --target persist_recovery_test
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-ubsan --output-on-failure -C recovery -L recovery
}

# Overload/stress suite: admission control, memory budgets and the
# degradation ladder (everything labelled "overload") under both ASan
# (leaks on shed/exhausted paths) and TSan (races between admitters,
# releasers and the pressure reads), then the offered-load bench, whose
# table is the shed-rate/goodput column for EXPERIMENTS.md: throughput and
# shed rate at 1x, 4x and 16x of the configured admission capacity.
run_stress() {
  local overload_targets=(common_memory_budget_test common_admission_test
                          core_overload_test core_engine_cache_soak_test)

  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=address
  cmake --build build-asan -j "${JOBS}" --target "${overload_targets[@]}"
  ASAN_OPTIONS="halt_on_error=1:abort_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -L overload

  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}" --target "${overload_targets[@]}"
  TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -L overload

  # The load table runs uninstrumented: sanitizer slowdowns would distort
  # the throughput column.
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target bench_overload
  ./build/bench/bench_overload
}

# Serving suite: the socket face end to end. Wire-format conformance and
# the seeded frame fuzzer under ASan (where codec memory bugs surface),
# the socket-path chaos schedules under ASan and TSan (the loop thread,
# the workers and the failpoint registry race here if anywhere), then
# uninstrumented: the serving latency rows against bench/baselines.json
# and the offered-load table (flat goodput + typed overload verdicts).
run_serve() {
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=address
  cmake --build build-asan -j "${JOBS}" \
        --target net_protocol_test net_fuzz_test net_chaos_test
  local san_opts="halt_on_error=1:abort_on_error=1:detect_leaks=1"
  ASAN_OPTIONS="${san_opts}" UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure \
        -R 'net_protocol_test|net_fuzz_test'
  ASAN_OPTIONS="${san_opts}" UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -C chaos -R net_chaos_test

  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}" --target net_chaos_test
  TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -C chaos -R net_chaos_test

  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target bench_serving
  ./build/bench/bench_serving --benchmark_format=json \
    | python3 scripts/check_perf.py bench/baselines.json
  ./build/bench/bench_serving --load-table
}

# HA suite: the replication log/wire layer (incl. the seeded wire fuzzer),
# the resilient client's retry/failover rules and the role/readiness
# surface as plain tests, then the seeded failover chaos harness (kill the
# primary, promote the standby, require bit-identical acknowledged
# results) and the split-brain harness (partition, promote on the far
# side, drive both sides, heal; require at most one epoch's acks per
# request and the fenced primary re-joining as a standby of the winner) —
# all under both ASan (leaks on the teardown/reconnect paths) and TSan
# (the replication thread, the heartbeat/probe timers and the promote flip
# race here if anywhere). Uninstrumented afterwards: the client-observed
# failover-gap and partition-heal bench rows, gated against
# bench/baselines.json.
run_ha() {
  local ha_targets=(replica_log_test replica_wire_fuzz_test
                    net_resilient_client_test net_ha_test
                    net_failover_test net_splitbrain_test)

  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=address
  cmake --build build-asan -j "${JOBS}" --target "${ha_targets[@]}"
  local san_opts="halt_on_error=1:abort_on_error=1:detect_leaks=1"
  ASAN_OPTIONS="${san_opts}" UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure \
        -R 'replica_log_test|replica_wire_fuzz_test|net_resilient_client_test|net_ha_test'
  QMATCH_CHAOS_SEEDS="${CHAOS_SEEDS}" \
  ASAN_OPTIONS="${san_opts}" UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -C chaos \
        -R 'net_failover_test|net_splitbrain_test'

  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQMATCH_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}" --target "${ha_targets[@]}"
  TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure \
        -R 'replica_log_test|replica_wire_fuzz_test|net_resilient_client_test|net_ha_test'
  QMATCH_CHAOS_SEEDS="${CHAOS_SEEDS}" \
  TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -C chaos \
        -R 'net_failover_test|net_splitbrain_test'

  # The failover-gap and partition-heal rows run uninstrumented: they are
  # wall-clock outage/recovery measurements, and sanitizer slowdowns would
  # distort them.
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target bench_serving
  ./build/bench/bench_serving \
      --benchmark_filter='FailoverGap|PartitionHeal' \
      --benchmark_format=json \
    | python3 scripts/check_perf.py bench/baselines.json
}

# Perf regression gate: the Fig. 4 runtime bench (which includes the
# Protein row the SoA kernel was built for) against the checked-in
# baselines, failing on >15% regression per row. Runs uninstrumented in
# Release. After an intentional perf change, regenerate with
#   ./build/bench/bench_fig4_runtime --benchmark_format=json \
#       | python3 scripts/check_perf.py --update bench/baselines.json
# and review the bench/baselines.json diff like any other code change.
run_perf() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target bench_fig4_runtime
  ./build/bench/bench_fig4_runtime --benchmark_format=json \
    | python3 scripts/check_perf.py bench/baselines.json
}

run_obs_off() {
  # The observability kill switch: everything must still compile, link and
  # pass with every instrumentation hook compiled down to a no-op.
  cmake -B build-obs-off -S . -DCMAKE_BUILD_TYPE=Release -DQMATCH_OBS=OFF
  cmake --build build-obs-off -j "${JOBS}"
  ctest --test-dir build-obs-off --output-on-failure
}

run_fault_off() {
  # The fault-injection kill switch: with every failpoint compiled down to
  # a no-op the library must still build warning-clean and pass the suite
  # (the chaos binary itself is not built in this configuration).
  cmake -B build-fault-off -S . -DCMAKE_BUILD_TYPE=Release -DQMATCH_FAULT=OFF
  cmake --build build-fault-off -j "${JOBS}"
  ctest --test-dir build-fault-off --output-on-failure
}

# Prints "<percent> <dir>" per coverage directory, aggregated over the .cc
# files compiled into the qmatch library. Prefers gcovr when installed;
# otherwise falls back to parsing `gcov -n` summaries (the container ships
# plain gcov only).
report_coverage() {
  local builddir="$1" objroot dir
  objroot="${builddir}/src/CMakeFiles/qmatch.dir"
  for dir in "${COVERAGE_DIRS[@]}"; do
    local subdir="${objroot}/${dir#src/}"
    if [[ ! -d "${subdir}" ]]; then
      echo "0 ${dir} (no coverage data at ${subdir})"
      continue
    fi
    find "${subdir}" -name '*.gcda' -print0 | sort -z | \
      xargs -0 -r gcov -n 2>/dev/null | \
      awk -v dir="${dir}" '
        /^File / { f = $0; sub(/^File /, "", f); gsub(/\047/, "", f) }
        /^Lines executed:/ {
          if (f ~ ("(^|/)" dir "/") && f ~ /\.cc$/) {
            pct = $0; sub(/^Lines executed:/, "", pct); sub(/%.*/, "", pct)
            n = $0; sub(/.* of /, "", n)
            covered += pct * n / 100.0; total += n
          }
          f = ""
        }
        END { printf "%.1f %s (%d/%d lines)\n",
                     (total ? 100.0 * covered / total : 0), dir,
                     covered, total }'
  done
}

run_coverage() {
  cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage
  cmake --build build-cov -j "${JOBS}"
  ctest --test-dir build-cov --output-on-failure

  if command -v gcovr >/dev/null 2>&1; then
    local filters=()
    local dir
    for dir in "${COVERAGE_DIRS[@]}"; do filters+=(--filter "${dir}/"); done
    gcovr --root . "${filters[@]}" --fail-under-line "${COVERAGE_FLOOR}" \
          --print-summary build-cov
    return
  fi

  echo "gcovr not found; using gcov fallback"
  local failed=0 line pct
  while IFS= read -r line; do
    echo "coverage: ${line}"
    pct="${line%% *}"
    if awk -v p="${pct}" -v floor="${COVERAGE_FLOOR}" \
           'BEGIN { exit !(p + 0 < floor) }'; then
      echo "coverage: FAILED floor of ${COVERAGE_FLOOR}% on: ${line}" >&2
      failed=1
    fi
  done < <(report_coverage build-cov)
  return "${failed}"
}

case "${MODE}" in
  default)   run_default ;;
  tsan)      run_tsan ;;
  asan)      run_asan ;;
  ubsan)     run_ubsan ;;
  obs-off)   run_obs_off ;;
  fault-off) run_fault_off ;;
  chaos)     run_chaos ;;
  stress)    run_stress ;;
  recovery)  run_recovery ;;
  serve)     run_serve ;;
  ha)        run_ha ;;
  perf)      run_perf ;;
  coverage)  run_coverage ;;
  all)       run_default; run_tsan; run_asan; run_ubsan; run_obs_off
             run_fault_off; run_chaos; run_stress; run_recovery
             run_serve; run_ha; run_perf; run_coverage ;;
  *) echo "unknown mode '${MODE}'" \
          "(default|tsan|asan|ubsan|obs-off|fault-off|chaos|stress|recovery|serve|ha|perf|coverage|all)" >&2
     exit 2 ;;
esac
