// Validates the paper's complexity claim (Section 4: "The running time of
// the algorithm lies in O(nm)") empirically: generated schema pairs are
// swept over sizes and the hybrid's runtime is reported per node pair.
// If the claim holds, ns/pair stays roughly flat as n·m grows by orders
// of magnitude.

#include <benchmark/benchmark.h>

#include "core/qmatch.h"
#include "datagen/generator.h"
#include "datagen/perturb.h"

namespace {

using namespace qmatch;

void BM_HybridScaling(benchmark::State& state) {
  const size_t elements = static_cast<size_t>(state.range(0));
  datagen::GeneratorOptions options;
  options.element_count = elements;
  options.max_depth = 6;
  options.min_fanout = 2;
  options.max_fanout = 6;
  options.domain = datagen::Domain::kProtein;
  options.seed = 42;
  options.name = "Scale";
  xsd::Schema source = datagen::GenerateSchema(options);
  datagen::PerturbOptions perturb;
  perturb.seed = 43;
  xsd::Schema target = datagen::Perturb(source, perturb, nullptr);

  core::QMatch matcher;
  for (auto _ : state) {
    MatchResult result = matcher.Match(source, target);
    benchmark::DoNotOptimize(result);
  }
  const double pairs = static_cast<double>(source.NodeCount()) *
                       static_cast<double>(target.NodeCount());
  state.counters["pairs"] = pairs;
  state.counters["ns_per_pair"] = benchmark::Counter(
      pairs, benchmark::Counter::kIsIterationInvariantRate |
                 benchmark::Counter::kInvert);
}

BENCHMARK(BM_HybridScaling)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
