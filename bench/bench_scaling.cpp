// Validates the paper's complexity claim (Section 4: "The running time of
// the algorithm lies in O(nm)") empirically: generated schema pairs are
// swept over sizes and the hybrid's runtime is reported per node pair.
// If the claim holds, ns/pair stays roughly flat as n·m grows by orders
// of magnitude.
//
// The *_Threads benchmarks sweep the MatchEngine over 1/2/4/8 threads on
// the paper's largest workload (the PIR×PDB protein pair, 231×3753
// elements) and on a corpus batch — the wall-clock speedup columns for the
// parallel engine. Caching is disabled so every iteration measures a full
// table fill; correspondences are bit-identical at every thread count
// (enforced separately by core_engine_test).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "datagen/perturb.h"
#include "obs/obs.h"

namespace {

using namespace qmatch;

void BM_HybridScaling(benchmark::State& state) {
  const size_t elements = static_cast<size_t>(state.range(0));
  datagen::GeneratorOptions options;
  options.element_count = elements;
  options.max_depth = 6;
  options.min_fanout = 2;
  options.max_fanout = 6;
  options.domain = datagen::Domain::kProtein;
  options.seed = 42;
  options.name = "Scale";
  xsd::Schema source = datagen::GenerateSchema(options);
  datagen::PerturbOptions perturb;
  perturb.seed = 43;
  xsd::Schema target = datagen::Perturb(source, perturb, nullptr);

  core::QMatch matcher;
  for (auto _ : state) {
    MatchResult result = matcher.Match(source, target);
    benchmark::DoNotOptimize(result);
  }
  const double pairs = static_cast<double>(source.NodeCount()) *
                       static_cast<double>(target.NodeCount());
  state.counters["pairs"] = pairs;
  state.counters["ns_per_pair"] = benchmark::Counter(
      pairs, benchmark::Counter::kIsIterationInvariantRate |
                 benchmark::Counter::kInvert);
}

BENCHMARK(BM_HybridScaling)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// One large match (PIR 231 x PDB 3753 elements), row-parallel table fill.
void BM_EnginePirPdb_Threads(benchmark::State& state) {
  static const xsd::Schema* pir = new xsd::Schema(datagen::MakePir());
  static const xsd::Schema* pdb = new xsd::Schema(datagen::MakePdb());
  core::MatchEngineOptions options;
  options.threads = static_cast<size_t>(state.range(0));
  options.cache_capacity = 0;  // measure the fill, not the cache
  core::MatchEngine engine(options);
  for (auto _ : state) {
    MatchResult result = engine.Match(*pir, *pdb);
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pir->NodeCount()) *
                            static_cast<double>(pdb->NodeCount());
  state.counters["threads"] = static_cast<double>(engine.threads());
}

BENCHMARK(BM_EnginePirPdb_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// A corpus batch (32 generated pairs) fanned out across the pool — the
// schema_search / repository-ranking workload shape.
void BM_EngineCorpus_Threads(benchmark::State& state) {
  static const std::vector<std::pair<xsd::Schema, xsd::Schema>>* pairs = [] {
    auto* built = new std::vector<std::pair<xsd::Schema, xsd::Schema>>();
    for (uint64_t k = 0; k < 32; ++k) {
      datagen::GeneratorOptions options;
      options.seed = 500 + k;
      options.element_count = 120;
      options.max_depth = 6;
      options.domain = datagen::Domain::kProtein;
      options.name = "Corpus";
      xsd::Schema source = datagen::GenerateSchema(options);
      datagen::PerturbOptions perturb;
      perturb.seed = 600 + k;
      xsd::Schema target = datagen::Perturb(source, perturb, nullptr);
      built->emplace_back(std::move(source), std::move(target));
    }
    return built;
  }();
  std::vector<core::MatchJob> jobs;
  for (const auto& [source, target] : *pairs) {
    jobs.push_back(core::MatchJob{&source, &target});
  }
  core::MatchEngineOptions options;
  options.threads = static_cast<size_t>(state.range(0));
  options.cache_capacity = 0;
  core::MatchEngine engine(options);
  for (auto _ : state) {
    std::vector<MatchResult> results = engine.MatchAll(jobs);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs.size());
  state.counters["threads"] = static_cast<double>(engine.threads());
}

BENCHMARK(BM_EngineCorpus_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The cache-served path: the same pair matched repeatedly against a warm
// LRU cache. Measures lookup + pointer rehydration (no table fill), and —
// with --metrics-out — feeds nonzero engine.cache.hits into the exported
// metrics (the other engine benchmarks disable caching on purpose).
void BM_EngineCacheHit(benchmark::State& state) {
  static const xsd::Schema* pir = new xsd::Schema(datagen::MakePir());
  static const xsd::Schema* pdb = new xsd::Schema(datagen::MakePdb());
  core::MatchEngineOptions options;
  options.threads = 1;
  core::MatchEngine engine(options);
  MatchResult warmup = engine.Match(*pir, *pdb);  // fill the cache
  benchmark::DoNotOptimize(warmup);
  for (auto _ : state) {
    MatchResult result = engine.Match(*pir, *pdb);
    benchmark::DoNotOptimize(result);
  }
  core::MatchEngineCacheStats stats = engine.cache_stats();
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
}

BENCHMARK(BM_EngineCacheHit)->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN plus the observability sinks: `--metrics-out=<file>` and
// `--trace-out=<file>` are stripped before google-benchmark sees argv (it
// rejects unknown flags) and written after the run.
int main(int argc, char** argv) {
  qmatch::obs::CliSink sink;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (!sink.TryParse(argv[i])) argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  qmatch::Status status = sink.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "obs output failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
