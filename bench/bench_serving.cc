// Serving-path benchmark for qmatchd: the same engine the in-process
// benches measure, but reached through the full socket stack — frame
// codec, epoll loop, worker dispatch and back.
//
// Two faces:
//
//  * Default (google-benchmark): per-request round-trip latency rows over
//    a loopback connection — the protocol floor (GetStats), a warm
//    MatchPair (serving overhead on a cache hit), a cold-cache MatchPair,
//    and SubmitSchema (parse + register). These rows gate through
//    scripts/check_perf.py against bench/baselines.json:
//      ./build/bench/bench_serving --benchmark_format=json |
//          python3 scripts/check_perf.py bench/baselines.json
//
//  * --load-table: drives the server with concurrent closed-loop clients
//    at 1x, 4x and 16x of the engine's configured admission capacity and
//    prints goodput, shed rate and the typed-outcome split per load
//    point. The serving contract under overload: goodput stays flat past
//    saturation, the excess is answered with typed kOverloaded response
//    frames (never dropped connections), and every outcome is typed.
//
// Run: build/bench/bench_serving [--load-table]

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "fault/failpoint.h"
#include "net/client.h"
#include "net/resilient_client.h"
#include "net/server.h"
#include "replica/log.h"
#include "replica/primary.h"
#include "replica/standby.h"
#include "xsd/writer.h"

namespace {

using namespace qmatch;
using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Latency rows: one long-lived server, one connection per benchmark.
// ---------------------------------------------------------------------------

/// The shared server for the latency rows: default engine (result cache
/// on, so the warm rows isolate serving overhead), every corpus schema
/// registered by name.
struct Harness {
  std::unique_ptr<core::MatchEngine> engine;
  std::unique_ptr<net::Server> server;

  explicit Harness(size_t cache_capacity) {
    core::MatchEngineOptions options;
    options.threads = 2;
    options.cache_capacity = cache_capacity;
    engine = std::make_unique<core::MatchEngine>(options);
    net::ServerOptions serve;
    serve.request_threads = 2;
    server = std::make_unique<net::Server>(engine.get(), serve);
    if (!server->Start().ok()) std::abort();
    for (const datagen::CorpusEntry& entry : datagen::Corpus()) {
      if (!server->RegisterSchema(entry.name, xsd::ToXsd(entry.make())).ok()) {
        std::abort();
      }
    }
  }
  ~Harness() { server->Stop(); }
};

Harness& SharedHarness() {
  static Harness harness(/*cache_capacity=*/256);
  return harness;
}

/// A cache-less twin for the cold row: the result cache is keyed on
/// schema fingerprints + matcher config, so any repeated pair would hit
/// it — disabling the cache is the only way to measure the full cost.
Harness& ColdHarness() {
  static Harness harness(/*cache_capacity=*/0);
  return harness;
}

net::Client ConnectOrDie(Harness& harness) {
  Result<net::Client> client = net::Client::Connect(
      "127.0.0.1", harness.server->port(), std::chrono::seconds(30));
  if (!client.ok()) std::abort();
  return std::move(*client);
}

/// Protocol floor: the smallest request/response pair, no engine work.
void BM_Serve_GetStats(benchmark::State& state) {
  net::Client client = ConnectOrDie(SharedHarness());
  for (auto _ : state) {
    Result<net::StatsResp> resp = client.GetStats();
    if (!resp.ok() || !resp->head.ok()) state.SkipWithError("stats failed");
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_Serve_GetStats)->Unit(benchmark::kMicrosecond);

/// Serving overhead on a warm match: after the first iteration the engine
/// answers from its result cache, so the row is codec + loop + dispatch.
void BM_Serve_MatchPair_Warm_PO(benchmark::State& state) {
  net::Client client = ConnectOrDie(SharedHarness());
  for (auto _ : state) {
    Result<net::MatchPairResp> resp = client.MatchPair("PO1", "PO2", 0);
    if (!resp.ok() || !resp->head.ok()) state.SkipWithError("match failed");
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_Serve_MatchPair_Warm_PO)->Unit(benchmark::kMicrosecond);

/// Full request cost over the wire: alternate the pair's direction so
/// every iteration misses the result cache and pays the real match.
void BM_Serve_MatchPair_Cold_DCMD(benchmark::State& state) {
  net::Client client = ConnectOrDie(ColdHarness());
  for (auto _ : state) {
    Result<net::MatchPairResp> resp =
        client.MatchPair("DCMDItem", "DCMDOrder", 0);
    if (!resp.ok() || !resp->head.ok()) state.SkipWithError("match failed");
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_Serve_MatchPair_Cold_DCMD)->Unit(benchmark::kMillisecond);

/// Parse + register round trip (PO1, 10 elements).
void BM_Serve_SubmitSchema_PO1(benchmark::State& state) {
  net::Client client = ConnectOrDie(SharedHarness());
  const std::string xsd = datagen::PO1Xsd();
  for (auto _ : state) {
    Result<net::SubmitSchemaResp> resp = client.SubmitSchema("bench-po1", xsd);
    if (!resp.ok() || !resp->head.ok()) state.SkipWithError("submit failed");
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_Serve_SubmitSchema_PO1)->Unit(benchmark::kMicrosecond);

/// Client-observed failover gap: a replicated primary/standby pair and a
/// resilient client sticky on the primary. Each iteration builds the pair
/// and waits for replication catch-up OUTSIDE the measured window, then
/// times kill -> promote -> first acknowledged response from the promoted
/// standby — the outage an acknowledged-results client actually sees. The
/// response must be warm (the replicated result cache answers it), so the
/// row also gates warm promotion staying warm.
void BM_Serve_FailoverGap(benchmark::State& state) {
  const auto& corpus = datagen::Corpus();
  const std::string a = corpus[0].name;
  const std::string b = corpus[1].name;
  const std::string xsd_a = xsd::ToXsd(corpus[0].make());
  const std::string xsd_b = xsd::ToXsd(corpus[1].make());
  for (auto _ : state) {
    // Pair setup + catch-up: unmeasured.
    replica::ReplicationLog log(256);
    core::MatchEngine primary_engine{core::MatchEngineOptions{}};
    net::ServerOptions primary_options;
    primary_options.replica_heartbeat = std::chrono::milliseconds(20);
    replica::AttachPrimary(&primary_engine, &primary_options, &log);
    net::Server primary(&primary_engine, primary_options);
    if (!primary.Start().ok()) std::abort();
    if (!primary.RegisterSchema(a, xsd_a).ok()) std::abort();
    if (!primary.RegisterSchema(b, xsd_b).ok()) std::abort();

    core::MatchEngine standby_engine{core::MatchEngineOptions{}};
    net::ServerOptions standby_options;
    standby_options.role = net::Role::kStandby;
    net::Server standby(&standby_engine, standby_options);
    if (!standby.Start().ok()) std::abort();
    replica::StandbyOptions stream_options;
    stream_options.primary_port = primary.port();
    stream_options.backoff_base = std::chrono::milliseconds(10);
    stream_options.backoff_cap = std::chrono::milliseconds(50);
    replica::Standby stream(&standby_engine, &standby, stream_options);
    if (!stream.Start().ok()) std::abort();

    net::ResilientClientOptions copts;
    copts.endpoints = {{"127.0.0.1", primary.port()},
                       {"127.0.0.1", standby.port()}};
    copts.retry_budget = 16;
    copts.backoff_base = std::chrono::milliseconds(1);
    copts.backoff_cap = std::chrono::milliseconds(8);
    copts.call_deadline = std::chrono::milliseconds(10000);
    net::ResilientClient client(copts);
    // Seed the primary's result cache; replication carries the entry over.
    {
      Result<net::MatchPairResp> warm = client.MatchPair(a, b, 0);
      if (!warm.ok() || !warm->head.ok()) std::abort();
    }
    while (true) {
      const replica::StandbyStats s = stream.stats();
      if (s.connected && s.applied_seq >= log.head_seq()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Measured: the outage window, from the kill to the first answer.
    const steady_clock::time_point t0 = steady_clock::now();
    primary.Stop();
    stream.Promote();
    Result<net::MatchPairResp> resp = client.MatchPair(a, b, 0);
    const steady_clock::time_point t1 = steady_clock::now();
    if (!resp.ok() || !resp->head.ok()) {
      state.SkipWithError("failover did not recover");
    } else if (standby_engine.cache_stats().hits == 0) {
      state.SkipWithError("promoted standby answered cold");
    }
    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
    stream.Stop();
    standby.Stop();
  }
}
BENCHMARK(BM_Serve_FailoverGap)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(5);

/// Partition-heal convergence: a replicated pair split by the partition
/// failpoints, the standby promoted to a new fencing epoch on the far
/// side. Unmeasured: pair setup, catch-up, the partition itself and the
/// promotion. Measured: from the heal to a fully converged cluster — the
/// stale primary has heard the new epoch over its peer probe, fenced and
/// demoted itself, and re-joined as a caught-up standby of the winner.
/// This is the operator-facing recovery window after a network split.
void BM_Serve_PartitionHeal(benchmark::State& state) {
  const auto& corpus = datagen::Corpus();
  const std::string a = corpus[0].name;
  const std::string b = corpus[1].name;
  const std::string xsd_a = xsd::ToXsd(corpus[0].make());
  const std::string xsd_b = xsd::ToXsd(corpus[1].make());
  for (auto _ : state) {
    // Pair setup + catch-up: unmeasured. The standby carries its own
    // replication log (AttachPrimary, then the role flipped back) so it
    // can anchor the healed old primary after its promotion.
    replica::ReplicationLog log_a(256);
    core::MatchEngine engine_a{core::MatchEngineOptions{}};
    net::ServerOptions options_a;
    options_a.replica_heartbeat = std::chrono::milliseconds(20);
    options_a.peer_probe_timeout = std::chrono::milliseconds(200);
    replica::AttachPrimary(&engine_a, &options_a, &log_a);
    net::Server server_a(&engine_a, options_a);
    if (!server_a.Start().ok()) std::abort();
    if (!server_a.RegisterSchema(a, xsd_a).ok()) std::abort();
    if (!server_a.RegisterSchema(b, xsd_b).ok()) std::abort();

    replica::ReplicationLog log_b(256);
    core::MatchEngine engine_b{core::MatchEngineOptions{}};
    net::ServerOptions options_b;
    options_b.replica_heartbeat = std::chrono::milliseconds(20);
    options_b.peer_probe_timeout = std::chrono::milliseconds(200);
    replica::AttachPrimary(&engine_b, &options_b, &log_b);
    options_b.role = net::Role::kStandby;
    net::Server server_b(&engine_b, options_b);
    if (!server_b.Start().ok()) std::abort();
    server_a.SetPeer("127.0.0.1", server_b.port());
    server_b.SetPeer("127.0.0.1", server_a.port());

    replica::StandbyOptions stream_options;
    stream_options.primary_port = server_a.port();
    stream_options.backoff_base = std::chrono::milliseconds(10);
    stream_options.backoff_cap = std::chrono::milliseconds(50);
    replica::Standby stream_b(&engine_b, &server_b, stream_options);
    if (!stream_b.Start().ok()) std::abort();
    while (true) {
      const replica::StandbyStats s = stream_b.stats();
      if (s.connected && s.applied_seq >= log_a.head_seq()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Split the pair and promote the standby on the far side: epoch 2
    // now owns the cluster, the old primary just cannot hear it yet.
    {
      fault::ScopedFailpoint sever_replica("net.partition.replica",
                                           fault::FaultSpec{});
      fault::ScopedFailpoint sever_peer("net.partition.peer",
                                        fault::FaultSpec{});
      stream_b.Promote();
      if (server_b.role() != net::Role::kPrimary) std::abort();
    }  // heal: the failpoints disarm here.

    // Measured: heal -> the stale primary fenced, demoted, re-joined and
    // caught up on the winner's log.
    const steady_clock::time_point t0 = steady_clock::now();
    while (server_a.role() != net::Role::kStandby) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    replica::StandbyOptions rejoin_options;
    rejoin_options.primary_port = server_b.port();
    rejoin_options.backoff_base = std::chrono::milliseconds(10);
    rejoin_options.backoff_cap = std::chrono::milliseconds(50);
    replica::Standby stream_a(&engine_a, &server_a, rejoin_options);
    if (!stream_a.Start().ok()) std::abort();
    while (true) {
      const replica::StandbyStats s = stream_a.stats();
      if (s.connected && s.applied_seq >= log_b.head_seq() &&
          server_a.epoch() == 2 && !server_a.fenced()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const steady_clock::time_point t1 = steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());

    stream_a.Stop();
    stream_b.Stop();
    server_a.Stop();
    server_b.Stop();
  }
}
BENCHMARK(BM_Serve_PartitionHeal)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(5);

// ---------------------------------------------------------------------------
// --load-table: goodput and typed outcomes vs offered load.
// ---------------------------------------------------------------------------

struct LoadPoint {
  size_t clients = 0;
  size_t offered = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t deadline = 0;
  size_t exhausted = 0;
  size_t transport = 0;
  size_t untyped = 0;
  microseconds elapsed{0};
};

/// Drives a dedicated server (admission capacity 1, queue depth 2 — the
/// same knife-edge as bench_overload) with `clients` closed-loop mixed
/// clients: mostly MatchPair, every eighth request a GetStats. Every
/// response must carry a typed verdict.
LoadPoint Drive(size_t clients, size_t requests_per_client) {
  core::MatchEngineOptions options;
  options.threads = 2;
  options.cache_capacity = 0;  // every request pays the full match
  options.overload.admission.max_inflight_cost = 1;
  options.overload.admission.max_queue_depth = 2;
  core::MatchEngine engine(options);
  net::ServerOptions serve;
  // More workers than admission capacity, so concurrent requests actually
  // contend at the admission gate instead of queueing in the thread pool.
  serve.request_threads = 8;
  net::Server server(&engine, serve);
  if (!server.Start().ok()) std::abort();
  const std::string src = "DCMDItem";
  const std::string tgt = "DCMDOrder";
  for (const char* name : {"DCMDItem", "DCMDOrder"}) {
    for (const datagen::CorpusEntry& entry : datagen::Corpus()) {
      if (entry.name == name &&
          !server.RegisterSchema(entry.name, xsd::ToXsd(entry.make())).ok()) {
        std::abort();
      }
    }
  }

  LoadPoint point;
  point.clients = clients;
  point.offered = clients * requests_per_client;
  std::atomic<size_t> ok{0}, shed{0}, deadline{0}, exhausted{0};
  std::atomic<size_t> transport{0}, untyped{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const steady_clock::time_point start = steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, port = server.port()]() {
      Result<net::Client> client =
          net::Client::Connect("127.0.0.1", port, std::chrono::seconds(30));
      if (!client.ok()) {
        transport.fetch_add(requests_per_client);
        return;
      }
      for (size_t r = 0; r < requests_per_client; ++r) {
        if (r % 8 == 7) {
          Result<net::StatsResp> stats = client->GetStats();
          if (!stats.ok()) transport.fetch_add(1);
          else if (stats->head.ok()) ok.fetch_add(1);
          else untyped.fetch_add(1);
          continue;
        }
        Result<net::MatchPairResp> resp = client->MatchPair(src, tgt, 5000);
        if (!resp.ok()) {
          transport.fetch_add(1);
          continue;
        }
        switch (resp->head.status_code()) {
          case StatusCode::kOk: ok.fetch_add(1); break;
          case StatusCode::kOverloaded: shed.fetch_add(1); break;
          case StatusCode::kDeadlineExceeded: deadline.fetch_add(1); break;
          case StatusCode::kResourceExhausted: exhausted.fetch_add(1); break;
          default: untyped.fetch_add(1); break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  point.elapsed = duration_cast<microseconds>(steady_clock::now() - start);
  server.Stop();
  point.ok = ok.load();
  point.shed = shed.load();
  point.deadline = deadline.load();
  point.exhausted = exhausted.load();
  point.transport = transport.load();
  point.untyped = untyped.load();
  return point;
}

int RunLoadTable() {
  constexpr size_t kRequestsPerClient = 48;
  std::printf("== Serving: goodput and typed outcomes vs offered load ==\n\n");
  std::printf("%-8s %8s %8s %8s %9s %10s %12s %10s\n", "load", "offered",
              "ok", "shed", "deadline", "exhausted", "goodput/s",
              "shed rate");
  bool clean = true;
  for (const size_t clients : {size_t{1}, size_t{4}, size_t{16}}) {
    const LoadPoint p = Drive(clients, kRequestsPerClient);
    const double secs = static_cast<double>(p.elapsed.count()) / 1e6;
    const double goodput = secs > 0.0 ? static_cast<double>(p.ok) / secs : 0.0;
    const double shed_rate =
        p.offered > 0
            ? static_cast<double>(p.shed) / static_cast<double>(p.offered)
            : 0.0;
    char label[32];
    std::snprintf(label, sizeof(label), "%zux", p.clients);
    std::printf("%-8s %8zu %8zu %8zu %9zu %10zu %12.1f %9.1f%%\n", label,
                p.offered, p.ok, p.shed, p.deadline, p.exhausted, goodput,
                100.0 * shed_rate);
    if (p.untyped > 0 || p.transport > 0) {
      std::fprintf(stderr,
                   "%zu clients: %zu untyped verdicts, %zu transport "
                   "failures — every outcome must be typed\n",
                   p.clients, p.untyped, p.transport);
      clean = false;
    }
  }
  std::printf(
      "\nAdmission capacity 1 with queue depth 2 behind the socket: the 1x\n"
      "client never sheds; past saturation goodput stays flat and every\n"
      "excess request is answered with a typed kOverloaded response frame\n"
      "on a live connection — overload never silently drops a client.\n");
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--load-table") == 0) return RunLoadTable();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
