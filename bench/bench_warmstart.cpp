// Warm-start benchmark for the crash-safe persistence layer: how much does
// a snapshot-backed restart save over a cold process? For every datagen
// match task the bench measures
//
//   cold:  first Match on a fresh engine (cache empty) — the full O(n*m)
//          pairwise table + tree match;
//   warm:  engine restarted over the persist directory the cold run wrote,
//          first Match served from the recovered cache (path rehydration
//          only);
//
// plus the one-off warm-start costs: store load time and recovered-entry
// count. Recovered results are checked bit-identical to the cold compute —
// a mismatch fails the bench, because a fast wrong answer is worthless.
//
// Run: build/bench/bench_warmstart
// The numbers feed the warm-start section of EXPERIMENTS.md.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "persist/store.h"

namespace {

using namespace qmatch;
using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

struct TaskTiming {
  std::string name;
  microseconds cold{0};
  microseconds warm{0};
  double qom = 0.0;
  bool identical = false;
};

microseconds Since(steady_clock::time_point start) {
  return duration_cast<microseconds>(steady_clock::now() - start);
}

bool BitIdentical(const MatchResult& a, const MatchResult& b) {
  if (a.schema_qom != b.schema_qom ||
      a.correspondences.size() != b.correspondences.size()) {
    return false;
  }
  for (size_t i = 0; i < a.correspondences.size(); ++i) {
    if (a.correspondences[i].score != b.correspondences[i].score) return false;
  }
  return true;
}

}  // namespace

int main() {
  const std::string dir =
      "/tmp/qmatch_bench_warmstart_" + std::to_string(::getpid());

  core::MatchEngineOptions options;
  options.threads = 1;  // sequential: isolates cache effect from fan-out
  options.persist_dir = dir;

  const std::vector<datagen::MatchTask>& tasks = datagen::Tasks();
  std::vector<TaskTiming> timings;
  std::vector<MatchResult> cold_results;

  // --- cold pass: fresh engine, empty store --------------------------------
  {
    core::MatchEngine cold(options);
    if (!cold.persist_enabled()) {
      std::fprintf(stderr, "persist store failed to open at %s\n",
                   dir.c_str());
      return 1;
    }
    for (const datagen::MatchTask& task : tasks) {
      const xsd::Schema source = task.source();
      const xsd::Schema target = task.target();
      TaskTiming timing;
      timing.name = task.name;
      const steady_clock::time_point start = steady_clock::now();
      MatchResult result = cold.Match(source, target);
      timing.cold = Since(start);
      timing.qom = result.schema_qom;
      timings.push_back(std::move(timing));
      cold_results.push_back(std::move(result));
    }
    // Destructor compacts the journal into the snapshot.
  }

  // --- warm pass: restart over the persisted state -------------------------
  const steady_clock::time_point load_start = steady_clock::now();
  core::MatchEngine warm(options);
  const microseconds load_time = Since(load_start);
  const persist::LoadStats& load = warm.persist_load_stats();
  const size_t recovered = warm.cache_stats().entries;

  for (size_t i = 0; i < tasks.size(); ++i) {
    const xsd::Schema source = tasks[i].source();
    const xsd::Schema target = tasks[i].target();
    const steady_clock::time_point start = steady_clock::now();
    const MatchResult result = warm.Match(source, target);
    timings[i].warm = Since(start);
    timings[i].identical = BitIdentical(result, cold_results[i]);
  }
  const core::MatchEngineCacheStats stats = warm.cache_stats();

  std::printf("== Warm start: cold vs recovered-cache first request ==\n\n");
  std::printf("store load: %lld us (%zu cache entries recovered, "
              "%zu snapshot + %zu journal records)\n\n",
              static_cast<long long>(load_time.count()), recovered,
              load.snapshot_records, load.journal_records);
  std::printf("%-10s %12s %12s %10s %8s %10s\n", "task", "cold (us)",
              "warm (us)", "speedup", "QoM", "identical");
  bool all_identical = true;
  for (const TaskTiming& timing : timings) {
    const double speedup =
        timing.warm.count() > 0
            ? static_cast<double>(timing.cold.count()) /
                  static_cast<double>(timing.warm.count())
            : 0.0;
    all_identical = all_identical && timing.identical;
    std::printf("%-10s %12lld %12lld %9.1fx %8.3f %10s\n", timing.name.c_str(),
                static_cast<long long>(timing.cold.count()),
                static_cast<long long>(timing.warm.count()), speedup,
                timing.qom, timing.identical ? "yes" : "NO");
  }
  const double hit_rate =
      (stats.hits + stats.misses) > 0
          ? static_cast<double>(stats.hits) /
                static_cast<double>(stats.hits + stats.misses)
          : 0.0;
  std::printf("\nwarm hit rate: %.0f%% (%zu hits / %zu misses)\n",
              100.0 * hit_rate, stats.hits, stats.misses);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a recovered result differs from the cold compute\n");
    return 1;
  }
  std::printf("every recovered result is bit-identical to the cold "
              "compute.\n");
  return 0;
}
