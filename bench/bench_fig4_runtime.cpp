// Reproduces Figure 4 of the paper: runtime of the linguistic, structural
// and hybrid (QMatch) algorithms as a function of the total number of
// elements in both input schemas (19, 24, 91 and 3984 — the PO, Books,
// DCMD and Protein match tasks).
//
// The paper's claim is about the *shape*: the hybrid algorithm is slower
// than either individual algorithm (it runs both plus the QoM combination),
// and all grow superlinearly with n·m. Absolute milliseconds differ from
// the paper's (Java on a 2 GHz Pentium 4).
//
// google-benchmark binary: each benchmark matches one task with one
// algorithm; the total element count is reported as a counter.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "lingua/default_thesaurus.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"

namespace {

using namespace qmatch;

struct TaskSchemas {
  xsd::Schema source;
  xsd::Schema target;
};

const TaskSchemas& GetTask(const std::string& name) {
  static auto& cache = *new std::map<std::string, TaskSchemas>();
  auto it = cache.find(name);
  if (it == cache.end()) {
    for (const datagen::MatchTask& task : datagen::Tasks()) {
      if (task.name == name) {
        it = cache.emplace(name, TaskSchemas{task.source(), task.target()})
                 .first;
        break;
      }
    }
  }
  return it->second;
}

void ReportElements(benchmark::State& state, const TaskSchemas& task) {
  state.counters["total_elements"] = static_cast<double>(
      task.source.ElementCount() + task.target.ElementCount());
}

void BM_Linguistic(benchmark::State& state, const std::string& task_name) {
  const TaskSchemas& task = GetTask(task_name);
  match::LinguisticMatcher matcher(&lingua::DefaultThesaurus());
  for (auto _ : state) {
    MatchResult result = matcher.Match(task.source, task.target);
    benchmark::DoNotOptimize(result);
  }
  ReportElements(state, task);
}

void BM_Structural(benchmark::State& state, const std::string& task_name) {
  const TaskSchemas& task = GetTask(task_name);
  match::StructuralMatcher matcher;
  for (auto _ : state) {
    MatchResult result = matcher.Match(task.source, task.target);
    benchmark::DoNotOptimize(result);
  }
  ReportElements(state, task);
}

void BM_Hybrid(benchmark::State& state, const std::string& task_name) {
  const TaskSchemas& task = GetTask(task_name);
  core::QMatch matcher;
  for (auto _ : state) {
    MatchResult result = matcher.Match(task.source, task.target);
    benchmark::DoNotOptimize(result);
  }
  ReportElements(state, task);
}

#define QMATCH_FIG4_TASK(task, elements)                                    \
  BENCHMARK_CAPTURE(BM_Linguistic, task##_##elements, #task)               \
      ->Unit(benchmark::kMillisecond);                                     \
  BENCHMARK_CAPTURE(BM_Structural, task##_##elements, #task)               \
      ->Unit(benchmark::kMillisecond);                                     \
  BENCHMARK_CAPTURE(BM_Hybrid, task##_##elements, #task)                   \
      ->Unit(benchmark::kMillisecond)

QMATCH_FIG4_TASK(PO, 19);
QMATCH_FIG4_TASK(Books, 24);
QMATCH_FIG4_TASK(DCMD, 91);
QMATCH_FIG4_TASK(Protein, 3984);

}  // namespace

BENCHMARK_MAIN();
