// Reproduces Figure 6 of the paper: the number of manually determined real
// matches R vs the number of matches P found by each algorithm, for the
// PO(M), Book(M) and Xbench(M) match tasks. (The paper omits the protein
// schemas here — "nearly impossible to accurately determine the matches
// manually" — we print them anyway since our gold is by construction.)

#include <cstdio>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "lingua/default_thesaurus.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"

int main() {
  using namespace qmatch;

  match::LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  match::StructuralMatcher structural;
  core::QMatch hybrid;

  std::printf("== Figure 6: Manual matches (R) vs matches found (P) ==\n\n");
  eval::TextTable table({"task", "manual R", "hybrid P", "hybrid I",
                         "structural P", "structural I", "linguistic P",
                         "linguistic I"});
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "DCMD") continue;  // Fig. 6 uses PO/Book/Xbench
    xsd::Schema source = task.source();
    xsd::Schema target = task.target();
    eval::GoldStandard gold = task.gold();

    eval::QualityMetrics h = eval::Evaluate(hybrid.Match(source, target), gold);
    eval::QualityMetrics s =
        eval::Evaluate(structural.Match(source, target), gold);
    eval::QualityMetrics l =
        eval::Evaluate(linguistic.Match(source, target), gold);
    std::string label = task.name + "(M)";
    if (task.name == "Protein") label += " [extrapolated in the paper]";
    table.AddRow({label, std::to_string(gold.size()),
                  std::to_string(h.returned), std::to_string(h.true_positives),
                  std::to_string(s.returned), std::to_string(s.true_positives),
                  std::to_string(l.returned),
                  std::to_string(l.true_positives)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "shape check (paper): hybrid finds at least as many true matches as "
      "either individual algorithm on every task.\n");
  return 0;
}
