// Reproduces Table 1 of the paper: characteristics of the test schemas
// (# elements and maximum depth) for PO1, PO2, Article, Book, DCMDItem,
// DCMDOrd, PIR and PDB.
//
// The paper's counts are element counts; depth is reported in edges from
// the root. PIR/PDB are synthesised at the paper's scales (DESIGN.md §5).

#include <cstdio>

#include "datagen/corpus.h"
#include "eval/report.h"

int main() {
  using namespace qmatch;

  struct Row {
    const char* name;
    xsd::Schema (*make)();
    size_t paper_elements;
    size_t paper_depth;
  };
  const Row rows[] = {
      {"PO1", datagen::MakePO1, 10, 3},
      {"PO2", datagen::MakePO2, 9, 3},
      {"Article", datagen::MakeArticle, 18, 3},
      {"Book", datagen::MakeBook, 6, 2},
      {"DCMDItem", datagen::MakeDcmdItem, 38, 2},
      {"DCMDOrd", datagen::MakeDcmdOrder, 53, 3},
      {"PIR", datagen::MakePir, 231, 6},
      {"PDB", datagen::MakePdb, 3753, 7},
  };

  std::printf("== Table 1: Characteristics of the Test Schemas ==\n\n");
  eval::TextTable table({"schema", "# elements", "paper", "max depth",
                         "paper depth"});
  for (const Row& row : rows) {
    xsd::Schema schema = row.make();
    table.AddRow({row.name, std::to_string(schema.ElementCount()),
                  std::to_string(row.paper_elements),
                  std::to_string(schema.MaxDepth()),
                  std::to_string(row.paper_depth)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "note: depths are in edges from the root; the paper does not state "
      "its depth convention (PO2's hand-rebuilt tree from Fig. 2 has depth "
      "2 in edges).\n");
  return 0;
}
