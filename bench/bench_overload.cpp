// Overload behaviour under offered load: drives the engine at 1x, 4x and
// 16x its configured admission capacity and reports, per load point, the
// goodput (completed matches per second), the shed rate (typed kOverloaded
// rejections as a fraction of offered requests) and how many completed
// requests were served degraded. The point of the table: throughput stays
// flat past saturation (excess load is shed, not queued into collapse) and
// every rejection is typed.
//
// Run: build/bench/bench_overload

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "eval/metrics.h"

namespace {

using namespace qmatch;
using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

struct LoadPoint {
  size_t clients = 0;
  size_t offered = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t degraded = 0;
  microseconds elapsed{0};
};

LoadPoint Drive(size_t clients, size_t requests_per_client,
                const xsd::Schema& source, const xsd::Schema& target) {
  // Capacity admits one request at a time with a short queue: 1x load
  // (a single closed-loop client) never sheds, 4x and 16x must.
  core::MatchEngineOptions options;
  options.threads = 2;
  options.cache_capacity = 0;  // every request pays the full match
  options.overload.admission.max_inflight_cost = 1;
  options.overload.admission.max_queue_depth = 2;
  core::MatchEngine engine(options);

  LoadPoint point;
  point.clients = clients;
  point.offered = clients * requests_per_client;
  std::atomic<size_t> ok{0}, shed{0}, degraded{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const steady_clock::time_point start = steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&]() {
      for (size_t r = 0; r < requests_per_client; ++r) {
        const core::EngineMatchResult result =
            engine.Match(source, target, core::EngineRequestOptions{});
        if (result.ok()) {
          ok.fetch_add(1);
          if (result.result.mode != MatchMode::kFull) {
            degraded.fetch_add(1);
          }
        } else if (result.status.code() == StatusCode::kOverloaded) {
          shed.fetch_add(1);
        } else {
          std::fprintf(stderr, "untyped failure: %s\n",
                       result.status.ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  point.elapsed = duration_cast<microseconds>(steady_clock::now() - start);
  point.ok = ok.load();
  point.shed = shed.load();
  point.degraded = degraded.load();
  return point;
}

}  // namespace

int main() {
  datagen::GeneratorOptions gen;
  gen.seed = 7101;
  gen.element_count = 16;
  gen.name = "OverloadBenchSource";
  const xsd::Schema source = datagen::GenerateSchema(gen);
  gen.seed = 7102;
  gen.name = "OverloadBenchTarget";
  const xsd::Schema target = datagen::GenerateSchema(gen);

  constexpr size_t kRequestsPerClient = 64;
  std::printf("== Overload: goodput and shed rate vs offered load ==\n\n");
  std::printf("%-8s %9s %9s %9s %9s %12s %10s\n", "load", "offered", "ok",
              "shed", "degraded", "goodput/s", "shed rate");
  for (const size_t clients : {size_t{1}, size_t{4}, size_t{16}}) {
    const LoadPoint p = Drive(clients, kRequestsPerClient, source, target);
    const double secs = static_cast<double>(p.elapsed.count()) / 1e6;
    const double goodput = secs > 0.0 ? static_cast<double>(p.ok) / secs : 0.0;
    const double shed_rate = p.offered > 0
                                 ? static_cast<double>(p.shed) /
                                       static_cast<double>(p.offered)
                                 : 0.0;
    char label[32];
    std::snprintf(label, sizeof(label), "%zux", p.clients);
    std::printf("%-8s %9zu %9zu %9zu %9zu %12.1f %9.1f%%\n", label, p.offered,
                p.ok, p.shed, p.degraded, goodput, 100.0 * shed_rate);
  }
  std::printf("\nCapacity admits one request at a time (queue depth 2): the\n"
              "1x client never sheds; past saturation goodput stays flat and\n"
              "the excess is rejected with typed kOverloaded, never queued\n"
              "into collapse.\n");

  // How much quality does each rung of the degradation ladder give up?
  // Every corpus task, evaluated against its gold standard in all three
  // modes (Protein excluded: its synthetic scale is a runtime bench).
  std::printf("\n== Degradation quality: overall / F1 vs gold, per mode ==\n\n");
  std::printf("%-10s %18s %18s %18s\n", "task", "full", "capped-depth(3)",
              "label-only");
  const core::QMatch matcher;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "Protein") continue;
    const xsd::Schema task_source = task.source();
    const xsd::Schema task_target = task.target();
    const eval::GoldStandard gold = task.gold();
    std::printf("%-10s", task.name.c_str());
    for (const MatchMode mode :
         {MatchMode::kFull, MatchMode::kCappedDepth, MatchMode::kLabelOnly}) {
      core::TreeMatchOptions tree;
      tree.mode = mode;
      const eval::QualityMetrics scored = eval::Evaluate(
          matcher.Analyze(task_source, task_target, nullptr, nullptr, tree)
              .result(),
          gold);
      std::printf("      %.3f / %.3f", scored.overall, scored.f1);
    }
    std::printf("\n");
  }
  return 0;
}
