// Reproduces Figure 9 of the paper: the overall QoM reported by the three
// algorithms on two schemas that are structurally identical but
// linguistically disjoint — the Library (Fig. 7) and Human (Fig. 8)
// schemas. Expected shape: linguistic near zero, structural near one, and
// the hybrid "gravitating towards the higher individual algorithm" value.
//
// We additionally run the dual extreme the paper discusses ("or vice
// versa"): linguistically identical but structurally scrambled schemas.

#include <cstdio>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/report.h"
#include "lingua/default_thesaurus.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"
#include "xsd/builder.h"

namespace {

using namespace qmatch;

// Same vocabulary as Library (Fig. 7) but a completely different shape:
// flat where Library nests, nested where it is flat.
xsd::Schema MakeScrambledLibrary() {
  xsd::SchemaBuilder b("LibraryFlat");
  xsd::SchemaNode* root = b.Root("Library");
  b.Element(root, "Title", xsd::XsdType::kInt);
  xsd::SchemaNode* number = b.Element(root, "Number");
  xsd::SchemaNode* character = b.Element(number, "Character");
  xsd::SchemaNode* writer = b.Element(character, "Writer");
  b.Element(writer, "Book", xsd::XsdType::kDate);
  return std::move(b).Build();
}

}  // namespace

int main() {
  match::LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  match::StructuralMatcher structural;
  core::QMatch hybrid;
  const Matcher* algorithms[] = {&linguistic, &structural, &hybrid};

  std::printf(
      "== Figure 9: structurally identical, linguistically disjoint ==\n\n");
  {
    xsd::Schema library = datagen::MakeLibrary();
    xsd::Schema human = datagen::MakeHuman();
    eval::TextTable table({"algorithm", "schema QoM"});
    for (const Matcher* matcher : algorithms) {
      MatchResult result = matcher->Match(library, human);
      table.AddRow({std::string(matcher->name()),
                    eval::Num(result.schema_qom)});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf(
        "shape check (paper): linguistic low, structural high, hybrid "
        "gravitates towards the higher value.\n\n");
  }

  std::printf(
      "== dual extreme: same vocabulary, scrambled structure ==\n\n");
  {
    xsd::Schema library = datagen::MakeLibrary();
    xsd::Schema scrambled = MakeScrambledLibrary();
    eval::TextTable table({"algorithm", "schema QoM"});
    for (const Matcher* matcher : algorithms) {
      MatchResult result = matcher->Match(library, scrambled);
      table.AddRow({std::string(matcher->name()),
                    eval::Num(result.schema_qom)});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf(
        "shape check: linguistic high, structural lower, hybrid between.\n");
  }
  return 0;
}
