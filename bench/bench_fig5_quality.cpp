// Reproduces Figure 5 of the paper: the Overall measure of match quality
// (Overall = Recall * (2 - 1/Precision)) of the linguistic, structural and
// hybrid algorithms on the PO, BOOK, DCMD and Protein match tasks.
//
// Expected shape (paper): the hybrid matches or beats the individual
// algorithms whenever they are in the same ballpark; when one is far weaker
// (label-blind structural matching on same-vocabulary domains) the hybrid
// sits between the two.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "lingua/default_thesaurus.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"

int main() {
  using namespace qmatch;

  match::LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  match::StructuralMatcher structural;
  core::QMatch hybrid;
  const Matcher* algorithms[] = {&linguistic, &structural, &hybrid};

  std::printf("== Figure 5: Overall measure of match quality ==\n\n");
  eval::TextTable overall_table(
      {"task", "linguistic", "structural", "hybrid"});
  eval::TextTable detail_table({"task", "algorithm", "precision", "recall",
                                "overall", "f1"});

  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "XBench") continue;  // Fig. 5 uses PO/BOOK/DCMD/Protein
    xsd::Schema source = task.source();
    xsd::Schema target = task.target();
    eval::GoldStandard gold = task.gold();
    std::vector<std::string> row = {task.name};
    for (const Matcher* matcher : algorithms) {
      eval::QualityMetrics metrics =
          eval::Evaluate(matcher->Match(source, target), gold);
      row.push_back(eval::Num(metrics.overall));
      detail_table.AddRow({task.name, std::string(matcher->name()),
                           eval::Num(metrics.precision),
                           eval::Num(metrics.recall),
                           eval::Num(metrics.overall), eval::Num(metrics.f1)});
    }
    overall_table.AddRow(row);
  }
  std::printf("%s\n", overall_table.ToString().c_str());
  std::printf("detail:\n%s", detail_table.ToString().c_str());
  return 0;
}
