// The comparison the paper's conclusion names as ongoing work: QMatch
// (hybrid) vs CUPID vs a COMA-style composite of the individual matchers,
// plus the Nierman-Jagadish tree-edit-distance similarity as a structural
// reference point, across all five match tasks.

#include <cstdio>
#include <memory>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "lingua/default_thesaurus.h"
#include "match/composite_matcher.h"
#include "match/cupid_matcher.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"
#include "match/tree_edit_distance.h"

int main() {
  using namespace qmatch;

  match::LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  match::StructuralMatcher structural;
  match::CupidMatcher cupid(&lingua::DefaultThesaurus());
  core::QMatch hybrid;
  match::CompositeMatcher composite({&linguistic, &structural, &hybrid});

  std::printf(
      "== Future-work comparison: QMatch vs CUPID vs COMA-style composite "
      "==\n\n");
  eval::TextTable table({"task", "algorithm", "P", "I", "precision", "recall",
                         "overall", "f1"});
  const Matcher* algorithms[] = {&cupid, &hybrid, &composite};
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    xsd::Schema source = task.source();
    xsd::Schema target = task.target();
    eval::GoldStandard gold = task.gold();
    for (const Matcher* matcher : algorithms) {
      eval::QualityMetrics metrics =
          eval::Evaluate(matcher->Match(source, target), gold);
      table.AddRow({task.name, std::string(matcher->name()),
                    std::to_string(metrics.returned),
                    std::to_string(metrics.true_positives),
                    eval::Num(metrics.precision), eval::Num(metrics.recall),
                    eval::Num(metrics.overall), eval::Num(metrics.f1)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  // Tree-edit-distance similarity as a whole-schema structural reference
  // (Nierman-Jagadish, cited in the paper's related work). Quadratic in
  // tree size, so only the hand-built schemas.
  std::printf("== Tree-edit-distance similarity (whole schemas) ==\n\n");
  eval::TextTable ted_table({"task", "TED", "TED similarity"});
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "Protein") continue;
    xsd::Schema source = task.source();
    xsd::Schema target = task.target();
    double distance =
        match::TreeEditDistance(*source.root(), *target.root());
    double sim = match::TedSimilarity(*source.root(), *target.root());
    ted_table.AddRow({task.name, eval::Num(distance, 0), eval::Num(sim)});
  }
  std::printf("%s", ted_table.ToString().c_str());
  return 0;
}
