// Reproduces Table 2 / Section 5.1 ("Determining Weights of the Different
// Axes"): sweep the four axis weights over a simplex grid, score each
// setting against the manually determined matches of tasks from several
// domains, and report (a) the best settings, and (b) the per-axis ranges
// within 5% of the best — the paper reports L in 0.25-0.4, P and H in
// 0.1-0.2, C in 0.3-0.5, and picks L=0.3 P=0.2 H=0.1 C=0.4.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "eval/report.h"

int main() {
  using namespace qmatch;

  struct TaskData {
    std::string name;
    xsd::Schema source;
    xsd::Schema target;
    eval::GoldStandard gold;
  };
  std::vector<TaskData> tasks;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "Protein") continue;  // keep the sweep quick
    tasks.push_back({task.name, task.source(), task.target(), task.gold()});
  }

  struct Setting {
    qom::Weights weights;
    double mean_overall;
    double mean_f1;
  };
  std::vector<Setting> settings;

  const double step = 0.05;
  for (double wl = 0.0; wl <= 1.0 + 1e-9; wl += step) {
    for (double wp = 0.0; wl + wp <= 1.0 + 1e-9; wp += step) {
      for (double wh = 0.0; wl + wp + wh <= 1.0 + 1e-9; wh += step) {
        double wc = 1.0 - wl - wp - wh;
        core::QMatchConfig config;
        config.weights = qom::Weights{wl, wp, wh, wc};
        core::QMatch matcher(config);
        double overall = 0.0;
        double f1 = 0.0;
        for (const TaskData& task : tasks) {
          eval::QualityMetrics metrics =
              eval::Evaluate(matcher.Match(task.source, task.target),
                             task.gold);
          overall += metrics.overall;
          f1 += metrics.f1;
        }
        settings.push_back({config.weights,
                            overall / static_cast<double>(tasks.size()),
                            f1 / static_cast<double>(tasks.size())});
      }
    }
  }

  std::sort(settings.begin(), settings.end(),
            [](const Setting& a, const Setting& b) {
              return a.mean_overall > b.mean_overall;
            });

  std::printf("== Table 2 / Section 5.1: weight sweep (%zu settings, step "
              "%.2f, tasks:",
              settings.size(), step);
  for (const TaskData& task : tasks) std::printf(" %s", task.name.c_str());
  std::printf(") ==\n\n");

  eval::TextTable top({"rank", "WL", "WP", "WH", "WC", "mean overall",
                       "mean f1"});
  for (size_t i = 0; i < std::min<size_t>(10, settings.size()); ++i) {
    const Setting& s = settings[i];
    top.AddRow({std::to_string(i + 1), eval::Num(s.weights.label, 2),
                eval::Num(s.weights.properties, 2),
                eval::Num(s.weights.level, 2),
                eval::Num(s.weights.children, 2),
                eval::Num(s.mean_overall), eval::Num(s.mean_f1)});
  }
  std::printf("%s\n", top.ToString().c_str());

  // Per-axis ranges among settings within 5% of the best.
  double best = settings.front().mean_overall;
  double lo_l = 1, hi_l = 0, lo_p = 1, hi_p = 0, lo_h = 1, hi_h = 0,
         lo_c = 1, hi_c = 0;
  size_t near_best = 0;
  for (const Setting& s : settings) {
    if (s.mean_overall < best - 0.05) continue;
    ++near_best;
    lo_l = std::min(lo_l, s.weights.label);
    hi_l = std::max(hi_l, s.weights.label);
    lo_p = std::min(lo_p, s.weights.properties);
    hi_p = std::max(hi_p, s.weights.properties);
    lo_h = std::min(lo_h, s.weights.level);
    hi_h = std::max(hi_h, s.weights.level);
    lo_c = std::min(lo_c, s.weights.children);
    hi_c = std::max(hi_c, s.weights.children);
  }
  std::printf("ranges within 0.05 of the best (%zu settings):\n", near_best);
  std::printf("  label      %.2f - %.2f   (paper: 0.25 - 0.40)\n", lo_l, hi_l);
  std::printf("  properties %.2f - %.2f   (paper: 0.10 - 0.20)\n", lo_p, hi_p);
  std::printf("  level      %.2f - %.2f   (paper: 0.10 - 0.20)\n", lo_h, hi_h);
  std::printf("  children   %.2f - %.2f   (paper: 0.30 - 0.50)\n", lo_c, hi_c);

  core::QMatchConfig paper_config;  // defaults = Table 2 weights
  core::QMatch paper_matcher(paper_config);
  double overall = 0.0;
  for (const TaskData& task : tasks) {
    overall +=
        eval::Evaluate(paper_matcher.Match(task.source, task.target), task.gold)
            .overall;
  }
  std::printf(
      "\npaper's chosen weights {L=0.3 P=0.2 H=0.1 C=0.4}: mean overall "
      "%.3f (best grid setting: %.3f)\n",
      overall / static_cast<double>(tasks.size()), best);
  return 0;
}
