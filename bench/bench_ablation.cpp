// Ablation studies for the design choices called out in DESIGN.md:
//   1. threshold sensitivity (the Fig. 3 threshold, swept 0.1..0.9);
//   2. axis ablation (zero one axis weight at a time, renormalised);
//   3. child accumulation: best-match (ours) vs the paper-literal
//      pseudo-code accumulation;
//   4. thesaurus: the full linguistic resource vs pure string matching.

#include <cstdio>
#include <vector>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace {

using namespace qmatch;

struct TaskData {
  std::string name;
  xsd::Schema source;
  xsd::Schema target;
  eval::GoldStandard gold;
};

std::vector<TaskData> LoadTasks() {
  std::vector<TaskData> tasks;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "Protein") continue;
    tasks.push_back({task.name, task.source(), task.target(), task.gold()});
  }
  return tasks;
}

double MeanOverall(const core::QMatch& matcher,
                   const std::vector<TaskData>& tasks) {
  double sum = 0.0;
  for (const TaskData& task : tasks) {
    sum += eval::Evaluate(matcher.Match(task.source, task.target), task.gold)
               .overall;
  }
  return sum / static_cast<double>(tasks.size());
}

double MeanF1(const core::QMatch& matcher, const std::vector<TaskData>& tasks) {
  double sum = 0.0;
  for (const TaskData& task : tasks) {
    sum += eval::Evaluate(matcher.Match(task.source, task.target), task.gold).f1;
  }
  return sum / static_cast<double>(tasks.size());
}

}  // namespace

int main() {
  std::vector<TaskData> tasks = LoadTasks();

  std::printf("== Ablation 1: threshold sensitivity (hybrid) ==\n\n");
  {
    eval::TextTable table({"threshold", "mean overall", "mean f1"});
    for (double threshold = 0.1; threshold <= 0.91; threshold += 0.1) {
      core::QMatchConfig config;
      config.threshold = threshold;
      core::QMatch matcher(config);
      table.AddRow({eval::Num(threshold, 1),
                    eval::Num(MeanOverall(matcher, tasks)),
                    eval::Num(MeanF1(matcher, tasks))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("== Ablation 2: drop one axis (weights renormalised) ==\n\n");
  {
    struct Variant {
      const char* name;
      qom::Weights weights;
    };
    const Variant variants[] = {
        {"paper weights", qom::kPaperWeights},
        {"no label", qom::Weights{0.0, 0.2, 0.1, 0.4}.Normalized()},
        {"no properties", qom::Weights{0.3, 0.0, 0.1, 0.4}.Normalized()},
        {"no level", qom::Weights{0.3, 0.2, 0.0, 0.4}.Normalized()},
        {"no children", qom::Weights{0.3, 0.2, 0.1, 0.0}.Normalized()},
        {"uniform", qom::kUniformWeights},
    };
    eval::TextTable table({"variant", "WL", "WP", "WH", "WC", "mean overall",
                           "mean f1"});
    for (const Variant& variant : variants) {
      core::QMatchConfig config;
      config.weights = variant.weights;
      core::QMatch matcher(config);
      table.AddRow({variant.name, eval::Num(variant.weights.label, 2),
                    eval::Num(variant.weights.properties, 2),
                    eval::Num(variant.weights.level, 2),
                    eval::Num(variant.weights.children, 2),
                    eval::Num(MeanOverall(matcher, tasks)),
                    eval::Num(MeanF1(matcher, tasks))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("== Ablation 3: children accumulation mode ==\n\n");
  {
    eval::TextTable table({"mode", "mean overall", "mean f1"});
    for (auto mode : {core::QMatchConfig::ChildAccumulation::kBestMatch,
                      core::QMatchConfig::ChildAccumulation::kPaperLiteral}) {
      core::QMatchConfig config;
      config.child_accumulation = mode;
      core::QMatch matcher(config);
      const char* name =
          mode == core::QMatchConfig::ChildAccumulation::kBestMatch
              ? "best-match (Eq. 3-4)"
              : "paper-literal (Fig. 3 pseudo-code)";
      table.AddRow({name, eval::Num(MeanOverall(matcher, tasks)),
                    eval::Num(MeanF1(matcher, tasks))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("== Ablation 4: level-axis mode ==\n\n");
  {
    eval::TextTable table({"mode", "mean overall", "mean f1"});
    for (auto mode : {core::QMatchConfig::LevelMode::kBinary,
                      core::QMatchConfig::LevelMode::kGraded}) {
      core::QMatchConfig config;
      config.level_mode = mode;
      core::QMatch matcher(config);
      const char* name = mode == core::QMatchConfig::LevelMode::kBinary
                             ? "binary (paper Section 3)"
                             : "graded 1/(1+|gap|)";
      table.AddRow({name, eval::Num(MeanOverall(matcher, tasks)),
                    eval::Num(MeanF1(matcher, tasks))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("== Ablation 5: mapping-extraction strategy ==\n\n");
  {
    eval::TextTable table({"strategy", "mean overall", "mean f1"});
    for (auto strategy : {match::AssignmentStrategy::kBestPerSource,
                          match::AssignmentStrategy::kGreedyGlobal,
                          match::AssignmentStrategy::kStableMarriage}) {
      core::QMatchConfig config;
      config.assignment = strategy;
      core::QMatch matcher(config);
      table.AddRow({std::string(match::AssignmentStrategyName(strategy)),
                    eval::Num(MeanOverall(matcher, tasks)),
                    eval::Num(MeanF1(matcher, tasks))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("== Ablation 6: linguistic resource ==\n\n");
  {
    eval::TextTable table({"resource", "mean overall", "mean f1"});
    {
      core::QMatch with_thesaurus;  // default thesaurus
      table.AddRow({"default thesaurus",
                    eval::Num(MeanOverall(with_thesaurus, tasks)),
                    eval::Num(MeanF1(with_thesaurus, tasks))});
    }
    {
      core::QMatch without(core::QMatchConfig{}, /*thesaurus=*/nullptr);
      table.AddRow({"none (string similarity only)",
                    eval::Num(MeanOverall(without, tasks)),
                    eval::Num(MeanF1(without, tasks))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
