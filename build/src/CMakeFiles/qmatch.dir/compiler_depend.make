# Empty compiler generated dependencies file for qmatch.
# This may be replaced when dependencies are built.
