file(REMOVE_RECURSE
  "libqmatch.a"
)
