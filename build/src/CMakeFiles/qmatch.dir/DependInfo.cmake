
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/file_util.cc" "src/CMakeFiles/qmatch.dir/common/file_util.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/common/file_util.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/qmatch.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/qmatch.dir/common/random.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/qmatch.dir/common/status.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/qmatch.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/qmatch.cc" "src/CMakeFiles/qmatch.dir/core/qmatch.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/core/qmatch.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/CMakeFiles/qmatch.dir/core/tuner.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/core/tuner.cc.o.d"
  "/root/repo/src/datagen/corpus.cc" "src/CMakeFiles/qmatch.dir/datagen/corpus.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/datagen/corpus.cc.o.d"
  "/root/repo/src/datagen/docgen.cc" "src/CMakeFiles/qmatch.dir/datagen/docgen.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/datagen/docgen.cc.o.d"
  "/root/repo/src/datagen/generator.cc" "src/CMakeFiles/qmatch.dir/datagen/generator.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/datagen/generator.cc.o.d"
  "/root/repo/src/datagen/perturb.cc" "src/CMakeFiles/qmatch.dir/datagen/perturb.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/datagen/perturb.cc.o.d"
  "/root/repo/src/eval/gold.cc" "src/CMakeFiles/qmatch.dir/eval/gold.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/eval/gold.cc.o.d"
  "/root/repo/src/eval/match_report.cc" "src/CMakeFiles/qmatch.dir/eval/match_report.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/eval/match_report.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/qmatch.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/rank.cc" "src/CMakeFiles/qmatch.dir/eval/rank.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/eval/rank.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/qmatch.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/eval/report.cc.o.d"
  "/root/repo/src/lingua/default_thesaurus.cc" "src/CMakeFiles/qmatch.dir/lingua/default_thesaurus.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/lingua/default_thesaurus.cc.o.d"
  "/root/repo/src/lingua/name_match.cc" "src/CMakeFiles/qmatch.dir/lingua/name_match.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/lingua/name_match.cc.o.d"
  "/root/repo/src/lingua/string_sim.cc" "src/CMakeFiles/qmatch.dir/lingua/string_sim.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/lingua/string_sim.cc.o.d"
  "/root/repo/src/lingua/thesaurus.cc" "src/CMakeFiles/qmatch.dir/lingua/thesaurus.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/lingua/thesaurus.cc.o.d"
  "/root/repo/src/lingua/thesaurus_io.cc" "src/CMakeFiles/qmatch.dir/lingua/thesaurus_io.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/lingua/thesaurus_io.cc.o.d"
  "/root/repo/src/lingua/tokenize.cc" "src/CMakeFiles/qmatch.dir/lingua/tokenize.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/lingua/tokenize.cc.o.d"
  "/root/repo/src/match/assignment.cc" "src/CMakeFiles/qmatch.dir/match/assignment.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/assignment.cc.o.d"
  "/root/repo/src/match/composite_matcher.cc" "src/CMakeFiles/qmatch.dir/match/composite_matcher.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/composite_matcher.cc.o.d"
  "/root/repo/src/match/cupid_matcher.cc" "src/CMakeFiles/qmatch.dir/match/cupid_matcher.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/cupid_matcher.cc.o.d"
  "/root/repo/src/match/instance_matcher.cc" "src/CMakeFiles/qmatch.dir/match/instance_matcher.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/instance_matcher.cc.o.d"
  "/root/repo/src/match/linguistic_matcher.cc" "src/CMakeFiles/qmatch.dir/match/linguistic_matcher.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/linguistic_matcher.cc.o.d"
  "/root/repo/src/match/matcher.cc" "src/CMakeFiles/qmatch.dir/match/matcher.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/matcher.cc.o.d"
  "/root/repo/src/match/property_matcher.cc" "src/CMakeFiles/qmatch.dir/match/property_matcher.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/property_matcher.cc.o.d"
  "/root/repo/src/match/similarity_matrix.cc" "src/CMakeFiles/qmatch.dir/match/similarity_matrix.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/similarity_matrix.cc.o.d"
  "/root/repo/src/match/structural_matcher.cc" "src/CMakeFiles/qmatch.dir/match/structural_matcher.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/structural_matcher.cc.o.d"
  "/root/repo/src/match/tree_edit_distance.cc" "src/CMakeFiles/qmatch.dir/match/tree_edit_distance.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/match/tree_edit_distance.cc.o.d"
  "/root/repo/src/qom/taxonomy.cc" "src/CMakeFiles/qmatch.dir/qom/taxonomy.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/qom/taxonomy.cc.o.d"
  "/root/repo/src/qom/weights.cc" "src/CMakeFiles/qmatch.dir/qom/weights.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/qom/weights.cc.o.d"
  "/root/repo/src/xml/cursor.cc" "src/CMakeFiles/qmatch.dir/xml/cursor.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xml/cursor.cc.o.d"
  "/root/repo/src/xml/dom.cc" "src/CMakeFiles/qmatch.dir/xml/dom.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xml/dom.cc.o.d"
  "/root/repo/src/xml/escape.cc" "src/CMakeFiles/qmatch.dir/xml/escape.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xml/escape.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/qmatch.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/writer.cc" "src/CMakeFiles/qmatch.dir/xml/writer.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xml/writer.cc.o.d"
  "/root/repo/src/xml/xpath.cc" "src/CMakeFiles/qmatch.dir/xml/xpath.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xml/xpath.cc.o.d"
  "/root/repo/src/xsd/builder.cc" "src/CMakeFiles/qmatch.dir/xsd/builder.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xsd/builder.cc.o.d"
  "/root/repo/src/xsd/infer.cc" "src/CMakeFiles/qmatch.dir/xsd/infer.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xsd/infer.cc.o.d"
  "/root/repo/src/xsd/parser.cc" "src/CMakeFiles/qmatch.dir/xsd/parser.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xsd/parser.cc.o.d"
  "/root/repo/src/xsd/schema.cc" "src/CMakeFiles/qmatch.dir/xsd/schema.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xsd/schema.cc.o.d"
  "/root/repo/src/xsd/stats.cc" "src/CMakeFiles/qmatch.dir/xsd/stats.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xsd/stats.cc.o.d"
  "/root/repo/src/xsd/types.cc" "src/CMakeFiles/qmatch.dir/xsd/types.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xsd/types.cc.o.d"
  "/root/repo/src/xsd/validate.cc" "src/CMakeFiles/qmatch.dir/xsd/validate.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xsd/validate.cc.o.d"
  "/root/repo/src/xsd/writer.cc" "src/CMakeFiles/qmatch.dir/xsd/writer.cc.o" "gcc" "src/CMakeFiles/qmatch.dir/xsd/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
