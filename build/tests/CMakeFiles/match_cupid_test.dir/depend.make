# Empty dependencies file for match_cupid_test.
# This may be replaced when dependencies are built.
