file(REMOVE_RECURSE
  "CMakeFiles/match_cupid_test.dir/match_cupid_test.cpp.o"
  "CMakeFiles/match_cupid_test.dir/match_cupid_test.cpp.o.d"
  "match_cupid_test"
  "match_cupid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_cupid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
