file(REMOVE_RECURSE
  "CMakeFiles/xsd_parser_test.dir/xsd_parser_test.cpp.o"
  "CMakeFiles/xsd_parser_test.dir/xsd_parser_test.cpp.o.d"
  "xsd_parser_test"
  "xsd_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
