# Empty dependencies file for xsd_parser_test.
# This may be replaced when dependencies are built.
