file(REMOVE_RECURSE
  "CMakeFiles/qom_test.dir/qom_test.cpp.o"
  "CMakeFiles/qom_test.dir/qom_test.cpp.o.d"
  "qom_test"
  "qom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
