# Empty dependencies file for qom_test.
# This may be replaced when dependencies are built.
