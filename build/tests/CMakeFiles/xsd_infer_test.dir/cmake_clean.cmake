file(REMOVE_RECURSE
  "CMakeFiles/xsd_infer_test.dir/xsd_infer_test.cpp.o"
  "CMakeFiles/xsd_infer_test.dir/xsd_infer_test.cpp.o.d"
  "xsd_infer_test"
  "xsd_infer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_infer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
