# Empty compiler generated dependencies file for xsd_infer_test.
# This may be replaced when dependencies are built.
