file(REMOVE_RECURSE
  "CMakeFiles/datagen_docgen_test.dir/datagen_docgen_test.cpp.o"
  "CMakeFiles/datagen_docgen_test.dir/datagen_docgen_test.cpp.o.d"
  "datagen_docgen_test"
  "datagen_docgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_docgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
