# Empty dependencies file for match_composite_test.
# This may be replaced when dependencies are built.
