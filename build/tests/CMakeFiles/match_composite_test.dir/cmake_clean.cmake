file(REMOVE_RECURSE
  "CMakeFiles/match_composite_test.dir/match_composite_test.cpp.o"
  "CMakeFiles/match_composite_test.dir/match_composite_test.cpp.o.d"
  "match_composite_test"
  "match_composite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_composite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
