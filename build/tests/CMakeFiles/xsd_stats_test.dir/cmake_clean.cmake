file(REMOVE_RECURSE
  "CMakeFiles/xsd_stats_test.dir/xsd_stats_test.cpp.o"
  "CMakeFiles/xsd_stats_test.dir/xsd_stats_test.cpp.o.d"
  "xsd_stats_test"
  "xsd_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
