# Empty dependencies file for xsd_stats_test.
# This may be replaced when dependencies are built.
