file(REMOVE_RECURSE
  "CMakeFiles/lingua_name_match_test.dir/lingua_name_match_test.cpp.o"
  "CMakeFiles/lingua_name_match_test.dir/lingua_name_match_test.cpp.o.d"
  "lingua_name_match_test"
  "lingua_name_match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lingua_name_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
