# Empty compiler generated dependencies file for lingua_name_match_test.
# This may be replaced when dependencies are built.
