file(REMOVE_RECURSE
  "CMakeFiles/match_instance_test.dir/match_instance_test.cpp.o"
  "CMakeFiles/match_instance_test.dir/match_instance_test.cpp.o.d"
  "match_instance_test"
  "match_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
