file(REMOVE_RECURSE
  "CMakeFiles/match_baselines_test.dir/match_baselines_test.cpp.o"
  "CMakeFiles/match_baselines_test.dir/match_baselines_test.cpp.o.d"
  "match_baselines_test"
  "match_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
