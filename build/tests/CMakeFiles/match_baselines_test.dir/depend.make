# Empty dependencies file for match_baselines_test.
# This may be replaced when dependencies are built.
