file(REMOVE_RECURSE
  "CMakeFiles/xml_escape_test.dir/xml_escape_test.cpp.o"
  "CMakeFiles/xml_escape_test.dir/xml_escape_test.cpp.o.d"
  "xml_escape_test"
  "xml_escape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_escape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
