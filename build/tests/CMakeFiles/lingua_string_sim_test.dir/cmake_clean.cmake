file(REMOVE_RECURSE
  "CMakeFiles/lingua_string_sim_test.dir/lingua_string_sim_test.cpp.o"
  "CMakeFiles/lingua_string_sim_test.dir/lingua_string_sim_test.cpp.o.d"
  "lingua_string_sim_test"
  "lingua_string_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lingua_string_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
