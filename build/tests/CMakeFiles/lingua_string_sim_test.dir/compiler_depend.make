# Empty compiler generated dependencies file for lingua_string_sim_test.
# This may be replaced when dependencies are built.
