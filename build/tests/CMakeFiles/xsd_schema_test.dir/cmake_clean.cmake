file(REMOVE_RECURSE
  "CMakeFiles/xsd_schema_test.dir/xsd_schema_test.cpp.o"
  "CMakeFiles/xsd_schema_test.dir/xsd_schema_test.cpp.o.d"
  "xsd_schema_test"
  "xsd_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
