file(REMOVE_RECURSE
  "CMakeFiles/match_property_test.dir/match_property_test.cpp.o"
  "CMakeFiles/match_property_test.dir/match_property_test.cpp.o.d"
  "match_property_test"
  "match_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
