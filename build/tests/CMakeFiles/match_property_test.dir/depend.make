# Empty dependencies file for match_property_test.
# This may be replaced when dependencies are built.
