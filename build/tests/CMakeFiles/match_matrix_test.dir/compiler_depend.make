# Empty compiler generated dependencies file for match_matrix_test.
# This may be replaced when dependencies are built.
