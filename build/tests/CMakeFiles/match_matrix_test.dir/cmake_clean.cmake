file(REMOVE_RECURSE
  "CMakeFiles/match_matrix_test.dir/match_matrix_test.cpp.o"
  "CMakeFiles/match_matrix_test.dir/match_matrix_test.cpp.o.d"
  "match_matrix_test"
  "match_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
