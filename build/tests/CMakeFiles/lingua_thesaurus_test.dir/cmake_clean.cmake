file(REMOVE_RECURSE
  "CMakeFiles/lingua_thesaurus_test.dir/lingua_thesaurus_test.cpp.o"
  "CMakeFiles/lingua_thesaurus_test.dir/lingua_thesaurus_test.cpp.o.d"
  "lingua_thesaurus_test"
  "lingua_thesaurus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lingua_thesaurus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
