# Empty compiler generated dependencies file for lingua_thesaurus_test.
# This may be replaced when dependencies are built.
