# Empty dependencies file for xml_xpath_test.
# This may be replaced when dependencies are built.
