file(REMOVE_RECURSE
  "CMakeFiles/xml_xpath_test.dir/xml_xpath_test.cpp.o"
  "CMakeFiles/xml_xpath_test.dir/xml_xpath_test.cpp.o.d"
  "xml_xpath_test"
  "xml_xpath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_xpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
