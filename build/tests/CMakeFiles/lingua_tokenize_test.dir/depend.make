# Empty dependencies file for lingua_tokenize_test.
# This may be replaced when dependencies are built.
