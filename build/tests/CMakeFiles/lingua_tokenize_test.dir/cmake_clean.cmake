file(REMOVE_RECURSE
  "CMakeFiles/lingua_tokenize_test.dir/lingua_tokenize_test.cpp.o"
  "CMakeFiles/lingua_tokenize_test.dir/lingua_tokenize_test.cpp.o.d"
  "lingua_tokenize_test"
  "lingua_tokenize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lingua_tokenize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
