file(REMOVE_RECURSE
  "CMakeFiles/xsd_writer_test.dir/xsd_writer_test.cpp.o"
  "CMakeFiles/xsd_writer_test.dir/xsd_writer_test.cpp.o.d"
  "xsd_writer_test"
  "xsd_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
