# Empty dependencies file for xsd_writer_test.
# This may be replaced when dependencies are built.
