file(REMOVE_RECURSE
  "CMakeFiles/core_qmatch_test.dir/core_qmatch_test.cpp.o"
  "CMakeFiles/core_qmatch_test.dir/core_qmatch_test.cpp.o.d"
  "core_qmatch_test"
  "core_qmatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_qmatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
