# Empty compiler generated dependencies file for core_qmatch_test.
# This may be replaced when dependencies are built.
