# Empty dependencies file for match_ted_test.
# This may be replaced when dependencies are built.
