file(REMOVE_RECURSE
  "CMakeFiles/match_ted_test.dir/match_ted_test.cpp.o"
  "CMakeFiles/match_ted_test.dir/match_ted_test.cpp.o.d"
  "match_ted_test"
  "match_ted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_ted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
