file(REMOVE_RECURSE
  "CMakeFiles/xsd_validate_test.dir/xsd_validate_test.cpp.o"
  "CMakeFiles/xsd_validate_test.dir/xsd_validate_test.cpp.o.d"
  "xsd_validate_test"
  "xsd_validate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
