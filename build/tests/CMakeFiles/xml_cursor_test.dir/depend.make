# Empty dependencies file for xml_cursor_test.
# This may be replaced when dependencies are built.
