file(REMOVE_RECURSE
  "CMakeFiles/xml_cursor_test.dir/xml_cursor_test.cpp.o"
  "CMakeFiles/xml_cursor_test.dir/xml_cursor_test.cpp.o.d"
  "xml_cursor_test"
  "xml_cursor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_cursor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
