# Empty dependencies file for qmatch_cli.
# This may be replaced when dependencies are built.
