file(REMOVE_RECURSE
  "CMakeFiles/qmatch_cli.dir/qmatch_cli.cpp.o"
  "CMakeFiles/qmatch_cli.dir/qmatch_cli.cpp.o.d"
  "qmatch_cli"
  "qmatch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
