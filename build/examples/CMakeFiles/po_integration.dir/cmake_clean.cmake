file(REMOVE_RECURSE
  "CMakeFiles/po_integration.dir/po_integration.cpp.o"
  "CMakeFiles/po_integration.dir/po_integration.cpp.o.d"
  "po_integration"
  "po_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/po_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
