# Empty compiler generated dependencies file for po_integration.
# This may be replaced when dependencies are built.
