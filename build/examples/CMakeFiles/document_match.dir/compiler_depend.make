# Empty compiler generated dependencies file for document_match.
# This may be replaced when dependencies are built.
