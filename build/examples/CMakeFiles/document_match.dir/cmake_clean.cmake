file(REMOVE_RECURSE
  "CMakeFiles/document_match.dir/document_match.cpp.o"
  "CMakeFiles/document_match.dir/document_match.cpp.o.d"
  "document_match"
  "document_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
