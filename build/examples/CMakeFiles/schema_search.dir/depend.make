# Empty dependencies file for schema_search.
# This may be replaced when dependencies are built.
