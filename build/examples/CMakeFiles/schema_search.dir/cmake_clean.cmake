file(REMOVE_RECURSE
  "CMakeFiles/schema_search.dir/schema_search.cpp.o"
  "CMakeFiles/schema_search.dir/schema_search.cpp.o.d"
  "schema_search"
  "schema_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
