file(REMOVE_RECURSE
  "../bench/bench_fig9_extremes"
  "../bench/bench_fig9_extremes.pdb"
  "CMakeFiles/bench_fig9_extremes.dir/bench_fig9_extremes.cpp.o"
  "CMakeFiles/bench_fig9_extremes.dir/bench_fig9_extremes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_extremes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
