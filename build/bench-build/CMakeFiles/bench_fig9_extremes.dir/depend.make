# Empty dependencies file for bench_fig9_extremes.
# This may be replaced when dependencies are built.
