# Empty dependencies file for bench_table1_schemas.
# This may be replaced when dependencies are built.
