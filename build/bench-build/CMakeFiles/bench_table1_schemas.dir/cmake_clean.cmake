file(REMOVE_RECURSE
  "../bench/bench_table1_schemas"
  "../bench/bench_table1_schemas.pdb"
  "CMakeFiles/bench_table1_schemas.dir/bench_table1_schemas.cpp.o"
  "CMakeFiles/bench_table1_schemas.dir/bench_table1_schemas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_schemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
