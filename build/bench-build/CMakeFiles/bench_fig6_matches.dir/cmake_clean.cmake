file(REMOVE_RECURSE
  "../bench/bench_fig6_matches"
  "../bench/bench_fig6_matches.pdb"
  "CMakeFiles/bench_fig6_matches.dir/bench_fig6_matches.cpp.o"
  "CMakeFiles/bench_fig6_matches.dir/bench_fig6_matches.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_matches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
