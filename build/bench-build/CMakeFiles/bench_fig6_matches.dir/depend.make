# Empty dependencies file for bench_fig6_matches.
# This may be replaced when dependencies are built.
