file(REMOVE_RECURSE
  "../bench/bench_table2_weights"
  "../bench/bench_table2_weights.pdb"
  "CMakeFiles/bench_table2_weights.dir/bench_table2_weights.cpp.o"
  "CMakeFiles/bench_table2_weights.dir/bench_table2_weights.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
