# Empty dependencies file for bench_table2_weights.
# This may be replaced when dependencies are built.
