// qmatch_cli: match two XML Schema (.xsd) files from disk — the tool a
// downstream user actually runs.
//
// Usage:
//   qmatch_cli <source.xsd> <target.xsd> [options]
//     --algo hybrid|linguistic|structural|cupid   (default hybrid)
//     --threshold <t>                             (default 0.5)
//     --assignment best|greedy|stable             (hybrid only)
//     --gold <gold.txt>      score against a "src -> tgt" line file
//     --dump-trees           print both schema trees first
//     --explain              per-axis QoM breakdown (hybrid only)
//     --report <out.md>      write a Markdown match report
//     --save-mapping <f>     save found correspondences in gold format
//     --thesaurus <f>        merge a domain dictionary (thesaurus text
//                            format) into the built-in one
//     --export-corpus <dir>  write the built-in corpus as .xsd files and exit
//
// Exit code: 0 on success, 1 on bad input, 2 on usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "common/file_util.h"
#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/match_report.h"
#include "eval/metrics.h"
#include "lingua/default_thesaurus.h"
#include "lingua/thesaurus_io.h"
#include "match/cupid_matcher.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"
#include "xsd/parser.h"
#include "xsd/writer.h"

namespace {

using namespace qmatch;

int Usage() {
  std::fprintf(stderr,
               "usage: qmatch_cli <source.xsd> <target.xsd>\n"
               "  [--algo hybrid|linguistic|structural|cupid]\n"
               "  [--threshold <t>] [--assignment best|greedy|stable]\n"
               "  [--gold <gold.txt>] [--dump-trees]\n"
               "or: qmatch_cli --export-corpus <dir>\n");
  return 2;
}

int ExportCorpus(const std::string& dir) {
  for (const datagen::CorpusEntry& entry : datagen::Corpus()) {
    xsd::Schema schema = entry.make();
    std::string path = dir + "/" + entry.name + ".xsd";
    Status status = WriteFile(path, xsd::ToXsd(schema));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu elements)\n", path.c_str(),
                schema.ElementCount());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--export-corpus") == 0) {
    return ExportCorpus(argv[2]);
  }
  if (argc < 3) return Usage();

  std::string source_path = argv[1];
  std::string target_path = argv[2];
  std::string algo = "hybrid";
  std::string assignment = "best";
  std::string gold_path;
  double threshold = 0.5;
  bool dump_trees = false;
  bool explain = false;
  std::string report_path;
  std::string save_mapping_path;
  std::string thesaurus_path;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--algo") {
      const char* v = next();
      if (v == nullptr) return Usage();
      algo = v;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return Usage();
      threshold = std::atof(v);
    } else if (arg == "--assignment") {
      const char* v = next();
      if (v == nullptr) return Usage();
      assignment = v;
    } else if (arg == "--gold") {
      const char* v = next();
      if (v == nullptr) return Usage();
      gold_path = v;
    } else if (arg == "--dump-trees") {
      dump_trees = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return Usage();
      report_path = v;
    } else if (arg == "--save-mapping") {
      const char* v = next();
      if (v == nullptr) return Usage();
      save_mapping_path = v;
    } else if (arg == "--thesaurus") {
      const char* v = next();
      if (v == nullptr) return Usage();
      thesaurus_path = v;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage();
    }
  }

  Result<std::string> source_text = ReadFile(source_path);
  Result<std::string> target_text = ReadFile(target_path);
  if (!source_text.ok() || !target_text.ok()) {
    std::fprintf(stderr, "%s\n%s\n", source_text.status().ToString().c_str(),
                 target_text.status().ToString().c_str());
    return 1;
  }
  Result<xsd::Schema> source = xsd::ParseSchema(*source_text);
  if (!source.ok()) {
    std::fprintf(stderr, "%s: %s\n", source_path.c_str(),
                 source.status().ToString().c_str());
    return 1;
  }
  Result<xsd::Schema> target = xsd::ParseSchema(*target_text);
  if (!target.ok()) {
    std::fprintf(stderr, "%s: %s\n", target_path.c_str(),
                 target.status().ToString().c_str());
    return 1;
  }

  if (dump_trees) {
    std::printf("%s\n%s\n", source->ToTreeString().c_str(),
                target->ToTreeString().c_str());
  }

  lingua::Thesaurus thesaurus = lingua::MakeDefaultThesaurus();
  if (!thesaurus_path.empty()) {
    Result<std::string> text = ReadFile(thesaurus_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    Status merged = lingua::MergeThesaurus(*text, &thesaurus);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.ToString().c_str());
      return 1;
    }
  }

  std::unique_ptr<Matcher> matcher;
  if (algo == "linguistic") {
    match::LinguisticMatcher::Options options;
    options.threshold = threshold;
    matcher =
        std::make_unique<match::LinguisticMatcher>(&thesaurus, options);
  } else if (algo == "structural") {
    match::StructuralMatcher::Options options;
    options.threshold = threshold;
    matcher = std::make_unique<match::StructuralMatcher>(options);
  } else if (algo == "cupid") {
    match::CupidMatcher::Options options;
    options.th_accept = threshold;
    matcher = std::make_unique<match::CupidMatcher>(&thesaurus, options);
  } else if (algo == "hybrid") {
    core::QMatchConfig config;
    config.threshold = threshold;
    if (assignment == "greedy") {
      config.assignment = match::AssignmentStrategy::kGreedyGlobal;
    } else if (assignment == "stable") {
      config.assignment = match::AssignmentStrategy::kStableMarriage;
    } else if (assignment != "best") {
      return Usage();
    }
    matcher = std::make_unique<core::QMatch>(config, &thesaurus);
  } else {
    return Usage();
  }

  MatchResult result = matcher->Match(*source, *target);
  std::printf("%s", result.ToString().c_str());

  if (explain) {
    if (algo != "hybrid") {
      std::fprintf(stderr, "--explain is only available for --algo hybrid\n");
    } else {
      core::QMatchConfig config;
      config.threshold = threshold;
      core::QMatch hybrid(config, &thesaurus);
      core::QMatch::Analysis analysis = hybrid.Analyze(*source, *target);
      std::printf("\n%s", analysis.ExplainCorrespondences().c_str());
    }
  }

  std::optional<eval::GoldStandard> gold;
  if (!gold_path.empty()) {
    Result<std::string> gold_text = ReadFile(gold_path);
    if (!gold_text.ok()) {
      std::fprintf(stderr, "%s\n", gold_text.status().ToString().c_str());
      return 1;
    }
    Result<eval::GoldStandard> parsed = eval::GoldStandard::Parse(*gold_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    gold = std::move(parsed).value();
    eval::QualityMetrics metrics = eval::Evaluate(result, *gold);
    std::printf("\nquality vs %s:\n  %s\n", gold_path.c_str(),
                metrics.ToString().c_str());
  }

  if (!save_mapping_path.empty()) {
    Status status = WriteFile(save_mapping_path,
                              eval::GoldStandard::FromMatchResult(result)
                                  .ToString());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("mapping written to %s\n", save_mapping_path.c_str());
  }

  if (!report_path.empty()) {
    std::string report = eval::RenderMatchReport(
        *source, *target, result, gold.has_value() ? &*gold : nullptr);
    Status status = WriteFile(report_path, report);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}
