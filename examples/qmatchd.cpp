// qmatchd: the QMatch network daemon — one MatchEngine behind an epoll
// event loop speaking the frame protocol of DESIGN.md §14.
//
// Usage:
//   qmatchd [options]
//     --port <p>               listen port (default 7433; 0 = ephemeral)
//     --bind <addr>            bind address (default 127.0.0.1)
//     --workers <n>            request worker threads (default 2)
//     --threads <n>            engine match threads (default: hardware)
//     --cache <n>              result cache capacity (default 128)
//     --admission-cost <c>     admission max inflight cost (0 = off)
//     --queue-depth <n>        admission queue depth (default 16)
//     --max-deadline-ms <ms>   clamp ceiling on client deadlines
//     --default-deadline-ms <ms>  deadline for requests that send 0
//     --idle-timeout-ms <ms>   close idle connections (0 = never)
//     --max-connections <n>    accept cap (default 256)
//     --preload <dir>          register every .xsd file in <dir> at boot
//     --persist <dir>          engine warm-start/persistence directory
//
// Scrape http://<bind>:<port>/metrics with any Prometheus client: the
// daemon sniffs "GET " on a fresh connection and answers one scrape over
// the same loop.
//
// SIGINT/SIGTERM stop the server cleanly (listener closed, connections
// drained, engine persisted). Exit code: 0 on clean stop, 1 on bad input,
// 2 on usage error.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/file_util.h"
#include "core/engine.h"
#include "net/server.h"

namespace {

using namespace qmatch;

int Usage() {
  std::fprintf(
      stderr,
      "usage: qmatchd [--port <p>] [--bind <addr>] [--workers <n>]\n"
      "  [--threads <n>] [--cache <n>] [--admission-cost <c>]\n"
      "  [--queue-depth <n>] [--max-deadline-ms <ms>]\n"
      "  [--default-deadline-ms <ms>] [--idle-timeout-ms <ms>]\n"
      "  [--max-connections <n>] [--preload <dir>] [--persist <dir>]\n");
  return 2;
}

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

int PreloadSchemas(net::Server& server, const std::string& dir) {
  int loaded = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".xsd") {
      continue;
    }
    Result<std::string> text = ReadFile(entry.path().string());
    if (!text.ok()) {
      std::fprintf(stderr, "qmatchd: %s: %s\n", entry.path().c_str(),
                   text.status().ToString().c_str());
      return -1;
    }
    const std::string name = entry.path().stem().string();
    const Status status = server.RegisterSchema(name, *text);
    if (!status.ok()) {
      std::fprintf(stderr, "qmatchd: %s: %s\n", entry.path().c_str(),
                   status.ToString().c_str());
      return -1;
    }
    ++loaded;
  }
  if (ec) {
    std::fprintf(stderr, "qmatchd: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return -1;
  }
  return loaded;
}

}  // namespace

int main(int argc, char** argv) {
  core::MatchEngineOptions engine_options;
  net::ServerOptions server_options;
  server_options.port = 7433;
  std::string preload_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next()) != nullptr) {
      server_options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--bind" && (v = next()) != nullptr) {
      server_options.bind_address = v;
    } else if (arg == "--workers" && (v = next()) != nullptr) {
      server_options.request_threads = static_cast<size_t>(std::atol(v));
    } else if (arg == "--threads" && (v = next()) != nullptr) {
      engine_options.threads = static_cast<size_t>(std::atol(v));
    } else if (arg == "--cache" && (v = next()) != nullptr) {
      engine_options.cache_capacity = static_cast<size_t>(std::atol(v));
    } else if (arg == "--admission-cost" && (v = next()) != nullptr) {
      engine_options.overload.admission.max_inflight_cost =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--queue-depth" && (v = next()) != nullptr) {
      engine_options.overload.admission.max_queue_depth =
          static_cast<size_t>(std::atol(v));
    } else if (arg == "--max-deadline-ms" && (v = next()) != nullptr) {
      server_options.max_deadline = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--default-deadline-ms" && (v = next()) != nullptr) {
      server_options.default_deadline =
          std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--idle-timeout-ms" && (v = next()) != nullptr) {
      server_options.idle_timeout = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--max-connections" && (v = next()) != nullptr) {
      server_options.max_connections = static_cast<size_t>(std::atol(v));
    } else if (arg == "--preload" && (v = next()) != nullptr) {
      preload_dir = v;
    } else if (arg == "--persist" && (v = next()) != nullptr) {
      engine_options.persist_dir = v;
    } else {
      return Usage();
    }
  }

  core::MatchEngine engine(engine_options);
  net::Server server(&engine, server_options);

  if (!preload_dir.empty()) {
    const int loaded = PreloadSchemas(server, preload_dir);
    if (loaded < 0) return 1;
    std::printf("qmatchd: preloaded %d schema(s) from %s\n", loaded,
                preload_dir.c_str());
  }

  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "qmatchd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("qmatchd: listening on %s:%u (%zu workers)\n",
              server_options.bind_address.c_str(), server.port(),
              server_options.request_threads);
  std::fflush(stdout);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (g_stop == 0) {
    timespec ts{0, 100000000};  // 100ms
    nanosleep(&ts, nullptr);
  }

  std::printf("qmatchd: stopping\n");
  server.Stop();
  const net::ServerStats stats = server.stats();
  std::printf("qmatchd: served %llu request(s) on %llu connection(s)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.accepted));
  return 0;
}
