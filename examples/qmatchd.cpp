// qmatchd: the QMatch network daemon — one MatchEngine behind an epoll
// event loop speaking the frame protocol of DESIGN.md §14, with the
// high-availability roles of §15.
//
// Usage:
//   qmatchd [options]
//     --port <p>               listen port (default 7433; 0 = ephemeral)
//     --bind <addr>            bind address (default 127.0.0.1)
//     --workers <n>            request worker threads (default 2)
//     --threads <n>            engine match threads (default: hardware)
//     --cache <n>              result cache capacity (default 128)
//     --admission-cost <c>     admission max inflight cost (0 = off)
//     --queue-depth <n>        admission queue depth (default 16)
//     --max-deadline-ms <ms>   clamp ceiling on client deadlines
//     --default-deadline-ms <ms>  deadline for requests that send 0
//     --idle-timeout-ms <ms>   close idle connections (0 = never)
//     --max-connections <n>    accept cap (default 256)
//     --preload <dir>          register every .xsd file in <dir> at boot
//     --persist <dir>          engine warm-start/persistence directory
//     --role <primary|standby> serving role (default primary)
//     --replicate-from <host:port>  primary to stream from (standby only)
//     --peer <host:port>       HA peer probed for a higher fencing epoch
//                              (default: --replicate-from; the probe is
//                              what self-demotes a partitioned primary)
//     --drain-deadline-ms <ms> SIGTERM graceful-drain bound (default 5000)
//     --ready-lag <n>          standby /readyz lag bound in records
//     --replica-log <n>        primary replication log capacity
//
// HTTP on the same port: GET /metrics (Prometheus), /healthz (alive),
// /readyz (200 only when this node should take traffic).
//
// The fencing epoch (DESIGN.md §16) is persisted in the --persist
// directory (epoch.qme): a promotion bumps it on disk before the role
// flips, so a restarted daemon can never serve at an epoch it ceded.
//
// SIGTERM drains gracefully: stop accepting, finish in-flight requests
// within --drain-deadline-ms, flush/compact the persist journal, exit.
// SIGINT stops immediately (journal still flushed). SIGUSR1 promotes a
// standby to primary in place — unless a drain/stop is already pending:
// drain wins, a draining daemon is never resurrected as primary. Exit
// code: 0 on clean stop, 1 on bad input, 2 on usage error.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "common/file_util.h"
#include "core/engine.h"
#include "net/server.h"
#include "replica/log.h"
#include "replica/primary.h"
#include "replica/standby.h"

namespace {

using namespace qmatch;

int Usage() {
  std::fprintf(
      stderr,
      "usage: qmatchd [--port <p>] [--bind <addr>] [--workers <n>]\n"
      "  [--threads <n>] [--cache <n>] [--admission-cost <c>]\n"
      "  [--queue-depth <n>] [--max-deadline-ms <ms>]\n"
      "  [--default-deadline-ms <ms>] [--idle-timeout-ms <ms>]\n"
      "  [--max-connections <n>] [--preload <dir>] [--persist <dir>]\n"
      "  [--role primary|standby] [--replicate-from <host:port>]\n"
      "  [--peer <host:port>] [--drain-deadline-ms <ms>] [--ready-lag <n>]\n"
      "  [--replica-log <n>]\n");
  return 2;
}

volatile std::sig_atomic_t g_stop = 0;   // SIGINT: stop now
volatile std::sig_atomic_t g_drain = 0;  // SIGTERM: drain, then stop
volatile std::sig_atomic_t g_promote = 0;  // SIGUSR1: standby -> primary

void HandleInt(int) { g_stop = 1; }
void HandleTerm(int) { g_drain = 1; }
void HandlePromote(int) { g_promote = 1; }

int PreloadSchemas(net::Server& server, const std::string& dir) {
  int loaded = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".xsd") {
      continue;
    }
    Result<std::string> text = ReadFile(entry.path().string());
    if (!text.ok()) {
      std::fprintf(stderr, "qmatchd: %s: %s\n", entry.path().c_str(),
                   text.status().ToString().c_str());
      return -1;
    }
    const std::string name = entry.path().stem().string();
    const Status status = server.RegisterSchema(name, *text);
    if (!status.ok()) {
      std::fprintf(stderr, "qmatchd: %s: %s\n", entry.path().c_str(),
                   status.ToString().c_str());
      return -1;
    }
    ++loaded;
  }
  if (ec) {
    std::fprintf(stderr, "qmatchd: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return -1;
  }
  return loaded;
}

bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  const long parsed = std::atol(spec.c_str() + colon + 1);
  if (parsed <= 0 || parsed > 65535) return false;
  *port = static_cast<uint16_t>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  core::MatchEngineOptions engine_options;
  net::ServerOptions server_options;
  server_options.port = 7433;
  std::string preload_dir;
  std::string replicate_from;
  std::string peer_spec;
  std::chrono::milliseconds drain_deadline(5000);
  size_t replica_log_capacity = 8192;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next()) != nullptr) {
      server_options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--bind" && (v = next()) != nullptr) {
      server_options.bind_address = v;
    } else if (arg == "--workers" && (v = next()) != nullptr) {
      server_options.request_threads = static_cast<size_t>(std::atol(v));
    } else if (arg == "--threads" && (v = next()) != nullptr) {
      engine_options.threads = static_cast<size_t>(std::atol(v));
    } else if (arg == "--cache" && (v = next()) != nullptr) {
      engine_options.cache_capacity = static_cast<size_t>(std::atol(v));
    } else if (arg == "--admission-cost" && (v = next()) != nullptr) {
      engine_options.overload.admission.max_inflight_cost =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--queue-depth" && (v = next()) != nullptr) {
      engine_options.overload.admission.max_queue_depth =
          static_cast<size_t>(std::atol(v));
    } else if (arg == "--max-deadline-ms" && (v = next()) != nullptr) {
      server_options.max_deadline = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--default-deadline-ms" && (v = next()) != nullptr) {
      server_options.default_deadline =
          std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--idle-timeout-ms" && (v = next()) != nullptr) {
      server_options.idle_timeout = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--max-connections" && (v = next()) != nullptr) {
      server_options.max_connections = static_cast<size_t>(std::atol(v));
    } else if (arg == "--preload" && (v = next()) != nullptr) {
      preload_dir = v;
    } else if (arg == "--persist" && (v = next()) != nullptr) {
      engine_options.persist_dir = v;
    } else if (arg == "--role" && (v = next()) != nullptr) {
      if (std::strcmp(v, "primary") == 0) {
        server_options.role = net::Role::kPrimary;
      } else if (std::strcmp(v, "standby") == 0) {
        server_options.role = net::Role::kStandby;
      } else {
        return Usage();
      }
    } else if (arg == "--replicate-from" && (v = next()) != nullptr) {
      replicate_from = v;
    } else if (arg == "--peer" && (v = next()) != nullptr) {
      peer_spec = v;
    } else if (arg == "--drain-deadline-ms" && (v = next()) != nullptr) {
      drain_deadline = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--ready-lag" && (v = next()) != nullptr) {
      server_options.ready_lag_records = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--replica-log" && (v = next()) != nullptr) {
      replica_log_capacity = static_cast<size_t>(std::atol(v));
    } else {
      return Usage();
    }
  }
  const bool standby = server_options.role == net::Role::kStandby;
  if (standby && replicate_from.empty()) {
    std::fprintf(stderr, "qmatchd: --role standby needs --replicate-from\n");
    return Usage();
  }
  // The fencing epoch lives next to the engine's persist state; a standby's
  // primary doubles as its probe peer unless --peer overrides.
  server_options.epoch_dir = engine_options.persist_dir;
  if (peer_spec.empty()) peer_spec = replicate_from;
  if (!peer_spec.empty() &&
      !ParseHostPort(peer_spec, &server_options.peer_host,
                     &server_options.peer_port)) {
    std::fprintf(stderr, "qmatchd: unparseable --peer %s\n",
                 peer_spec.c_str());
    return Usage();
  }

  core::MatchEngine engine(engine_options);
  // Every daemon owns a replication log, whatever role it starts in: a
  // primary ships every durable mutation into it, and a standby needs it
  // the moment a promotion makes it the anchor for the healed old
  // primary. Applied replicated records never echo back into the log, so
  // a standby's log stays quiet until it is promoted. AttachPrimary sets
  // the role to primary; flip it back for a --role standby start.
  replica::ReplicationLog replication_log(replica_log_capacity);
  replica::AttachPrimary(&engine, &server_options, &replication_log);
  if (standby) server_options.role = net::Role::kStandby;
  net::Server server(&engine, server_options);

  if (!preload_dir.empty()) {
    const int loaded = PreloadSchemas(server, preload_dir);
    if (loaded < 0) return 1;
    std::printf("qmatchd: preloaded %d schema(s) from %s\n", loaded,
                preload_dir.c_str());
  }

  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "qmatchd: %s\n", started.ToString().c_str());
    return 1;
  }

  std::unique_ptr<replica::Standby> standby_stream;
  if (standby) {
    replica::StandbyOptions standby_options;
    if (!ParseHostPort(replicate_from, &standby_options.primary_host,
                       &standby_options.primary_port)) {
      std::fprintf(stderr, "qmatchd: unparseable --replicate-from %s\n",
                   replicate_from.c_str());
      return 1;
    }
    standby_stream =
        std::make_unique<replica::Standby>(&engine, &server, standby_options);
    const Status streaming = standby_stream->Start();
    if (!streaming.ok()) {
      std::fprintf(stderr, "qmatchd: %s\n", streaming.ToString().c_str());
      return 1;
    }
  }

  std::printf("qmatchd: %s listening on %s:%u (%zu workers)%s%s\n",
              std::string(net::RoleName(server.role())).c_str(),
              server_options.bind_address.c_str(), server.port(),
              server_options.request_threads,
              standby ? ", replicating from " : "",
              standby ? replicate_from.c_str() : "");
  std::fflush(stdout);

  std::signal(SIGINT, HandleInt);
  std::signal(SIGTERM, HandleTerm);
  std::signal(SIGUSR1, HandlePromote);
  while (true) {
    // Order matters: a pending drain/stop is honoured BEFORE a pending
    // promote, so a SIGUSR1 racing a SIGTERM can never resurrect a
    // draining daemon as primary. (Server::SetRole additionally refuses to
    // leave kDraining — this check just makes the common race quiet.)
    if (g_stop != 0 || g_drain != 0) break;
    if (g_promote != 0) {
      g_promote = 0;
      if (standby_stream != nullptr) {
        standby_stream->Promote();
        std::printf("qmatchd: promoted to primary (epoch %llu)\n",
                    static_cast<unsigned long long>(server.epoch()));
        std::fflush(stdout);
      }
    }
    // A primary that fenced and self-demoted (a peer probe or subscriber
    // showed it a higher epoch) re-joins as a standby of the winner: the
    // stream's first subscribe carries the stale epoch, the winner's typed
    // rejection names the new one, and the stream adopts it and re-anchors.
    if (!standby && standby_stream == nullptr &&
        server.role() == net::Role::kStandby &&
        server_options.peer_port != 0) {
      replica::StandbyOptions rejoin_options;
      rejoin_options.primary_host = server_options.peer_host;
      rejoin_options.primary_port = server_options.peer_port;
      standby_stream = std::make_unique<replica::Standby>(&engine, &server,
                                                          rejoin_options);
      const Status rejoining = standby_stream->Start();
      if (rejoining.ok()) {
        std::printf("qmatchd: demoted; re-joining as standby of %s:%u\n",
                    rejoin_options.primary_host.c_str(),
                    rejoin_options.primary_port);
      } else {
        std::fprintf(stderr, "qmatchd: re-join: %s\n",
                     rejoining.ToString().c_str());
        standby_stream.reset();
      }
      std::fflush(stdout);
    }
    timespec ts{0, 100000000};  // 100ms
    nanosleep(&ts, nullptr);
  }

  if (standby_stream != nullptr) standby_stream->Stop();
  if (g_drain != 0) {
    // Graceful drain: refuse new work typed, finish what is in flight,
    // then make everything the engine learned durable BEFORE exiting —
    // the restart (or the standby taking over) must not replay a torn
    // journal tail.
    std::printf("qmatchd: draining (deadline %lld ms)\n",
                static_cast<long long>(drain_deadline.count()));
    std::fflush(stdout);
    const Status drained = server.Drain(drain_deadline);
    if (!drained.ok()) {
      std::fprintf(stderr, "qmatchd: drain: %s\n",
                   drained.ToString().c_str());
    }
  }
  std::printf("qmatchd: stopping\n");
  server.Stop();
  const Status compacted = engine.CompactPersist();
  if (!compacted.ok()) {
    std::fprintf(stderr, "qmatchd: compact: %s\n",
                 compacted.ToString().c_str());
  }
  const net::ServerStats stats = server.stats();
  std::printf("qmatchd: served %llu request(s) on %llu connection(s)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.accepted));
  return 0;
}
