// document_match: the paper's motivating scenario (Section 1) — matching a
// query schema against schemaless XML *documents* from the Web.
//
// Two bookstore-ish XML instance documents with no schemas are lifted into
// schema trees by xsd::InferSchema, then matched with QMatch against a
// bibliographic query schema.
//
// Run: ./document_match

#include <cstdio>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "match/composite_matcher.h"
#include "match/instance_matcher.h"
#include "xml/parser.h"
#include "xsd/infer.h"

namespace {

// A "web document" without any schema: an online bookstore feed.
constexpr const char* kBookstoreXml = R"(<?xml version="1.0"?>
<bookstore>
  <book isbn="0-13-110362-8">
    <title>The C Programming Language</title>
    <writer>Brian Kernighan</writer>
    <writer>Dennis Ritchie</writer>
    <publisher>Prentice Hall</publisher>
    <year>1988</year>
    <price>59.99</price>
  </book>
  <book isbn="0-201-03801-3">
    <title>The Art of Computer Programming</title>
    <writer>Donald Knuth</writer>
    <publisher>Addison-Wesley</publisher>
    <year>1968</year>
    <price>199.99</price>
    <inStock>true</inStock>
  </book>
</bookstore>
)";

// A second, differently-shaped document from another site.
constexpr const char* kCatalogXml = R"(<catalog>
  <entry id="42">
    <name>The C Programming Language</name>
    <authors>
      <author>B. W. Kernighan</author>
      <author>D. M. Ritchie</author>
    </authors>
    <published>1988-04-01</published>
    <cost>60.00</cost>
  </entry>
</catalog>
)";

}  // namespace

int main() {
  using namespace qmatch;

  // 1. Lift both documents into schema trees.
  Result<xsd::Schema> bookstore = xsd::InferSchemaFromXml(kBookstoreXml);
  Result<xsd::Schema> catalog = xsd::InferSchemaFromXml(kCatalogXml);
  if (!bookstore.ok() || !catalog.ok()) {
    std::fprintf(stderr, "inference failed: %s %s\n",
                 bookstore.status().ToString().c_str(),
                 catalog.status().ToString().c_str());
    return 1;
  }
  std::printf("== inferred from the bookstore document ==\n%s\n",
              bookstore->ToTreeString().c_str());
  std::printf("== inferred from the catalog document ==\n%s\n",
              catalog->ToTreeString().c_str());

  // 2. Match the two documents against each other (data integration
  //    across two web sources).
  core::QMatch matcher;
  MatchResult cross = matcher.Match(*bookstore, *catalog);
  std::printf("== bookstore vs catalog ==\n%s\n", cross.ToString().c_str());

  // 3. Match a query schema (the corpus Book schema) against each source:
  //    "which document can answer a Book{Title, Author, Year} query?"
  xsd::Schema query = datagen::MakeBook();
  for (const xsd::Schema* doc : {&*bookstore, &*catalog}) {
    MatchResult result = matcher.Match(query, *doc);
    std::printf("== query 'Book' vs document '%s': QoM %.3f ==\n%s\n",
                doc->name().c_str(), result.schema_qom,
                result.ToString().c_str());
  }

  // 4. Instance-level matching: because we hold the documents themselves,
  //    the value overlaps (shared titles, overlapping price ranges) find
  //    pairs that labels alone would rank lower — and a COMA-style
  //    composite fuses both kinds of evidence.
  Result<xml::XmlDocument> bookstore_doc = xml::Parse(kBookstoreXml);
  Result<xml::XmlDocument> catalog_doc = xml::Parse(kCatalogXml);
  if (bookstore_doc.ok() && catalog_doc.ok()) {
    match::InstanceMatcher instance({&*bookstore_doc}, {&*catalog_doc});
    std::printf("== instance evidence (data values only) ==\n%s\n",
                instance.Match(*bookstore, *catalog).ToString().c_str());

    match::CompositeMatcher::Options fuse;
    fuse.aggregation = match::CompositeMatcher::Aggregation::kMax;
    fuse.threshold = 0.4;
    match::CompositeMatcher composite({&matcher, &instance}, fuse);
    std::printf("== hybrid + instance composite ==\n%s",
                composite.Match(*bookstore, *catalog).ToString().c_str());
  }
  return 0;
}
