// weight_tuning: reproduces the methodology of Section 5.1 — sweep the axis
// weights of the QoM model over a grid, score each configuration against
// the manually determined matches of several tasks, and report the best
// region (the paper lands on L=0.3, P=0.2, H=0.1, C=0.4, their Table 2).
//
// Usage: ./weight_tuning [step]     (grid step, default 0.1)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace qmatch;

  const double step = argc > 1 ? std::atof(argv[1]) : 0.1;
  if (step < 0.02 || step > 0.5) {
    std::fprintf(stderr, "step must be in [0.02, 0.5]\n");
    return 2;
  }

  // Tune on two tasks from different domains, as the paper does.
  struct TaskData {
    xsd::Schema source;
    xsd::Schema target;
    eval::GoldStandard gold;
  };
  std::vector<TaskData> tasks;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "PO" || task.name == "Books" || task.name == "DCMD") {
      tasks.push_back({task.source(), task.target(), task.gold()});
    }
  }

  double best_score = -1.0;
  qom::Weights best_weights;
  int evaluated = 0;
  for (double wl = 0.0; wl <= 1.0 + 1e-9; wl += step) {
    for (double wp = 0.0; wl + wp <= 1.0 + 1e-9; wp += step) {
      for (double wh = 0.0; wl + wp + wh <= 1.0 + 1e-9; wh += step) {
        double wc = 1.0 - wl - wp - wh;
        qom::Weights weights{wl, wp, wh, wc};
        core::QMatchConfig config;
        config.weights = weights;
        core::QMatch matcher(config);
        double total = 0.0;
        for (const TaskData& task : tasks) {
          MatchResult result = matcher.Match(task.source, task.target);
          total += eval::Evaluate(result, task.gold).overall;
        }
        ++evaluated;
        if (total > best_score) {
          best_score = total;
          best_weights = weights;
          std::printf("new best %s  mean overall %.3f\n",
                      weights.ToString().c_str(),
                      total / static_cast<double>(tasks.size()));
        }
      }
    }
  }
  std::printf("\nevaluated %d weight settings (step %.2f)\n", evaluated, step);
  std::printf("best: %s (paper Table 2: {L=0.3, P=0.2, H=0.1, C=0.4})\n",
              best_weights.ToString().c_str());
  return 0;
}
