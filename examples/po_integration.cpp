// po_integration: a full walk through the paper's running example — the PO
// and PurchaseOrder schemas of Figures 1-2 — reproducing the qualitative
// QoM classifications of Section 2 and comparing all three algorithms.
//
// Run: ./po_integration

#include <cstdio>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "lingua/default_thesaurus.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"

int main() {
  using namespace qmatch;

  xsd::Schema po1 = datagen::MakePO1();
  xsd::Schema po2 = datagen::MakePO2();
  std::printf("== Schemas (paper Figures 1-2) ==\n%s\n%s\n",
              po1.ToTreeString().c_str(), po2.ToTreeString().c_str());

  // The taxonomy classifications discussed in Section 2.2.
  core::QMatch hybrid;
  core::QMatch::Analysis analysis = hybrid.Analyze(po1, po2);

  struct Case {
    const char* source;
    const char* target;
    const char* paper_says;
  };
  const Case cases[] = {
      {"/PO/OrderNo", "/PurchaseOrder/OrderNo", "exact leaf match"},
      {"/PO/PurchaseInfo/Lines/Quantity", "/PurchaseOrder/Items/Qty",
       "relaxed leaf match (abbreviation)"},
      {"/PO/PurchaseInfo/Lines/UnitOfMeasure", "/PurchaseOrder/Items/UOM",
       "relaxed leaf match (acronym)"},
      {"/PO/PurchaseInfo/Lines", "/PurchaseOrder/Items",
       "total relaxed subtree match"},
      {"/PO/PurchaseInfo", "/PurchaseOrder", "total relaxed subtree match"},
      {"/PO", "/PurchaseOrder", "total relaxed tree match"},
  };
  std::printf("== Section 2 classifications ==\n");
  for (const Case& c : cases) {
    const core::PairQoM* pair = analysis.PairByPath(c.source, c.target);
    if (pair == nullptr) {
      std::printf("  %s vs %s: <missing>\n", c.source, c.target);
      continue;
    }
    std::printf("  %-38s vs %-28s\n    paper: %-36s ours: %s\n", c.source,
                c.target, c.paper_says, pair->ToString().c_str());
  }

  // All three algorithms on the task, scored against the real matches.
  std::printf("\n== Algorithm comparison (Section 5 style) ==\n");
  eval::GoldStandard gold = datagen::GoldPO();
  match::LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  match::StructuralMatcher structural;
  const Matcher* algorithms[] = {&linguistic, &structural, &hybrid};
  for (const Matcher* matcher : algorithms) {
    MatchResult result = matcher->Match(po1, po2);
    eval::QualityMetrics metrics = eval::Evaluate(result, gold);
    std::printf("  %-11s schema QoM %.3f | %s\n",
                std::string(matcher->name()).c_str(), result.schema_qom,
                metrics.ToString().c_str());
  }
  return 0;
}
