// Quickstart: parse two XML Schemas and match them with QMatch.
//
// Demonstrates the three steps of the public API:
//   1. xsd::ParseSchema     — XSD text -> schema tree
//   2. core::QMatch::Match  — hybrid match -> correspondences + schema QoM
//   3. eval::Evaluate       — score against a gold standard
//
// Run: ./quickstart

#include <cstdio>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "xsd/parser.h"

int main() {
  using namespace qmatch;

  // 1. Parse the two purchase-order schemas of the paper (Figures 1-2).
  Result<xsd::Schema> source = xsd::ParseSchema(datagen::PO1Xsd());
  Result<xsd::Schema> target = xsd::ParseSchema(datagen::PO2Xsd());
  if (!source.ok() || !target.ok()) {
    std::fprintf(stderr, "parse failed: %s %s\n",
                 source.status().ToString().c_str(),
                 target.status().ToString().c_str());
    return 1;
  }
  std::printf("source: %s (%zu elements, depth %zu)\n",
              source->name().c_str(), source->ElementCount(),
              source->MaxDepth());
  std::printf("target: %s (%zu elements, depth %zu)\n\n",
              target->name().c_str(), target->ElementCount(),
              target->MaxDepth());

  // 2. Match with the paper-default configuration (weights of Table 2,
  //    threshold 0.5, built-in thesaurus).
  core::QMatch matcher;
  MatchResult result = matcher.Match(*source, *target);
  std::printf("%s\n", result.ToString().c_str());

  // 3. Score against the manually determined real matches.
  eval::QualityMetrics metrics =
      eval::Evaluate(result, datagen::GoldPO());
  std::printf("quality: %s\n", metrics.ToString().c_str());
  return 0;
}
