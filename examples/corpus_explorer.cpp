// corpus_explorer: match any two schemas from the built-in corpus with any
// of the three algorithms and inspect the result.
//
// Usage:
//   corpus_explorer                          # list corpus + tasks
//   corpus_explorer <source> <target> [algo] [threshold]
//   corpus_explorer --task <name> [algo]     # run a task and score vs gold
//
// algo: hybrid (default) | linguistic | structural
//
// Any position also accepts --metrics-out=<file> / --trace-out=<file> to
// dump engine metrics (JSON) and a chrome://tracing trace at exit.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "lingua/default_thesaurus.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"
#include "obs/obs.h"

namespace {

using namespace qmatch;

std::unique_ptr<Matcher> MakeMatcher(const std::string& algo,
                                     double threshold) {
  if (algo == "linguistic") {
    match::LinguisticMatcher::Options options;
    options.threshold = threshold;
    return std::make_unique<match::LinguisticMatcher>(
        &lingua::DefaultThesaurus(), options);
  }
  if (algo == "structural") {
    match::StructuralMatcher::Options options;
    options.threshold = threshold;
    return std::make_unique<match::StructuralMatcher>(options);
  }
  core::QMatchConfig config;
  config.threshold = threshold;
  // The engine is a Matcher too: hybrid matches get the parallel table
  // fill (and result caching) transparently.
  return std::make_unique<core::MatchEngine>(config);
}

const datagen::CorpusEntry* FindSchema(const std::string& name) {
  for (const datagen::CorpusEntry& entry : datagen::Corpus()) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

int ListEverything() {
  std::printf("corpus schemas:\n");
  for (const datagen::CorpusEntry& entry : datagen::Corpus()) {
    xsd::Schema schema = entry.make();
    std::printf("  %-14s %5zu elements, depth %zu\n", entry.name.c_str(),
                schema.ElementCount(), schema.MaxDepth());
  }
  std::printf("\nmatch tasks (--task):\n");
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    std::printf("  %-10s %zu real matches\n", task.name.c_str(),
                task.gold().size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the observability flags wherever they appear; the remaining
  // positional arguments keep their usual meaning. Files are written on
  // every exit path (RAII), so even usage errors dump partial metrics.
  obs::CliSink obs_sink;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (!obs_sink.TryParse(argv[i])) argv[kept++] = argv[i];
  }
  argc = kept;
  struct ObsWriter {
    obs::CliSink& sink;
    ~ObsWriter() {
      Status status = sink.Write();
      if (!status.ok()) {
        std::fprintf(stderr, "obs output failed: %s\n",
                     status.ToString().c_str());
      }
    }
  } obs_writer{obs_sink};

  if (argc < 2) return ListEverything();

  std::string first = argv[1];
  if (first == "--task") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: corpus_explorer --task <name> [algo]\n");
      return 2;
    }
    std::string task_name = argv[2];
    std::string algo = argc > 3 ? argv[3] : "hybrid";
    for (const datagen::MatchTask& task : datagen::Tasks()) {
      if (task.name != task_name) continue;
      xsd::Schema source = task.source();
      xsd::Schema target = task.target();
      std::unique_ptr<Matcher> matcher = MakeMatcher(algo, 0.5);
      MatchResult result = matcher->Match(source, target);
      std::printf("%s\n", result.ToString().c_str());
      eval::QualityMetrics metrics = eval::Evaluate(result, task.gold());
      std::printf("quality: %s\n", metrics.ToString().c_str());
      return 0;
    }
    std::fprintf(stderr, "unknown task '%s'\n", task_name.c_str());
    return 2;
  }

  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: corpus_explorer <source> <target> [algo] [threshold]\n");
    return 2;
  }
  const datagen::CorpusEntry* source_entry = FindSchema(argv[1]);
  const datagen::CorpusEntry* target_entry = FindSchema(argv[2]);
  if (source_entry == nullptr || target_entry == nullptr) {
    std::fprintf(stderr, "unknown schema name; run with no args to list\n");
    return 2;
  }
  std::string algo = argc > 3 ? argv[3] : "hybrid";
  double threshold = argc > 4 ? std::atof(argv[4]) : 0.5;

  xsd::Schema source = source_entry->make();
  xsd::Schema target = target_entry->make();
  std::printf("%s", source.ToTreeString().c_str());
  std::printf("\n%s\n", target.ToTreeString().c_str());
  std::unique_ptr<Matcher> matcher = MakeMatcher(algo, threshold);
  MatchResult result = matcher->Match(source, target);
  std::printf("%s", result.ToString().c_str());
  return 0;
}
