// schema_search: the paper's Section 1 retrieval scenario end to end —
// given a *query schema*, rank a heterogeneous repository of sources (XSD
// schemas and schemaless XML documents) by Quality of Match, so a query
// engine knows which source can answer the query.
//
// The queries run through the parallel MatchEngine: each query fans its
// candidate matches out across the worker pool, and the bounded LRU result
// cache makes repeated queries against the same repository near-free (the
// second pass below is served entirely from cache).
//
// Run: ./schema_search [--metrics-out=<file>] [--trace-out=<file>]

#include <algorithm>
#include <cstdio>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "obs/obs.h"
#include "xsd/infer.h"

namespace {

// Two "web documents" without schemas, lifted via inference.
constexpr const char* kFeedXml = R"(<feed>
  <post id="1"><headline>Schema matching 101</headline>
    <author>J. Doe</author><published>2004-05-01</published></post>
  <post id="2"><headline>XML on the web</headline>
    <author>A. Smith</author><published>2004-06-11</published></post>
</feed>)";

constexpr const char* kShopXml = R"(<shop>
  <product sku="A-1"><name>Widget</name><price>9.99</price>
    <stock>4</stock></product>
  <product sku="B-2"><name>Gadget</name><price>19.99</price>
    <stock>0</stock></product>
</shop>)";

}  // namespace

int main(int argc, char** argv) {
  using namespace qmatch;

  obs::CliSink obs_sink;
  for (int i = 1; i < argc; ++i) {
    if (!obs_sink.TryParse(argv[i])) {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  // Build the repository: corpus schemas + schemas inferred from raw XML.
  struct Source {
    std::string name;
    xsd::Schema schema;
  };
  std::vector<Source> repository;
  for (const datagen::CorpusEntry& entry : datagen::Corpus()) {
    if (entry.name == "PDB") continue;  // keep the demo output readable
    repository.push_back({entry.name, entry.make()});
  }
  for (auto [name, xml] : {std::pair{"WebFeed", kFeedXml},
                           std::pair{"WebShop", kShopXml}}) {
    Result<xsd::Schema> inferred = xsd::InferSchemaFromXml(xml);
    if (inferred.ok()) {
      repository.push_back({name, std::move(inferred).value()});
    }
  }

  std::vector<const xsd::Schema*> candidates;
  candidates.reserve(repository.size());
  for (const Source& source : repository) candidates.push_back(&source.schema);

  // Query: "find sources that can answer a purchase-order query".
  core::MatchEngine engine;  // paper-default config, hardware threads
  for (int pass = 1; pass <= 2; ++pass) {
    for (const char* query_name : {"PO1", "Book"}) {
      xsd::Schema query;
      for (const datagen::CorpusEntry& entry : datagen::Corpus()) {
        if (entry.name == query_name) query = entry.make();
      }
      std::vector<MatchResult> results =
          engine.MatchOneToMany(query, candidates);
      if (pass == 2) continue;  // pass 2 only exercises the result cache
      std::printf("== query schema: %s ==\n", query_name);
      // Rank by schema QoM, ties by correspondence count then position —
      // the same order eval::RankSchemas produces.
      std::vector<size_t> order(results.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (results[a].schema_qom != results[b].schema_qom) {
          return results[a].schema_qom > results[b].schema_qom;
        }
        return results[a].correspondences.size() >
               results[b].correspondences.size();
      });
      int shown = 0;
      for (size_t index : order) {
        std::printf("  %-16s QoM %.3f  (%zu correspondences)\n",
                    repository[index].name.c_str(), results[index].schema_qom,
                    results[index].correspondences.size());
        if (++shown == 6) break;
      }
      std::printf("\n");
    }
  }
  core::MatchEngineCacheStats stats = engine.cache_stats();
  std::printf("engine: %zu threads, cache %zu hits / %zu misses\n",
              engine.threads(), stats.hits, stats.misses);
  Status obs_status = obs_sink.Write();
  if (!obs_status.ok()) {
    std::fprintf(stderr, "obs output failed: %s\n",
                 obs_status.ToString().c_str());
    return 1;
  }
  return 0;
}
