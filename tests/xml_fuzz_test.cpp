// Fuzz-style robustness test for the XML and XSD parsers (ISSUE 2
// satellite): a deterministic seeded mutator (bit flips, truncation, tag
// splicing, byte noise, entity bombs, hostile nesting) driven over the
// shipped data/schemas/*.xsd corpus. The contract under test is narrow but
// absolute: whatever bytes come in, the parsers return a Status — they
// never crash, hang, overflow the stack, or invoke UB. (Sanitizer builds —
// scripts/ci.sh asan/tsan — run this same binary, which is where memory
// errors would surface.)
//
// Every mutation is derived from a fixed base seed, so a failure
// reproduces exactly. Reproducibility machinery (ISSUE 3 satellite):
//  * QMATCH_FUZZ_SEED overrides the base seed, so a logged failure
//    replays with `QMATCH_FUZZ_SEED=<seed> ./xml_fuzz_test`;
//  * each mutant is written to a temp repro file *before* it is fed to
//    the parsers — a crash or sanitizer abort leaves the offending input
//    (plus a manifest naming the base seed and the file/strategy/
//    iteration cell) on disk; both are deleted on a clean run.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "common/random.h"
#include "xml/parser.h"
#include "xsd/parser.h"

#ifndef QMATCH_SOURCE_DIR
#error "build must define QMATCH_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace qmatch {
namespace {

const std::vector<std::string>& CorpusFiles() {
  static const std::vector<std::string> kFiles = {
      "Article.xsd", "Book.xsd",    "DCMDItem.xsd",     "DCMDOrder.xsd",
      "Human.xsd",   "Library.xsd", "PDB.xsd",          "PIR.xsd",
      "PO1.xsd",     "PO2.xsd",     "XBenchCatalog.xsd", "XBenchOrder.xsd"};
  return kFiles;
}

std::string LoadSchema(const std::string& file) {
  Result<std::string> text =
      ReadFile(std::string(QMATCH_SOURCE_DIR) + "/data/schemas/" + file);
  EXPECT_TRUE(text.ok()) << file << ": " << text.status();
  return text.ok() ? std::move(text).value() : std::string();
}

/// Base seed of the mutation streams; QMATCH_FUZZ_SEED replays a failure.
uint64_t BaseSeed() {
  const char* env = std::getenv("QMATCH_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xF00DF00DULL;
}

std::string ReproDocPath() {
  return ::testing::TempDir() + "qmatch_fuzz_repro.xml";
}
std::string ReproManifestPath() {
  return ::testing::TempDir() + "qmatch_fuzz_repro.txt";
}

/// Persists the mutant about to be digested. Written before the parsers
/// run so that a crash (which never returns control to the test) still
/// leaves the exact offending bytes and their provenance on disk.
void WriteRepro(const std::string& mutant, uint64_t base_seed,
                const std::string& file, const char* strategy,
                size_t iteration) {
  (void)WriteFile(ReproDocPath(), mutant);
  (void)WriteFile(ReproManifestPath(),
                  "QMATCH_FUZZ_SEED=" + std::to_string(base_seed) +
                      " file=" + file + " strategy=" + strategy +
                      " iteration=" + std::to_string(iteration) +
                      " doc=" + ReproDocPath() + "\n");
}

void RemoveRepro() {
  std::remove(ReproDocPath().c_str());
  std::remove(ReproManifestPath().c_str());
}

// Feeds one input through both parsers. The assertions are implicit — a
// crash, sanitizer report, or unbounded recursion fails the whole binary;
// the return value only reports whether the XML layer accepted the bytes.
bool Digest(const std::string& input) {
  Result<xml::XmlDocument> doc = xml::Parse(input);
  // The XSD parser must also be safe on arbitrary bytes (it re-parses the
  // text itself), not only on well-formed XML.
  Result<xsd::Schema> schema = xsd::ParseSchema(input);
  (void)schema;
  return doc.ok();
}

// --- mutation strategies -------------------------------------------------

std::string FlipBits(const std::string& base, Random& rng) {
  std::string out = base;
  const size_t flips = 1 + static_cast<size_t>(rng.Uniform(16));
  for (size_t f = 0; f < flips && !out.empty(); ++f) {
    const size_t pos = static_cast<size_t>(rng.Uniform(out.size()));
    out[pos] = static_cast<char>(
        static_cast<unsigned char>(out[pos]) ^ (1u << rng.Uniform(8)));
  }
  return out;
}

std::string Truncate(const std::string& base, Random& rng) {
  if (base.empty()) return base;
  return base.substr(0, static_cast<size_t>(rng.Uniform(base.size())));
}

/// Copies a random `<...>`-delimited chunk and splices it into a random
/// position (possibly mid-tag) — structurally plausible but invalid nesting.
std::string SpliceTags(const std::string& base, Random& rng) {
  if (base.size() < 4) return base;
  const size_t from = static_cast<size_t>(rng.Uniform(base.size()));
  const size_t open = base.find('<', from);
  if (open == std::string::npos) return base;
  const size_t close = base.find('>', open);
  if (close == std::string::npos) return base;
  const std::string chunk = base.substr(open, close - open + 1);
  std::string out = base;
  out.insert(static_cast<size_t>(rng.Uniform(out.size())), chunk);
  return out;
}

std::string ByteNoise(const std::string& base, Random& rng) {
  static const char kHostile[] = {'<', '>', '&', '"', '\'', '\0', '/',
                                  '=', '!', '?', '[',  ']',  '\xff'};
  std::string out = base;
  const size_t edits = 1 + static_cast<size_t>(rng.Uniform(24));
  for (size_t e = 0; e < edits && !out.empty(); ++e) {
    const size_t pos = static_cast<size_t>(rng.Uniform(out.size()));
    out[pos] = kHostile[rng.Uniform(sizeof(kHostile))];
  }
  return out;
}

TEST(XmlFuzzTest, OriginalCorpusParsesCleanly) {
  for (const std::string& file : CorpusFiles()) {
    const std::string text = LoadSchema(file);
    ASSERT_FALSE(text.empty()) << file;
    EXPECT_TRUE(Digest(text)) << file;
    Result<xsd::Schema> schema = xsd::ParseSchema(text);
    EXPECT_TRUE(schema.ok()) << file << ": " << schema.status();
  }
}

TEST(XmlFuzzTest, MutatedCorpusNeverCrashesParsers) {
  struct Strategy {
    const char* name;
    std::string (*mutate)(const std::string&, Random&);
    size_t iterations;
  };
  const Strategy kStrategies[] = {
      {"bitflip", FlipBits, 40},
      {"truncate", Truncate, 25},
      {"splice", SpliceTags, 25},
      {"noise", ByteNoise, 40},
  };
  const uint64_t base_seed = BaseSeed();
  // Logged up front so even a hard crash's log names the seed to replay.
  std::printf("[fuzz] base seed %llu (override with QMATCH_FUZZ_SEED)\n",
              static_cast<unsigned long long>(base_seed));
  size_t rejected = 0;
  size_t accepted = 0;
  uint64_t file_index = 0;
  for (const std::string& file : CorpusFiles()) {
    const std::string base = LoadSchema(file);
    ASSERT_FALSE(base.empty()) << file;
    uint64_t strategy_index = 0;
    for (const Strategy& strategy : kStrategies) {
      // Seed from (base seed, file, strategy) so each cell of the matrix
      // is an independent, reproducible stream.
      Random rng(base_seed + file_index * 131 + strategy_index * 7);
      for (size_t iteration = 0; iteration < strategy.iterations;
           ++iteration) {
        const std::string mutant = strategy.mutate(base, rng);
        SCOPED_TRACE(file + "/" + strategy.name + "/#" +
                     std::to_string(iteration));
        WriteRepro(mutant, base_seed, file, strategy.name, iteration);
        if (Digest(mutant)) {
          ++accepted;
        } else {
          ++rejected;
        }
        if (::testing::Test::HasFailure()) {
          // Keep the repro files and stop: everything after this input is
          // noise. The manifest pins seed + cell for replay.
          FAIL() << "fuzz failure; repro kept at " << ReproDocPath()
                 << " (manifest " << ReproManifestPath()
                 << "); replay with QMATCH_FUZZ_SEED=" << base_seed;
        }
      }
      ++strategy_index;
    }
    ++file_index;
  }
  RemoveRepro();
  // Sanity: the mutator is doing real damage (plenty of rejects) and the
  // parser is not rejecting everything blindly (truncation at a late
  // offset etc. can stay well-formed).
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(rejected + accepted, 1000u);
}

TEST(XmlFuzzTest, EntityBombIsRejectedNotExpanded) {
  // Billion-laughs shape. The parser has no DTD support, so the correct
  // and safe behaviour is an error Status in time proportional to the
  // input size — not exponential expansion.
  std::string bomb = "<?xml version=\"1.0\"?>\n<!DOCTYPE lolz [\n";
  bomb += " <!ENTITY lol \"lol\">\n";
  for (int i = 1; i <= 9; ++i) {
    bomb += " <!ENTITY lol" + std::to_string(i) + " \"";
    for (int j = 0; j < 10; ++j) {
      bomb += "&lol" + std::to_string(i - 1) + ";";
    }
    bomb += "\">\n";
  }
  bomb += "]>\n<lolz>&lol9;</lolz>";
  Result<xml::XmlDocument> doc = xml::Parse(bomb);
  EXPECT_FALSE(doc.ok());

  // Undeclared entity references in content must also surface as Status.
  Result<xml::XmlDocument> undeclared =
      xml::Parse("<a>&undeclared;&also" + std::string(4096, 'x') + ";</a>");
  (void)undeclared;  // either outcome is fine; crashing is not
}

TEST(XmlFuzzTest, HostileNestingHitsDepthCapNotTheStack) {
  // 100k-deep open tags would overflow the C++ stack in a naive recursive
  // parser; ours caps element depth and reports a parse error.
  constexpr size_t kDepth = 100000;
  std::string deep;
  deep.reserve(kDepth * 3 + 16);
  for (size_t i = 0; i < kDepth; ++i) deep += "<a>";
  Result<xml::XmlDocument> open_only = xml::Parse(deep);
  EXPECT_FALSE(open_only.ok());

  for (size_t i = 0; i < kDepth; ++i) deep += "</a>";
  Result<xml::XmlDocument> balanced = xml::Parse(deep);
  EXPECT_FALSE(balanced.ok());  // beyond the depth cap: error, not crash
}

TEST(XmlFuzzTest, DegenerateInputs) {
  for (const char* input :
       {"", "<", ">", "<>", "</>", "<a", "<a ", "<a b=", "<a b=\"", "<!--",
        "<![CDATA[", "<?xml", "\0\0\0\0", "<a/><b/>", "&#x110000;",
        "<a>&#xD800;</a>", "<\xff\xfe>", "<a:b:c/>"}) {
    SCOPED_TRACE(input);
    Digest(std::string(input));
  }
  // A long run of '<' characters must stay linear.
  Digest(std::string(65536, '<'));
}

}  // namespace
}  // namespace qmatch
