// Differential determinism tests for the parallel MatchEngine: for every
// paper pair and a population of generated pairs, the engine's output must
// be *bit-identical* to the sequential QMatch::Match reference at every
// thread count, with and without the result cache. Run under
// ThreadSanitizer by ci.sh (-DQMATCH_SANITIZE=thread).

#include "core/engine.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "datagen/perturb.h"
#include "match/similarity_matrix.h"

namespace qmatch::core {
namespace {

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void ExpectByteIdentical(const MatchResult& actual,
                         const MatchResult& expected,
                         const std::string& context) {
  EXPECT_EQ(actual.algorithm, expected.algorithm) << context;
  EXPECT_TRUE(BitEqual(actual.schema_qom, expected.schema_qom))
      << context << " schema_qom " << actual.schema_qom << " vs "
      << expected.schema_qom;
  ASSERT_EQ(actual.correspondences.size(), expected.correspondences.size())
      << context;
  for (size_t i = 0; i < actual.correspondences.size(); ++i) {
    const Correspondence& a = actual.correspondences[i];
    const Correspondence& e = expected.correspondences[i];
    EXPECT_EQ(a.source, e.source) << context << " corr #" << i;
    EXPECT_EQ(a.target, e.target) << context << " corr #" << i;
    EXPECT_TRUE(BitEqual(a.score, e.score)) << context << " corr #" << i;
  }
  EXPECT_EQ(actual.ToString(), expected.ToString()) << context;
}

MatchEngineOptions EngineOptions(size_t threads, size_t cache_capacity = 0) {
  MatchEngineOptions options;
  options.threads = threads;
  options.cache_capacity = cache_capacity;
  // Force the row-parallel fill even for the small paper schemas so the
  // parallel code path is what this test actually exercises.
  options.min_parallel_pairs = 1;
  return options;
}

struct GeneratedPair {
  xsd::Schema source;
  xsd::Schema target;
};

std::vector<GeneratedPair> GeneratedPairs(size_t count) {
  std::vector<GeneratedPair> pairs;
  pairs.reserve(count);
  const datagen::Domain domains[] = {
      datagen::Domain::kGeneric, datagen::Domain::kCommerce,
      datagen::Domain::kBibliographic, datagen::Domain::kProtein};
  for (size_t k = 0; k < count; ++k) {
    datagen::GeneratorOptions options;
    options.seed = 1000 + k;
    options.element_count = 20 + 13 * k;
    options.max_depth = 3 + k % 5;
    options.attribute_probability = static_cast<double>(k % 3) * 0.2;
    options.domain = domains[k % 4];
    options.name = "Gen" + std::to_string(k);
    GeneratedPair pair;
    pair.source = datagen::GenerateSchema(options);
    datagen::PerturbOptions perturb;
    perturb.seed = 9000 + k;
    pair.target = datagen::Perturb(pair.source, perturb, nullptr);
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

TEST(MatchEngineDifferentialTest, PaperPairsIdenticalAtEveryThreadCount) {
  const QMatch reference;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    const xsd::Schema source = task.source();
    const xsd::Schema target = task.target();
    const MatchResult expected = reference.Match(source, target);
    for (size_t threads : {1u, 2u, 8u}) {
      MatchEngine engine(EngineOptions(threads));
      ExpectByteIdentical(engine.Match(source, target), expected,
                          task.name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(MatchEngineDifferentialTest, GeneratedPairsIdenticalAtEveryThreadCount) {
  const QMatch reference;
  const std::vector<GeneratedPair> pairs = GeneratedPairs(20);
  for (size_t threads : {1u, 2u, 8u}) {
    MatchEngine engine(EngineOptions(threads));
    for (size_t k = 0; k < pairs.size(); ++k) {
      const MatchResult expected =
          reference.Match(pairs[k].source, pairs[k].target);
      ExpectByteIdentical(
          engine.Match(pairs[k].source, pairs[k].target), expected,
          "gen#" + std::to_string(k) + " threads=" + std::to_string(threads));
    }
  }
}

TEST(MatchEngineDifferentialTest, SimilarityMatrixIdentical) {
  const QMatch reference;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "Protein") continue;  // covered by Match; keep test fast
    const xsd::Schema source = task.source();
    const xsd::Schema target = task.target();
    const match::SimilarityMatrix expected =
        reference.Similarity(source, target);
    for (size_t threads : {2u, 8u}) {
      MatchEngine engine(EngineOptions(threads));
      const match::SimilarityMatrix actual = engine.Similarity(source, target);
      ASSERT_TRUE(actual.SameShape(expected)) << task.name;
      for (size_t i = 0; i < expected.source_count(); ++i) {
        for (size_t j = 0; j < expected.target_count(); ++j) {
          EXPECT_TRUE(BitEqual(actual.at(i, j), expected.at(i, j)))
              << task.name << " (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(MatchEngineDifferentialTest, MatchAllIsInputOrderedAndIdentical) {
  const QMatch reference;
  std::vector<xsd::Schema> sources;
  std::vector<xsd::Schema> targets;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    sources.push_back(task.source());
    targets.push_back(task.target());
  }
  std::vector<MatchJob> jobs;
  for (size_t i = 0; i < sources.size(); ++i) {
    jobs.push_back(MatchJob{&sources[i], &targets[i]});
  }
  for (size_t threads : {1u, 2u, 8u}) {
    MatchEngine engine(EngineOptions(threads));
    const std::vector<MatchResult> results = engine.MatchAll(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      ExpectByteIdentical(results[i],
                          reference.Match(*jobs[i].source, *jobs[i].target),
                          "job#" + std::to_string(i) + " threads=" +
                              std::to_string(threads));
    }
  }
}

TEST(MatchEngineCacheTest, HitReturnsIdenticalResult) {
  MatchEngine engine(EngineOptions(2, /*cache_capacity=*/8));
  const xsd::Schema source = datagen::MakePO1();
  const xsd::Schema target = datagen::MakePO2();
  const MatchResult first = engine.Match(source, target);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  const MatchResult second = engine.Match(source, target);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  ExpectByteIdentical(second, first, "cache hit");
}

TEST(MatchEngineCacheTest, HitRehydratesPointersIntoCallerSchemas) {
  // A fingerprint-equal but distinct Schema object must get
  // correspondences pointing into *its* tree, not the first caller's.
  MatchEngine engine(EngineOptions(1, /*cache_capacity=*/8));
  const xsd::Schema source1 = datagen::MakePO1();
  const xsd::Schema target1 = datagen::MakePO2();
  const MatchResult first = engine.Match(source1, target1);
  ASSERT_FALSE(first.correspondences.empty());

  const xsd::Schema source2 = datagen::MakePO1();
  const xsd::Schema target2 = datagen::MakePO2();
  const MatchResult second = engine.Match(source2, target2);
  EXPECT_GE(engine.cache_stats().hits, 1u);
  std::set<const xsd::SchemaNode*> source2_nodes;
  for (const xsd::SchemaNode* node : source2.AllNodes()) {
    source2_nodes.insert(node);
  }
  std::set<const xsd::SchemaNode*> target2_nodes;
  for (const xsd::SchemaNode* node : target2.AllNodes()) {
    target2_nodes.insert(node);
  }
  ASSERT_EQ(second.correspondences.size(), first.correspondences.size());
  for (const Correspondence& c : second.correspondences) {
    EXPECT_TRUE(source2_nodes.count(c.source));
    EXPECT_TRUE(target2_nodes.count(c.target));
  }
  EXPECT_EQ(second.ToString(), first.ToString());
}

TEST(MatchEngineCacheTest, LruEvictsBeyondCapacity) {
  MatchEngine engine(EngineOptions(1, /*cache_capacity=*/2));
  const std::vector<GeneratedPair> pairs = GeneratedPairs(4);
  for (const GeneratedPair& pair : pairs) {
    engine.Match(pair.source, pair.target);
  }
  MatchEngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 2u);
  // Oldest entry is gone: matching it again is a miss, the newest a hit.
  engine.Match(pairs[0].source, pairs[0].target);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  engine.Match(pairs[0].source, pairs[0].target);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  engine.ClearCache();
  EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(MatchEngineCacheTest, ConfigChangesTheCacheKey) {
  // Same schemas, different thresholds: results must not bleed between
  // configurations through the cache.
  const xsd::Schema source = datagen::MakeArticle();
  const xsd::Schema target = datagen::MakeBook();
  QMatchConfig strict;
  strict.threshold = 0.9;
  MatchEngine loose_engine(EngineOptions(1, 8));
  MatchEngine strict_engine(strict, EngineOptions(1, 8));
  const MatchResult loose = loose_engine.Match(source, target);
  const MatchResult tight = strict_engine.Match(source, target);
  EXPECT_GE(loose.correspondences.size(), tight.correspondences.size());
}

TEST(MatchEngineTest, ThreadsResolveAndEngineIsAMatcher) {
  MatchEngine engine(EngineOptions(3));
  EXPECT_EQ(engine.threads(), 3u);
  EXPECT_EQ(engine.name(), "hybrid");
  const Matcher& as_matcher = engine;
  const xsd::Schema source = datagen::MakePO1();
  const xsd::Schema target = datagen::MakePO2();
  const MatchResult result = as_matcher.Match(source, target);
  EXPECT_EQ(result.algorithm, "hybrid");
  EXPECT_GT(result.schema_qom, 0.0);
}

TEST(MatchEngineTest, FingerprintDistinguishesSchemas) {
  const xsd::Schema po1 = datagen::MakePO1();
  const xsd::Schema po1_again = datagen::MakePO1();
  const xsd::Schema po2 = datagen::MakePO2();
  EXPECT_EQ(xsd::SchemaFingerprint(po1), xsd::SchemaFingerprint(po1_again));
  EXPECT_NE(xsd::SchemaFingerprint(po1), xsd::SchemaFingerprint(po2));
}

}  // namespace
}  // namespace qmatch::core
